//! Service metrics: lock-free atomic counters rendered in the
//! Prometheus text exposition format.
//!
//! Every series the ISSUE asks for is here: request counts by
//! endpoint/status, per-rung solve counts, a solve-latency histogram,
//! cache hits/misses, live queue depth, and the rejected-request
//! (backpressure) count. Label sets are fixed at compile time so the
//! hot path is a single `fetch_add` — no allocation, no locking.

use std::sync::atomic::{AtomicU64, Ordering};

use qrel_runtime::Method;

/// Endpoints tracked as label values (everything else is `other`).
/// Job-instance paths are canonicalized to the `/v1/jobs/{id}` label and
/// dataset-instance paths to `/v1/datasets/{name}` so the cardinality
/// stays fixed no matter how many jobs or datasets exist.
pub const ENDPOINTS: [&str; 8] = [
    "/v1/solve",
    "/v1/jobs",
    "/v1/jobs/{id}",
    "/v1/datasets",
    "/v1/datasets/{name}",
    "/healthz",
    "/metrics",
    "other",
];

/// Statuses tracked as label values. Anything else lands in a
/// catch-all `other` column — under fault injection a novel status must
/// count somewhere, never panic the worker's metrics path.
pub const STATUSES: [u16; 12] = [200, 202, 400, 404, 405, 408, 409, 413, 422, 429, 500, 503];

/// Column count for the per-status axis: every tracked status plus the
/// `other` catch-all.
const STATUS_COLS: usize = STATUSES.len() + 1;

/// Solve rungs tracked as label values, in ladder order.
pub const RUNGS: [Method; 6] = [
    Method::Plan,
    Method::Qf,
    Method::Exact,
    Method::Fptras,
    Method::Padding,
    Method::NaiveMc,
];

/// Histogram bucket upper bounds, in seconds.
pub const LATENCY_BUCKETS: [f64; 9] = [0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 1.0, 5.0, 30.0];

/// Collapse a request path onto its endpoint label: exact matches keep
/// their own label, any `/v1/jobs/...` instance path becomes
/// `/v1/jobs/{id}`, everything else is `other`.
pub fn canonical_endpoint(path: &str) -> &'static str {
    if let Some(i) = ENDPOINTS.iter().position(|&e| e == path) {
        return ENDPOINTS[i];
    }
    if path.starts_with("/v1/jobs/") {
        return "/v1/jobs/{id}";
    }
    if path.starts_with("/v1/datasets/") {
        return "/v1/datasets/{name}";
    }
    "other"
}

fn endpoint_index(path: &str) -> usize {
    let label = canonical_endpoint(path);
    ENDPOINTS
        .iter()
        .position(|&e| e == label)
        .unwrap_or(ENDPOINTS.len() - 1)
}

fn status_index(status: u16) -> usize {
    STATUSES
        .iter()
        .position(|&s| s == status)
        .unwrap_or(STATUSES.len())
}

/// The metrics registry. One instance per server, shared by reference
/// across workers; all methods take `&self`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `requests[endpoint][status]`; the last status column is `other`.
    requests: [[AtomicU64; STATUS_COLS]; ENDPOINTS.len()],
    /// Completed solves by answering rung.
    solves: [AtomicU64; RUNGS.len()],
    /// Solve latency histogram: cumulative-style counts are computed at
    /// render time; these are per-bucket (non-cumulative) counts, with
    /// one extra slot for `+Inf`.
    latency_buckets: [AtomicU64; LATENCY_BUCKETS.len() + 1],
    latency_sum_micros: AtomicU64,
    latency_count: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Live admission-queue depth (gauge).
    queue_depth: AtomicU64,
    /// Requests refused with `429` because the queue was full.
    rejected: AtomicU64,
    /// In-flight solves hard-cancelled by the stuck-worker watchdog.
    watchdog_cancels: AtomicU64,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_request(&self, path: &str, status: u16) {
        self.requests[endpoint_index(path)][status_index(status)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_solve(&self, rung: Method, latency: std::time::Duration) {
        if let Some(i) = RUNGS.iter().position(|&m| m == rung) {
            self.solves[i].fetch_add(1, Ordering::Relaxed);
        }
        let secs = latency.as_secs_f64();
        let bucket = LATENCY_BUCKETS
            .iter()
            .position(|&ub| secs <= ub)
            .unwrap_or(LATENCY_BUCKETS.len());
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_sum_micros
            .fetch_add(latency.as_micros() as u64, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_cache(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_watchdog_cancel(&self) {
        self.watchdog_cancels.fetch_add(1, Ordering::Relaxed);
    }

    pub fn watchdog_cancel_count(&self) -> u64 {
        self.watchdog_cancels.load(Ordering::Relaxed)
    }

    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth as u64, Ordering::Relaxed);
    }

    pub fn cache_hit_count(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    pub fn rejected_count(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Render the whole registry in the Prometheus text format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);

        out.push_str(
            "# HELP qrel_http_requests_total HTTP requests served, by endpoint and status.\n",
        );
        out.push_str("# TYPE qrel_http_requests_total counter\n");
        for (e, endpoint) in ENDPOINTS.iter().enumerate() {
            for s in 0..STATUS_COLS {
                let n = self.requests[e][s].load(Ordering::Relaxed);
                if n > 0 {
                    let status = STATUSES
                        .get(s)
                        .map(|s| s.to_string())
                        .unwrap_or_else(|| "other".to_string());
                    out.push_str(&format!(
                        "qrel_http_requests_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {n}\n"
                    ));
                }
            }
        }

        out.push_str("# HELP qrel_solve_total Completed solves, by answering ladder rung.\n");
        out.push_str("# TYPE qrel_solve_total counter\n");
        for (i, rung) in RUNGS.iter().enumerate() {
            let n = self.solves[i].load(Ordering::Relaxed);
            out.push_str(&format!("qrel_solve_total{{method=\"{rung}\"}} {n}\n"));
        }

        out.push_str("# HELP qrel_solve_latency_seconds Solve latency (cache misses only).\n");
        out.push_str("# TYPE qrel_solve_latency_seconds histogram\n");
        let mut cumulative = 0u64;
        for (i, ub) in LATENCY_BUCKETS.iter().enumerate() {
            cumulative += self.latency_buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "qrel_solve_latency_seconds_bucket{{le=\"{ub}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.latency_buckets[LATENCY_BUCKETS.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "qrel_solve_latency_seconds_bucket{{le=\"+Inf\"}} {cumulative}\n"
        ));
        out.push_str(&format!(
            "qrel_solve_latency_seconds_sum {}\n",
            self.latency_sum_micros.load(Ordering::Relaxed) as f64 / 1e6
        ));
        out.push_str(&format!(
            "qrel_solve_latency_seconds_count {}\n",
            self.latency_count.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP qrel_cache_hits_total Result-cache hits.\n");
        out.push_str("# TYPE qrel_cache_hits_total counter\n");
        out.push_str(&format!(
            "qrel_cache_hits_total {}\n",
            self.cache_hits.load(Ordering::Relaxed)
        ));
        out.push_str("# HELP qrel_cache_misses_total Result-cache misses.\n");
        out.push_str("# TYPE qrel_cache_misses_total counter\n");
        out.push_str(&format!(
            "qrel_cache_misses_total {}\n",
            self.cache_misses.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP qrel_queue_depth Connections waiting in the admission queue.\n");
        out.push_str("# TYPE qrel_queue_depth gauge\n");
        out.push_str(&format!(
            "qrel_queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed)
        ));

        out.push_str("# HELP qrel_rejected_total Requests refused with 429 (queue full).\n");
        out.push_str("# TYPE qrel_rejected_total counter\n");
        out.push_str(&format!(
            "qrel_rejected_total {}\n",
            self.rejected.load(Ordering::Relaxed)
        ));

        out.push_str(
            "# HELP qrel_watchdog_cancels_total Solves hard-cancelled by the stuck-worker watchdog.\n",
        );
        out.push_str("# TYPE qrel_watchdog_cancels_total counter\n");
        out.push_str(&format!(
            "qrel_watchdog_cancels_total {}\n",
            self.watchdog_cancels.load(Ordering::Relaxed)
        ));

        out
    }
}

/// Render a scheduler counter snapshot in the Prometheus text format,
/// appended to the main registry render. Depth gauges, per-tenant
/// occupancy, coalesce hits, and every job-state transition counter.
pub fn render_sched(stats: &qrel_sched::SchedStats) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("# HELP qrel_sched_queued_jobs Job records waiting for a worker.\n");
    out.push_str("# TYPE qrel_sched_queued_jobs gauge\n");
    out.push_str(&format!("qrel_sched_queued_jobs {}\n", stats.queued_jobs));
    out.push_str(
        "# HELP qrel_sched_queued_groups Distinct executions waiting (coalesced jobs share one).\n",
    );
    out.push_str("# TYPE qrel_sched_queued_groups gauge\n");
    out.push_str(&format!(
        "qrel_sched_queued_groups {}\n",
        stats.queued_groups
    ));
    out.push_str("# HELP qrel_sched_running_jobs Job records currently executing.\n");
    out.push_str("# TYPE qrel_sched_running_jobs gauge\n");
    out.push_str(&format!("qrel_sched_running_jobs {}\n", stats.running_jobs));
    out.push_str(
        "# HELP qrel_sched_tenant_jobs Non-terminal jobs per tenant (bounded by the tenant cap).\n",
    );
    out.push_str("# TYPE qrel_sched_tenant_jobs gauge\n");
    for (tenant, n) in &stats.per_tenant {
        out.push_str(&format!(
            "qrel_sched_tenant_jobs{{tenant=\"{tenant}\"}} {n}\n"
        ));
    }
    out.push_str(
        "# HELP qrel_sched_coalesce_hits_total Submits absorbed by an equivalent live job.\n",
    );
    out.push_str("# TYPE qrel_sched_coalesce_hits_total counter\n");
    out.push_str(&format!(
        "qrel_sched_coalesce_hits_total {}\n",
        stats.coalesce_hits
    ));
    out.push_str("# HELP qrel_sched_rejected_total Submits refused at the per-tenant queue cap.\n");
    out.push_str("# TYPE qrel_sched_rejected_total counter\n");
    out.push_str(&format!(
        "qrel_sched_rejected_total {}\n",
        stats.rejected_full
    ));
    out.push_str("# HELP qrel_sched_jobs_total Job-state transitions, by transition.\n");
    out.push_str("# TYPE qrel_sched_jobs_total counter\n");
    for (transition, n) in [
        ("enqueued", stats.enqueued_total),
        ("started", stats.started_total),
        ("done", stats.done_total),
        ("failed", stats.failed_total),
        ("cancelled_queued", stats.cancelled_queued_total),
        ("cancelled_running", stats.cancelled_running_total),
    ] {
        out.push_str(&format!(
            "qrel_sched_jobs_total{{transition=\"{transition}\"}} {n}\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_land_in_the_right_series() {
        let m = Metrics::new();
        m.record_request("/v1/solve", 200);
        m.record_request("/v1/solve", 200);
        m.record_request("/healthz", 200);
        m.record_request("/nope", 404);
        m.record_rejected();
        m.record_cache(true);
        m.record_cache(false);
        m.set_queue_depth(3);
        m.record_solve(Method::Exact, Duration::from_millis(2));
        let text = m.render();
        assert!(text.contains("qrel_http_requests_total{endpoint=\"/v1/solve\",status=\"200\"} 2"));
        assert!(text.contains("qrel_http_requests_total{endpoint=\"other\",status=\"404\"} 1"));
        assert!(text.contains("qrel_solve_total{method=\"exact\"} 1"));
        assert!(text.contains("qrel_cache_hits_total 1"));
        assert!(text.contains("qrel_cache_misses_total 1"));
        assert!(text.contains("qrel_queue_depth 3"));
        assert!(text.contains("qrel_rejected_total 1"));
        assert!(text.contains("qrel_solve_latency_seconds_count 1"));
    }

    #[test]
    fn untracked_status_lands_in_other_bucket_without_panicking() {
        let m = Metrics::new();
        // Under fault injection novel statuses appear; the metrics path
        // must absorb them, not kill the worker.
        m.record_request("/v1/solve", 418);
        m.record_request("/v1/solve", 599);
        m.record_request("/nope", 301);
        let text = m.render();
        assert!(
            text.contains("qrel_http_requests_total{endpoint=\"/v1/solve\",status=\"other\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("qrel_http_requests_total{endpoint=\"other\",status=\"other\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn job_paths_canonicalize_onto_fixed_labels() {
        assert_eq!(canonical_endpoint("/v1/jobs"), "/v1/jobs");
        assert_eq!(canonical_endpoint("/v1/jobs/17"), "/v1/jobs/{id}");
        assert_eq!(canonical_endpoint("/v1/jobs/17/result"), "/v1/jobs/{id}");
        assert_eq!(canonical_endpoint("/v1/solve"), "/v1/solve");
        assert_eq!(canonical_endpoint("/v1/jobsx"), "other");
        assert_eq!(canonical_endpoint("/v1/datasets"), "/v1/datasets");
        assert_eq!(
            canonical_endpoint("/v1/datasets/census/facts"),
            "/v1/datasets/{name}"
        );
        assert_eq!(canonical_endpoint("/v1/datasetsx"), "other");
        let m = Metrics::new();
        m.record_request("/v1/jobs", 202);
        m.record_request("/v1/jobs/1", 200);
        m.record_request("/v1/jobs/2", 200);
        m.record_request("/v1/jobs/2/result", 409);
        let text = m.render();
        assert!(
            text.contains("qrel_http_requests_total{endpoint=\"/v1/jobs\",status=\"202\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("qrel_http_requests_total{endpoint=\"/v1/jobs/{id}\",status=\"200\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("qrel_http_requests_total{endpoint=\"/v1/jobs/{id}\",status=\"409\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn sched_stats_render_every_series() {
        let stats = qrel_sched::SchedStats {
            queued_groups: 2,
            queued_jobs: 3,
            running_jobs: 1,
            coalesce_hits: 4,
            rejected_full: 5,
            enqueued_total: 9,
            started_total: 6,
            done_total: 5,
            failed_total: 1,
            cancelled_queued_total: 2,
            cancelled_running_total: 1,
            per_tenant: vec![("acme".into(), 3), ("default".into(), 1)],
        };
        let text = render_sched(&stats);
        assert!(text.contains("qrel_sched_queued_jobs 3"), "{text}");
        assert!(text.contains("qrel_sched_queued_groups 2"), "{text}");
        assert!(text.contains("qrel_sched_running_jobs 1"), "{text}");
        assert!(
            text.contains("qrel_sched_tenant_jobs{tenant=\"acme\"} 3"),
            "{text}"
        );
        assert!(text.contains("qrel_sched_coalesce_hits_total 4"), "{text}");
        assert!(text.contains("qrel_sched_rejected_total 5"), "{text}");
        assert!(
            text.contains("qrel_sched_jobs_total{transition=\"enqueued\"} 9"),
            "{text}"
        );
        assert!(
            text.contains("qrel_sched_jobs_total{transition=\"cancelled_running\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let m = Metrics::new();
        m.record_solve(Method::Qf, Duration::from_micros(100)); // ≤ 0.0005
        m.record_solve(Method::Qf, Duration::from_millis(50)); // ≤ 0.1
        m.record_solve(Method::Qf, Duration::from_secs(60)); // +Inf
        let text = m.render();
        assert!(text.contains("qrel_solve_latency_seconds_bucket{le=\"0.0005\"} 1"));
        assert!(text.contains("qrel_solve_latency_seconds_bucket{le=\"0.1\"} 2"));
        assert!(text.contains("qrel_solve_latency_seconds_bucket{le=\"30\"} 2"));
        assert!(text.contains("qrel_solve_latency_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("qrel_solve_latency_seconds_count 3"));
    }
}
