//! Fixed-width dyadic probability arithmetic — the fast path under
//! [`BigRational`].
//!
//! The common case in every hot loop of this workload is a *dyadic*
//! probability: `num / 2^exp` with both parts machine-sized. Per-world
//! weights are products of per-fact probabilities, and when every fact's
//! `μ` has a power-of-two denominator the whole computation stays dyadic
//! — sums and products of dyadics are dyadic. A [`Dyadic`] packs such a
//! value into a `u128` numerator and a `u32` exponent; every operation
//! is *checked* and returns `None` on overflow instead of silently
//! wrapping.
//!
//! [`FastProb`] is the promoting wrapper the kernels actually use: it
//! starts in the dyadic representation and switches to an exact
//! [`BigRational`] the moment any checked operation overflows (or the
//! input was never dyadic to begin with). Promotion changes the
//! *representation*, never the *value* — `to_rational()` of a promoted
//! chain is bit-identical to running the whole chain in `BigRational`,
//! a boundary pinned by the proptest suite in
//! `crates/arith/tests/dyadic_promotion.rs`.

use crate::{BigInt, BigRational, BigUint};

/// A non-negative dyadic rational `num / 2^exp` with `num: u128`.
///
/// Invariants: `num == 0` implies `exp == 0`, and otherwise `num` is odd
/// or `exp == 0` (trailing zero bits are stripped on construction, which
/// both canonicalizes equality and maximizes overflow headroom).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dyadic {
    num: u128,
    exp: u32,
}

impl Dyadic {
    /// The value 0.
    pub fn zero() -> Self {
        Dyadic { num: 0, exp: 0 }
    }

    /// The value 1.
    pub fn one() -> Self {
        Dyadic { num: 1, exp: 0 }
    }

    /// Canonicalize: strip shared factors of two, collapse zero.
    fn normalized(num: u128, exp: u32) -> Self {
        if num == 0 {
            return Dyadic::zero();
        }
        let tz = (num.trailing_zeros()).min(exp);
        Dyadic {
            num: num >> tz,
            exp: exp - tz,
        }
    }

    /// Build `num / 2^exp` directly (normalizing).
    pub fn from_parts(num: u128, exp: u32) -> Self {
        Dyadic::normalized(num, exp)
    }

    pub fn num(&self) -> u128 {
        self.num
    }

    pub fn exp(&self) -> u32 {
        self.exp
    }

    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Convert an exact rational, if it is a non-negative dyadic whose
    /// numerator fits in `u128` and whose denominator is at most
    /// `2^127`. Anything else returns `None` (caller stays in
    /// `BigRational`).
    pub fn from_rational(r: &BigRational) -> Option<Dyadic> {
        if r.is_negative() || !r.is_dyadic() {
            return None;
        }
        let num = r.numer().magnitude().to_u128()?;
        let denom = r.denom();
        // `is_dyadic` guarantees a power of two; the exponent is the
        // bit position.
        let exp = u32::try_from(denom.bit_length().checked_sub(1)?).ok()?;
        if exp > 127 {
            return None;
        }
        Some(Dyadic::normalized(num, exp))
    }

    /// Exact conversion back to a [`BigRational`]. Total — dyadics are a
    /// subset of the rationals.
    pub fn to_rational(self) -> BigRational {
        BigRational::new(
            BigInt::from_biguint(BigUint::from_u128(self.num)),
            BigInt::from_biguint(BigUint::from_u64(1).shl_bits(u64::from(self.exp))),
        )
    }

    /// Checked addition: `None` iff aligning the exponents or adding the
    /// numerators overflows `u128`.
    pub fn checked_add(self, other: Dyadic) -> Option<Dyadic> {
        let exp = self.exp.max(other.exp);
        let a = shifted(self.num, exp - self.exp)?;
        let b = shifted(other.num, exp - other.exp)?;
        Some(Dyadic::normalized(a.checked_add(b)?, exp))
    }

    /// Checked multiplication: `None` iff the numerator product
    /// overflows `u128` (the exponent sum overflowing `u32` is
    /// impossible before the numerator does for probability workloads,
    /// but is checked anyway).
    pub fn checked_mul(self, other: Dyadic) -> Option<Dyadic> {
        Some(Dyadic::normalized(
            self.num.checked_mul(other.num)?,
            self.exp.checked_add(other.exp)?,
        ))
    }

    /// Checked `1 - self`: `None` if `self > 1` or the exponent exceeds
    /// 127 (so `2^exp` no longer fits in the numerator width).
    pub fn checked_one_minus(self) -> Option<Dyadic> {
        if self.exp > 127 {
            return None;
        }
        let unit = 1u128 << self.exp;
        Some(Dyadic::normalized(unit.checked_sub(self.num)?, self.exp))
    }
}

/// `num << shift` with a real overflow check (`u128::checked_shl` only
/// rejects shift counts ≥ 128, not lost bits).
fn shifted(num: u128, shift: u32) -> Option<u128> {
    if shift == 0 {
        return Some(num);
    }
    if shift >= 128 || (num >> (128 - shift)) != 0 {
        return None;
    }
    Some(num << shift)
}

/// An exact probability that lives in [`Dyadic`] while it can and
/// promotes to [`BigRational`] the moment an operation overflows.
///
/// The promotion is one-way per value (a promoted chain stays promoted)
/// and value-preserving: both representations are exact, so the final
/// [`FastProb::to_rational`] is bit-identical to an all-`BigRational`
/// computation.
#[derive(Debug, Clone)]
pub enum FastProb {
    Dyadic(Dyadic),
    Big(BigRational),
}

impl FastProb {
    pub fn zero() -> Self {
        FastProb::Dyadic(Dyadic::zero())
    }

    pub fn one() -> Self {
        FastProb::Dyadic(Dyadic::one())
    }

    /// Wrap an exact rational, choosing the dyadic representation when
    /// possible.
    pub fn from_rational(r: &BigRational) -> Self {
        match Dyadic::from_rational(r) {
            Some(d) => FastProb::Dyadic(d),
            None => FastProb::Big(r.clone()),
        }
    }

    /// Whether the value is still on the fixed-width fast path.
    pub fn is_dyadic(&self) -> bool {
        matches!(self, FastProb::Dyadic(_))
    }

    pub fn is_zero(&self) -> bool {
        match self {
            FastProb::Dyadic(d) => d.is_zero(),
            FastProb::Big(b) => b.is_zero(),
        }
    }

    /// Exact conversion to [`BigRational`].
    pub fn to_rational(&self) -> BigRational {
        match self {
            FastProb::Dyadic(d) => d.to_rational(),
            FastProb::Big(b) => b.clone(),
        }
    }

    /// Exact addition, promoting on overflow.
    pub fn add(&self, other: &FastProb) -> FastProb {
        if let (FastProb::Dyadic(a), FastProb::Dyadic(b)) = (self, other) {
            if let Some(s) = a.checked_add(*b) {
                return FastProb::Dyadic(s);
            }
        }
        FastProb::Big(self.to_rational().add_ref(&other.to_rational()))
    }

    /// Exact multiplication, promoting on overflow.
    pub fn mul(&self, other: &FastProb) -> FastProb {
        if let (FastProb::Dyadic(a), FastProb::Dyadic(b)) = (self, other) {
            if let Some(p) = a.checked_mul(*b) {
                return FastProb::Dyadic(p);
            }
        }
        FastProb::Big(self.to_rational().mul_ref(&other.to_rational()))
    }

    /// Exact `1 - self`, promoting on overflow.
    pub fn one_minus(&self) -> FastProb {
        if let FastProb::Dyadic(d) = self {
            if let Some(c) = d.checked_one_minus() {
                return FastProb::Dyadic(c);
            }
        }
        FastProb::Big(self.to_rational().one_minus())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    #[test]
    fn conversion_round_trips() {
        for (n, d) in [(0i64, 1u64), (1, 1), (1, 2), (3, 8), (7, 64), (255, 256)] {
            let q = r(n, d);
            let dy = Dyadic::from_rational(&q).expect("dyadic");
            assert_eq!(dy.to_rational(), q, "{n}/{d}");
        }
    }

    #[test]
    fn non_dyadic_and_negative_rejected() {
        assert!(Dyadic::from_rational(&r(1, 3)).is_none());
        assert!(Dyadic::from_rational(&r(5, 12)).is_none());
        assert!(Dyadic::from_rational(&r(-1, 2)).is_none());
        // Denominator 2^128 exceeds the representable exponent.
        let tiny = BigRational::new(
            BigInt::one(),
            BigInt::from_biguint(BigUint::from_u64(1).shl_bits(128)),
        );
        assert!(Dyadic::from_rational(&tiny).is_none());
        let edge = BigRational::new(
            BigInt::one(),
            BigInt::from_biguint(BigUint::from_u64(1).shl_bits(127)),
        );
        assert!(Dyadic::from_rational(&edge).is_some());
    }

    #[test]
    fn checked_ops_match_rationals() {
        let a = Dyadic::from_rational(&r(3, 8)).unwrap();
        let b = Dyadic::from_rational(&r(5, 16)).unwrap();
        assert_eq!(a.checked_add(b).unwrap().to_rational(), r(11, 16));
        assert_eq!(a.checked_mul(b).unwrap().to_rational(), r(15, 128));
        assert_eq!(a.checked_one_minus().unwrap().to_rational(), r(5, 8));
    }

    #[test]
    fn normalization_strips_trailing_zeros() {
        let d = Dyadic::from_parts(4, 3); // 4/8 = 1/2
        assert_eq!(d.num(), 1);
        assert_eq!(d.exp(), 1);
        assert_eq!(Dyadic::from_parts(0, 17), Dyadic::zero());
    }

    #[test]
    fn add_overflow_detected() {
        // Aligning 1/1 against 1/2^127 needs a 128-bit shift.
        let big = Dyadic::from_parts(u128::MAX, 0);
        let one = Dyadic::one();
        assert!(big.checked_add(one).is_none());
        let tiny = Dyadic::from_parts(1, 127);
        assert!(one.checked_add(tiny).is_some());
        assert!(big.checked_mul(Dyadic::from_parts(2, 0)).is_none());
    }

    #[test]
    fn fastprob_promotes_and_preserves_value() {
        // (u64::MAX / 2^64)^3 overflows u128 numerators → promotes.
        let p = r(i64::MAX, 1 << 62);
        let f = FastProb::from_rational(&p);
        assert!(f.is_dyadic());
        let sq = f.mul(&f);
        let cube = sq.mul(&f);
        assert!(!cube.is_dyadic(), "third power must promote");
        assert_eq!(cube.to_rational(), p.mul_ref(&p).mul_ref(&p));
    }

    #[test]
    fn fastprob_mixed_ops() {
        let third = FastProb::from_rational(&r(1, 3));
        assert!(!third.is_dyadic());
        let half = FastProb::from_rational(&r(1, 2));
        assert_eq!(third.add(&half).to_rational(), r(5, 6));
        assert_eq!(half.mul(&half).to_rational(), r(1, 4));
        assert_eq!(half.one_minus().to_rational(), r(1, 2));
        assert!(FastProb::zero().is_zero());
        assert_eq!(FastProb::one().to_rational(), BigRational::one());
    }
}
