//! Exact arbitrary-precision arithmetic for query-reliability computations.
//!
//! The algorithms of Grädel/Gurevich/Hirsch (PODS '98) are defined over
//! exact rational probabilities: the probability of a possible world is a
//! product of up to thousands of rationals, the `g` normalizer of
//! Theorem 4.2 is an lcm of denominators, and the legal-assignment
//! accounting of Theorem 5.3 counts assignments exactly. Floating point
//! underflows and destroys the identities those proofs rely on, so this
//! crate provides [`BigUint`], [`BigInt`] and [`BigRational`] built from
//! scratch (no external bignum dependency is sanctioned for this project).
//!
//! Representation: little-endian `u32` limbs with `u64` intermediates,
//! Knuth Algorithm D for division, binary GCD for rational normalization.
//! Sizes in this workload are modest (hundreds of limbs at most), so the
//! schoolbook algorithms are the right trade-off of simplicity vs speed.

mod bigint;
mod biguint;
mod dyadic;
mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use dyadic::{Dyadic, FastProb};
pub use rational::BigRational;

/// Parse error for the string forms accepted by the numeric types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNumError {
    msg: String,
}

impl ParseNumError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for ParseNumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "number parse error: {}", self.msg)
    }
}

impl std::error::Error for ParseNumError {}
