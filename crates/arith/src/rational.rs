//! Exact rational numbers.

use crate::{BigInt, BigUint, ParseNumError, Sign};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `numer / denom`.
///
/// Invariants: `denom > 0`, and `gcd(|numer|, denom) == 1` (with the
/// canonical zero being `0/1`). All operations re-normalize, so `Eq` and
/// `Hash` are structural equality of values.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(try_from = "RawBigRational")]
pub struct BigRational {
    numer: BigInt,
    denom: BigUint,
}

/// Deserialization shadow: rejects a zero denominator and renormalizes,
/// so the `denom > 0` / gcd-reduced invariants cannot be bypassed
/// through serde.
#[derive(Deserialize)]
struct RawBigRational {
    numer: BigInt,
    denom: BigUint,
}

impl TryFrom<RawBigRational> for BigRational {
    type Error = String;

    fn try_from(raw: RawBigRational) -> Result<Self, String> {
        if raw.denom.is_zero() {
            return Err("rational with zero denominator".to_string());
        }
        Ok(BigRational::new_raw(raw.numer, raw.denom))
    }
}

impl BigRational {
    /// The value 0.
    pub fn zero() -> Self {
        BigRational {
            numer: BigInt::zero(),
            denom: BigUint::one(),
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigRational {
            numer: BigInt::one(),
            denom: BigUint::one(),
        }
    }

    /// Construct `numer / denom`, normalizing.
    ///
    /// # Panics
    /// Panics if `denom` is zero.
    pub fn new(numer: BigInt, denom: BigInt) -> Self {
        assert!(!denom.is_zero(), "rational with zero denominator");
        let sign_flip = denom.is_negative();
        let n = if sign_flip { numer.neg_ref() } else { numer };
        Self::new_raw(n, denom.into_magnitude())
    }

    fn new_raw(numer: BigInt, denom: BigUint) -> Self {
        if numer.is_zero() {
            return BigRational::zero();
        }
        let g = numer.magnitude().gcd(&denom);
        if g.is_one() {
            BigRational { numer, denom }
        } else {
            let (nq, nr) = numer.magnitude().div_rem(&g);
            debug_assert!(nr.is_zero());
            let (dq, dr) = denom.div_rem(&g);
            debug_assert!(dr.is_zero());
            BigRational {
                numer: BigInt::from_sign_mag(numer.sign(), nq),
                denom: dq,
            }
        }
    }

    /// Construct from machine integers.
    pub fn from_ratio(numer: i64, denom: u64) -> Self {
        assert!(denom != 0, "rational with zero denominator");
        Self::new_raw(BigInt::from_i64(numer), BigUint::from_u64(denom))
    }

    /// Construct the integer `v`.
    pub fn from_int(v: i64) -> Self {
        BigRational {
            numer: BigInt::from_i64(v),
            denom: BigUint::one(),
        }
    }

    /// Numerator (signed, normalized).
    pub fn numer(&self) -> &BigInt {
        &self.numer
    }

    /// Denominator (positive, normalized).
    pub fn denom(&self) -> &BigUint {
        &self.denom
    }

    pub fn is_zero(&self) -> bool {
        self.numer.is_zero()
    }

    pub fn is_one(&self) -> bool {
        self.denom.is_one() && self.numer == BigInt::one()
    }

    pub fn is_negative(&self) -> bool {
        self.numer.is_negative()
    }

    /// True iff the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.denom.is_one()
    }

    /// True iff the denominator is a power of two (integers count as dyadic).
    ///
    /// Theorem 5.3 of the paper splits on exactly this property: dyadic
    /// probabilities reduce to #DNF directly, general rationals need the
    /// legal/illegal-assignment accounting.
    pub fn is_dyadic(&self) -> bool {
        self.denom.is_one() || self.denom.is_power_of_two()
    }

    /// True iff `0 <= self <= 1`.
    pub fn is_probability(&self) -> bool {
        !self.is_negative() && *self <= BigRational::one()
    }

    pub fn add_ref(&self, other: &BigRational) -> BigRational {
        // a/b + c/d = (a*d + c*b) / (b*d)
        let bd = self.denom.mul_ref(&other.denom);
        let ad = self
            .numer
            .mul_ref(&BigInt::from_biguint(other.denom.clone()));
        let cb = other
            .numer
            .mul_ref(&BigInt::from_biguint(self.denom.clone()));
        Self::new_raw(ad.add_ref(&cb), bd)
    }

    pub fn sub_ref(&self, other: &BigRational) -> BigRational {
        self.add_ref(&other.neg_ref())
    }

    pub fn mul_ref(&self, other: &BigRational) -> BigRational {
        Self::new_raw(
            self.numer.mul_ref(&other.numer),
            self.denom.mul_ref(&other.denom),
        )
    }

    /// `self / other`.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn div_ref(&self, other: &BigRational) -> BigRational {
        assert!(!other.is_zero(), "rational division by zero");
        let numer = self
            .numer
            .mul_ref(&BigInt::from_biguint(other.denom.clone()));
        let denom_mag = self.denom.mul_ref(other.numer.magnitude());
        let numer = if other.numer.is_negative() {
            numer.neg_ref()
        } else {
            numer
        };
        Self::new_raw(numer, denom_mag)
    }

    pub fn neg_ref(&self) -> BigRational {
        BigRational {
            numer: self.numer.neg_ref(),
            denom: self.denom.clone(),
        }
    }

    /// `1 - self`. Ubiquitous for flipping `μ` to `ν` and back.
    pub fn one_minus(&self) -> BigRational {
        BigRational::one().sub_ref(self)
    }

    /// Absolute value.
    pub fn abs(&self) -> BigRational {
        BigRational {
            numer: self.numer.abs(),
            denom: self.denom.clone(),
        }
    }

    /// `self^exp` for a signed exponent (negative exponent inverts).
    pub fn pow(&self, exp: i64) -> BigRational {
        if exp == 0 {
            return BigRational::one();
        }
        let e = exp.unsigned_abs();
        let n_mag = self.numer.magnitude().pow(e);
        let d = self.denom.pow(e);
        let sign = if self.numer.is_negative() && e % 2 == 1 {
            Sign::Negative
        } else {
            Sign::Positive
        };
        let base = if self.numer.is_zero() {
            assert!(exp > 0, "0^negative is undefined");
            return BigRational::zero();
        } else {
            BigRational {
                numer: BigInt::from_sign_mag(sign, n_mag),
                denom: d,
            }
        };
        if exp > 0 {
            base
        } else {
            BigRational::one().div_ref(&base)
        }
    }

    /// Approximate as `f64` (exact for small values; best-effort for huge).
    pub fn to_f64(&self) -> f64 {
        if self.numer.is_zero() {
            return 0.0;
        }
        let nbits = self.numer.magnitude().bit_length() as i64;
        let dbits = self.denom.bit_length() as i64;
        // Scale both to ~64 significant bits to avoid overflow/underflow.
        let nshift = (nbits - 63).max(0) as u64;
        let dshift = (dbits - 63).max(0) as u64;
        let n = self.numer.magnitude().shr_bits(nshift).to_u64().unwrap() as f64;
        let d = self.denom.shr_bits(dshift).to_u64().unwrap() as f64;
        let mag = n / d * (2f64).powi(nshift as i32 - dshift as i32);
        if self.numer.is_negative() {
            -mag
        } else {
            mag
        }
    }

    /// Parse `"p"`, `"-p"`, `"p/q"` or `"-p/q"` (decimal).
    pub fn parse(s: &str) -> Result<BigRational, ParseNumError> {
        match s.split_once('/') {
            None => Ok(BigRational {
                numer: BigInt::parse_decimal(s.trim())?,
                denom: BigUint::one(),
            }),
            Some((n, d)) => {
                let numer = BigInt::parse_decimal(n.trim())?;
                let denom = BigUint::parse_decimal(d.trim())?;
                if denom.is_zero() {
                    return Err(ParseNumError::new("zero denominator"));
                }
                Ok(Self::new_raw(numer, denom))
            }
        }
    }

    /// Floor of the value as a `BigInt`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.numer.magnitude().div_rem(&self.denom);
        match self.numer.sign() {
            Sign::Zero => BigInt::zero(),
            Sign::Positive => BigInt::from_biguint(q),
            Sign::Negative => {
                let base = BigInt::from_biguint(q).neg_ref();
                if r.is_zero() {
                    base
                } else {
                    base.sub_ref(&BigInt::one())
                }
            }
        }
    }

    /// Ceiling of the value as a `BigInt`.
    pub fn ceil(&self) -> BigInt {
        self.neg_ref().floor().neg_ref()
    }
}

impl Ord for BigRational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d  <=>  a*d vs c*b   (b, d > 0)
        let ad = self
            .numer
            .mul_ref(&BigInt::from_biguint(other.denom.clone()));
        let cb = other
            .numer
            .mul_ref(&BigInt::from_biguint(self.denom.clone()));
        ad.cmp(&cb)
    }
}

impl PartialOrd for BigRational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denom.is_one() {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

impl fmt::Debug for BigRational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigRational({self})")
    }
}

impl std::str::FromStr for BigRational {
    type Err = ParseNumError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BigRational::parse(s)
    }
}

impl From<i64> for BigRational {
    fn from(v: i64) -> Self {
        BigRational::from_int(v)
    }
}

macro_rules! rat_binop {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl $trait for BigRational {
            type Output = BigRational;
            fn $method(self, rhs: BigRational) -> BigRational {
                self.$inner(&rhs)
            }
        }
        impl<'a> $trait<&'a BigRational> for &BigRational {
            type Output = BigRational;
            fn $method(self, rhs: &'a BigRational) -> BigRational {
                self.$inner(rhs)
            }
        }
    };
}

rat_binop!(Add, add, add_ref);
rat_binop!(Sub, sub, sub_ref);
rat_binop!(Mul, mul, mul_ref);
rat_binop!(Div, div, div_ref);

impl Neg for BigRational {
    type Output = BigRational;
    fn neg(self) -> BigRational {
        self.neg_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-6, 9), r(-2, 3));
        assert_eq!(r(0, 7), BigRational::zero());
        assert_eq!(r(1, 2).denom(), &BigUint::from_u32(2));
        let neg_den = BigRational::new(BigInt::from_i64(3), BigInt::from_i64(-6));
        assert_eq!(neg_den, r(-1, 2));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(r(1, 2) / r(-1, 4), r(-2, 1));
    }

    #[test]
    fn one_minus() {
        assert_eq!(r(1, 3).one_minus(), r(2, 3));
        assert_eq!(BigRational::zero().one_minus(), BigRational::one());
        assert_eq!(r(1, 3).one_minus().one_minus(), r(1, 3));
    }

    #[test]
    fn comparison() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == BigRational::one());
        assert!(r(2, 3) <= r(2, 3));
    }

    #[test]
    fn dyadic_detection() {
        assert!(r(3, 8).is_dyadic());
        assert!(r(1, 1).is_dyadic());
        assert!(r(5, 1).is_dyadic());
        assert!(!r(1, 3).is_dyadic());
        assert!(!r(5, 12).is_dyadic());
        assert!(r(1, 1024).is_dyadic());
    }

    #[test]
    fn probability_range() {
        assert!(r(0, 1).is_probability());
        assert!(r(1, 1).is_probability());
        assert!(r(1, 2).is_probability());
        assert!(!r(-1, 2).is_probability());
        assert!(!r(3, 2).is_probability());
    }

    #[test]
    fn pow() {
        assert_eq!(r(2, 3).pow(3), r(8, 27));
        assert_eq!(r(2, 3).pow(0), BigRational::one());
        assert_eq!(r(2, 3).pow(-1), r(3, 2));
        assert_eq!(r(-1, 2).pow(2), r(1, 4));
        assert_eq!(r(-1, 2).pow(3), r(-1, 8));
        assert_eq!(BigRational::zero().pow(5), BigRational::zero());
    }

    #[test]
    fn to_f64_accuracy() {
        assert!((r(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(r(-7, 2).to_f64(), -3.5);
        assert_eq!(BigRational::zero().to_f64(), 0.0);
        // Huge numerator/denominator ratio still finite and ~1.
        let big = BigUint::from_u32(3).pow(200);
        let x = BigRational::new(BigInt::from_biguint(big.clone()), BigInt::from_biguint(big));
        assert_eq!(x.to_f64(), 1.0);
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in ["0", "1", "-3", "1/2", "-7/12", "355/113"] {
            let v = BigRational::parse(s).unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!(BigRational::parse("2/4").unwrap().to_string(), "1/2");
        assert!(BigRational::parse("1/0").is_err());
        assert!(BigRational::parse("x/2").is_err());
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from_i64(3));
        assert_eq!(r(7, 2).ceil(), BigInt::from_i64(4));
        assert_eq!(r(-7, 2).floor(), BigInt::from_i64(-4));
        assert_eq!(r(-7, 2).ceil(), BigInt::from_i64(-3));
        assert_eq!(r(6, 2).floor(), BigInt::from_i64(3));
        assert_eq!(r(6, 2).ceil(), BigInt::from_i64(3));
        assert_eq!(BigRational::zero().floor(), BigInt::zero());
    }

    #[test]
    fn product_of_many_probabilities_stays_exact() {
        // The workload that motivates exact arithmetic: a product of many
        // small rationals that would underflow f64 multiplication chains.
        let mut acc = BigRational::one();
        for i in 1..=200u64 {
            acc = acc.mul_ref(&BigRational::from_ratio(1, i + 1));
        }
        // acc = 1/201!
        assert!(acc > BigRational::zero());
        assert!(acc.numer() == &BigInt::one());
    }
}
