//! Signed arbitrary-precision integers.

use crate::{BigUint, ParseNumError};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sign {
    Negative,
    Zero,
    Positive,
}

/// A signed arbitrary-precision integer.
///
/// Invariant: `mag` is zero iff `sign == Sign::Zero`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(from = "RawBigInt")]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

/// Deserialization shadow: renormalizes the zero representation so the
/// `mag == 0 ⇔ sign == Zero` invariant cannot be bypassed through serde.
#[derive(Deserialize)]
struct RawBigInt {
    sign: Sign,
    mag: BigUint,
}

impl From<RawBigInt> for BigInt {
    fn from(raw: RawBigInt) -> Self {
        if raw.mag.is_zero() {
            BigInt::zero()
        } else if raw.sign == Sign::Zero {
            BigInt {
                sign: Sign::Positive,
                mag: raw.mag,
            }
        } else {
            BigInt {
                sign: raw.sign,
                mag: raw.mag,
            }
        }
    }
}

impl BigInt {
    /// The value 0.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Positive,
            mag: BigUint::one(),
        }
    }

    /// Construct from sign and magnitude, normalizing zero.
    pub fn from_sign_mag(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            assert!(sign != Sign::Zero, "nonzero magnitude with Sign::Zero");
            BigInt { sign, mag }
        }
    }

    /// Construct from an `i64`.
    pub fn from_i64(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt {
                sign: Sign::Positive,
                mag: BigUint::from_u64(v as u64),
            },
            Ordering::Less => BigInt {
                sign: Sign::Negative,
                mag: BigUint::from_u64(v.unsigned_abs()),
            },
        }
    }

    /// Construct a non-negative value from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        BigInt::from_biguint(BigUint::from_u64(v))
    }

    /// Construct a non-negative value from a [`BigUint`].
    pub fn from_biguint(mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            BigInt {
                sign: Sign::Positive,
                mag,
            }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Consume into the magnitude, discarding the sign.
    pub fn into_magnitude(self) -> BigUint {
        self.mag
    }

    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt::from_biguint(self.mag.clone())
    }

    /// Convert to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        let m = self.mag.to_u64()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i64::try_from(m).ok(),
            Sign::Negative => {
                if m == i64::MIN.unsigned_abs() {
                    Some(i64::MIN)
                } else {
                    i64::try_from(m).ok().map(|v| -v)
                }
            }
        }
    }

    /// Best-effort conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        match self.sign {
            Sign::Negative => -m,
            _ => m,
        }
    }

    pub fn add_ref(&self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt {
                sign: a,
                mag: self.mag.add_ref(&other.mag),
            },
            _ => {
                // Opposite signs: subtract smaller magnitude from larger.
                match self.mag.cmp(&other.mag) {
                    Ordering::Equal => BigInt::zero(),
                    Ordering::Greater => BigInt {
                        sign: self.sign,
                        mag: self.mag.checked_sub(&other.mag).unwrap(),
                    },
                    Ordering::Less => BigInt {
                        sign: other.sign,
                        mag: other.mag.checked_sub(&self.mag).unwrap(),
                    },
                }
            }
        }
    }

    pub fn neg_ref(&self) -> BigInt {
        let sign = match self.sign {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        };
        BigInt {
            sign,
            mag: self.mag.clone(),
        }
    }

    pub fn sub_ref(&self, other: &BigInt) -> BigInt {
        self.add_ref(&other.neg_ref())
    }

    pub fn mul_ref(&self, other: &BigInt) -> BigInt {
        let sign = match (self.sign, other.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => return BigInt::zero(),
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        BigInt {
            sign,
            mag: self.mag.mul_ref(&other.mag),
        }
    }

    /// Parse a decimal string with optional leading `-` or `+`.
    pub fn parse_decimal(s: &str) -> Result<BigInt, ParseNumError> {
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Negative, rest),
            None => (Sign::Positive, s.strip_prefix('+').unwrap_or(s)),
        };
        let mag = BigUint::parse_decimal(digits)?;
        if mag.is_zero() {
            Ok(BigInt::zero())
        } else {
            Ok(BigInt { sign, mag })
        }
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(s: Sign) -> i8 {
            match s {
                Sign::Negative => -1,
                Sign::Zero => 0,
                Sign::Positive => 1,
            }
        }
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => match self.sign {
                Sign::Zero => Ordering::Equal,
                Sign::Positive => self.mag.cmp(&other.mag),
                Sign::Negative => other.mag.cmp(&self.mag),
            },
            ord => ord,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl std::str::FromStr for BigInt {
    type Err = ParseNumError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BigInt::parse_decimal(s)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::from_i64(v)
    }
}

impl From<BigUint> for BigInt {
    fn from(v: BigUint) -> Self {
        BigInt::from_biguint(v)
    }
}

impl Add for BigInt {
    type Output = BigInt;
    fn add(self, rhs: BigInt) -> BigInt {
        self.add_ref(&rhs)
    }
}

impl<'a> Add<&'a BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &'a BigInt) -> BigInt {
        self.add_ref(rhs)
    }
}

impl Sub for BigInt {
    type Output = BigInt;
    fn sub(self, rhs: BigInt) -> BigInt {
        self.sub_ref(&rhs)
    }
}

impl<'a> Sub<&'a BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &'a BigInt) -> BigInt {
        self.sub_ref(rhs)
    }
}

impl Mul for BigInt {
    type Output = BigInt;
    fn mul(self, rhs: BigInt) -> BigInt {
        self.mul_ref(&rhs)
    }
}

impl<'a> Mul<&'a BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &'a BigInt) -> BigInt {
        self.mul_ref(rhs)
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        self.neg_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> BigInt {
        BigInt::from_i64(v)
    }

    #[test]
    fn sign_normalization() {
        assert!(i(0).is_zero());
        assert_eq!(
            BigInt::from_sign_mag(Sign::Negative, BigUint::zero()),
            BigInt::zero()
        );
    }

    #[test]
    fn add_mixed_signs() {
        assert_eq!(i(5) + i(-3), i(2));
        assert_eq!(i(3) + i(-5), i(-2));
        assert_eq!(i(-5) + i(-3), i(-8));
        assert_eq!(i(5) + i(-5), i(0));
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(i(5) - i(8), i(-3));
        assert_eq!(-i(7), i(-7));
        assert_eq!(-i(0), i(0));
        assert_eq!(i(-4) - i(-4), i(0));
    }

    #[test]
    fn mul_signs() {
        assert_eq!(i(3) * i(-4), i(-12));
        assert_eq!(i(-3) * i(-4), i(12));
        assert_eq!(i(0) * i(-4), i(0));
    }

    #[test]
    fn ordering_across_signs() {
        assert!(i(-5) < i(-3));
        assert!(i(-1) < i(0));
        assert!(i(0) < i(1));
        assert!(i(3) < i(5));
    }

    #[test]
    fn display_parse() {
        assert_eq!(i(-123).to_string(), "-123");
        assert_eq!(BigInt::parse_decimal("-456").unwrap(), i(-456));
        assert_eq!(BigInt::parse_decimal("+7").unwrap(), i(7));
        assert_eq!(BigInt::parse_decimal("-0").unwrap(), i(0));
    }

    #[test]
    fn i64_roundtrip_extremes() {
        for v in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX] {
            assert_eq!(BigInt::from_i64(v).to_i64(), Some(v));
        }
    }
}
