//! Unsigned arbitrary-precision integers.

use crate::ParseNumError;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, BitAnd, Div, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};

/// An unsigned arbitrary-precision integer.
///
/// Invariant: `limbs` is little-endian with no trailing zero limbs, so the
/// canonical zero is the empty limb vector. All public constructors and
/// operations maintain this invariant, which makes `Eq`/`Hash` structural.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[serde(from = "RawBigUint")]
pub struct BigUint {
    limbs: Vec<u32>,
}

/// Deserialization shadow: accepts any limb vector and canonicalizes
/// (trims trailing zeros) so the no-trailing-zeros invariant cannot be
/// bypassed through serde.
#[derive(Deserialize)]
struct RawBigUint {
    limbs: Vec<u32>,
}

impl From<RawBigUint> for BigUint {
    fn from(raw: RawBigUint) -> Self {
        let mut limbs = raw.limbs;
        trim(&mut limbs);
        BigUint { limbs }
    }
}

const BASE_BITS: u32 = 32;

/// Operand size (in limbs) above which multiplication switches to
/// Karatsuba. Chosen empirically; below this, schoolbook's cache
/// behaviour wins.
const KARATSUBA_THRESHOLD: usize = 32;

impl BigUint {
    /// The value 0.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Construct from a primitive.
    pub fn from_u64(v: u64) -> Self {
        let lo = (v & 0xffff_ffff) as u32;
        let hi = (v >> 32) as u32;
        let mut limbs = vec![lo, hi];
        trim(&mut limbs);
        BigUint { limbs }
    }

    /// Construct from a primitive.
    pub fn from_u32(v: u32) -> Self {
        let mut limbs = vec![v];
        trim(&mut limbs);
        BigUint { limbs }
    }

    /// Construct from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let mut limbs = vec![
            (v & 0xffff_ffff) as u32,
            ((v >> 32) & 0xffff_ffff) as u32,
            ((v >> 64) & 0xffff_ffff) as u32,
            ((v >> 96) & 0xffff_ffff) as u32,
        ];
        trim(&mut limbs);
        BigUint { limbs }
    }

    /// Convert to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | ((self.limbs[1] as u64) << 32)),
            _ => None,
        }
    }

    /// Convert to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            v |= (l as u128) << (32 * i);
        }
        Some(v)
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even. Zero counts as even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (`0` for the value 0).
    pub fn bit_length(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => {
                (self.limbs.len() as u64 - 1) * BASE_BITS as u64 + (32 - top.leading_zeros()) as u64
            }
        }
    }

    /// The `i`-th bit (little-endian), `false` beyond the top.
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / BASE_BITS as u64) as usize;
        let off = (i % BASE_BITS as u64) as u32;
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// True iff the value is a power of two (requires value > 0).
    pub fn is_power_of_two(&self) -> bool {
        if self.is_zero() {
            return false;
        }
        let mut seen_nonzero = false;
        for &l in &self.limbs {
            if l != 0 {
                if seen_nonzero || !l.is_power_of_two() {
                    return false;
                }
                seen_nonzero = true;
            }
        }
        // Top limb is nonzero by the trim invariant, so the single nonzero
        // limb (if any) must be the power-of-two one.
        seen_nonzero
    }

    /// Number of trailing zero bits; `None` for the value 0.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i as u64 * BASE_BITS as u64 + l.trailing_zeros() as u64);
            }
        }
        None
    }

    /// `self + other`.
    pub fn add_ref(&self, other: &BigUint) -> BigUint {
        let (longer, shorter) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(longer.len() + 1);
        let mut carry: u64 = 0;
        for (i, &limb) in longer.iter().enumerate() {
            let a = limb as u64;
            let b = shorter.get(i).copied().unwrap_or(0) as u64;
            let s = a + b + carry;
            out.push((s & 0xffff_ffff) as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        trim(&mut out);
        BigUint { limbs: out }
    }

    /// `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow: i64 = 0;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i] as i64;
            let b = other.limbs.get(i).copied().unwrap_or(0) as i64;
            let mut d = a - b - borrow;
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        debug_assert_eq!(borrow, 0);
        trim(&mut out);
        Some(BigUint { limbs: out })
    }

    /// `self * other` — schoolbook below `KARATSUBA_THRESHOLD` limbs,
    /// Karatsuba above it.
    pub fn mul_ref(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        if self.limbs.len().min(other.limbs.len()) >= KARATSUBA_THRESHOLD {
            return self.mul_karatsuba(other);
        }
        self.mul_schoolbook(other)
    }

    fn mul_schoolbook(&self, other: &BigUint) -> BigUint {
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry: u64 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = (cur & 0xffff_ffff) as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = (cur & 0xffff_ffff) as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        trim(&mut out);
        BigUint { limbs: out }
    }

    /// Karatsuba: split both operands at `m` limbs; three recursive
    /// multiplications instead of four. `z1 = (a0+a1)(b0+b1) − z0 − z2`
    /// is non-negative, so the `checked_sub`s cannot fail.
    fn mul_karatsuba(&self, other: &BigUint) -> BigUint {
        let m = self.limbs.len().min(other.limbs.len()) / 2;
        let (a0, a1) = self.split_at_limb(m);
        let (b0, b1) = other.split_at_limb(m);
        let z0 = a0.mul_ref(&b0);
        let z2 = a1.mul_ref(&b1);
        let z1 = a0
            .add_ref(&a1)
            .mul_ref(&b0.add_ref(&b1))
            .checked_sub(&z0)
            .expect("Karatsuba middle term is non-negative")
            .checked_sub(&z2)
            .expect("Karatsuba middle term is non-negative");
        // z2·B^{2m} + z1·B^m + z0 where B = 2^32.
        z2.shl_bits(64 * m as u64)
            .add_ref(&z1.shl_bits(32 * m as u64))
            .add_ref(&z0)
    }

    /// Split into (low `m` limbs, the rest).
    fn split_at_limb(&self, m: usize) -> (BigUint, BigUint) {
        if m >= self.limbs.len() {
            return (self.clone(), BigUint::zero());
        }
        let mut low = self.limbs[..m].to_vec();
        trim(&mut low);
        let mut high = self.limbs[m..].to_vec();
        trim(&mut high);
        (BigUint { limbs: low }, BigUint { limbs: high })
    }

    /// Quotient and remainder of `self / divisor`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero BigUint");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_u32(divisor.limbs[0]);
            return (q, BigUint::from_u32(r));
        }
        self.div_rem_knuth(divisor)
    }

    /// Fast path: divide by a single `u32`.
    pub fn div_rem_u32(&self, divisor: u32) -> (BigUint, u32) {
        assert!(divisor != 0, "division by zero u32");
        let d = divisor as u64;
        let mut out = vec![0u32; self.limbs.len()];
        let mut rem: u64 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | self.limbs[i] as u64;
            out[i] = (cur / d) as u32;
            rem = cur % d;
        }
        trim(&mut out);
        (BigUint { limbs: out }, rem as u32)
    }

    /// Knuth Algorithm D. Preconditions: divisor has ≥ 2 limbs, self > divisor.
    fn div_rem_knuth(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().unwrap().leading_zeros();
        let v = divisor.shl_bits(shift as u64);
        let mut u = self.shl_bits(shift as u64).limbs;
        let n = v.limbs.len();
        let m = u.len() - n; // u.len() >= n since self > divisor
        u.push(0); // extra top limb for the algorithm
        let mut q = vec![0u32; m + 1];
        let vtop = v.limbs[n - 1] as u64;
        let vsec = v.limbs[n - 2] as u64;
        for j in (0..=m).rev() {
            // Estimate q̂ from the top two limbs of the current remainder.
            let num = ((u[j + n] as u64) << 32) | u[j + n - 1] as u64;
            let mut qhat = num / vtop;
            let mut rhat = num % vtop;
            while qhat >= 1 << 32 || qhat * vsec > ((rhat << 32) | u[j + n - 2] as u64) {
                qhat -= 1;
                rhat += vtop;
                if rhat >= 1 << 32 {
                    break;
                }
            }
            // Multiply-and-subtract u[j..j+n+1] -= qhat * v.
            let mut borrow: i64 = 0;
            let mut carry: u64 = 0;
            for i in 0..n {
                let p = qhat * v.limbs[i] as u64 + carry;
                carry = p >> 32;
                let mut d = u[j + i] as i64 - (p & 0xffff_ffff) as i64 - borrow;
                if d < 0 {
                    d += 1 << 32;
                    borrow = 1;
                } else {
                    borrow = 0;
                }
                u[j + i] = d as u32;
            }
            let mut d = u[j + n] as i64 - carry as i64 - borrow;
            if d < 0 {
                // q̂ was one too large: add the divisor back.
                d += 1 << 32;
                u[j + n] = d as u32;
                qhat -= 1;
                let mut carry2: u64 = 0;
                for i in 0..n {
                    let s = u[j + i] as u64 + v.limbs[i] as u64 + carry2;
                    u[j + i] = (s & 0xffff_ffff) as u32;
                    carry2 = s >> 32;
                }
                u[j + n] = u[j + n].wrapping_add(carry2 as u32);
            } else {
                u[j + n] = d as u32;
            }
            q[j] = qhat as u32;
        }
        trim(&mut q);
        let mut r = u;
        r.truncate(n);
        trim(&mut r);
        let rem = BigUint { limbs: r }.shr_bits(shift as u64);
        (BigUint { limbs: q }, rem)
    }

    /// Left shift by an arbitrary number of bits.
    pub fn shl_bits(&self, bits: u64) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / BASE_BITS as u64) as usize;
        let bit_shift = (bits % BASE_BITS as u64) as u32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry: u32 = 0;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        trim(&mut out);
        BigUint { limbs: out }
    }

    /// Right shift by an arbitrary number of bits.
    pub fn shr_bits(&self, bits: u64) -> BigUint {
        let limb_shift = (bits / BASE_BITS as u64) as usize;
        let bit_shift = (bits % BASE_BITS as u64) as u32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out: Vec<u32> = self.limbs[limb_shift..].to_vec();
        if bit_shift > 0 {
            let mut carry: u32 = 0;
            for l in out.iter_mut().rev() {
                let new = (*l >> bit_shift) | carry;
                carry = *l << (32 - bit_shift);
                *l = new;
            }
        }
        trim(&mut out);
        BigUint { limbs: out }
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u64) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_ref(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_ref(&base);
            }
        }
        acc
    }

    /// Greatest common divisor (binary / Stein algorithm — no division).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let mut a = self.clone();
        let mut b = other.clone();
        let za = a.trailing_zeros().unwrap();
        let zb = b.trailing_zeros().unwrap();
        let common = za.min(zb);
        a = a.shr_bits(za);
        b = b.shr_bits(zb);
        // Both odd now.
        loop {
            match a.cmp(&b) {
                Ordering::Equal => break,
                Ordering::Less => std::mem::swap(&mut a, &mut b),
                Ordering::Greater => {}
            }
            a = a.checked_sub(&b).expect("a >= b by the swap above");
            if a.is_zero() {
                break;
            }
            a = a.shr_bits(a.trailing_zeros().unwrap());
        }
        b.shl_bits(common)
    }

    /// Least common multiple. `lcm(0, x) = 0`.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let g = self.gcd(other);
        let (q, r) = self.div_rem(&g);
        debug_assert!(r.is_zero());
        q.mul_ref(other)
    }

    /// Parse a decimal string (no sign).
    pub fn parse_decimal(s: &str) -> Result<BigUint, ParseNumError> {
        if s.is_empty() {
            return Err(ParseNumError::new("empty string"));
        }
        let mut acc = BigUint::zero();
        let ten = BigUint::from_u32(10);
        for c in s.chars() {
            let d = c
                .to_digit(10)
                .ok_or_else(|| ParseNumError::new(format!("invalid digit {c:?}")))?;
            acc = acc.mul_ref(&ten).add_ref(&BigUint::from_u32(d));
        }
        Ok(acc)
    }

    /// Best-effort conversion to `f64` (may overflow to `inf` for huge values).
    pub fn to_f64(&self) -> f64 {
        let bits = self.bit_length();
        if bits <= 64 {
            return self.to_u64().unwrap() as f64;
        }
        // Take the top 64 bits and scale by the dropped exponent.
        let shift = bits - 64;
        let top = self.shr_bits(shift).to_u64().unwrap();
        (top as f64) * (2f64).powi(shift as i32)
    }

    /// Internal access to limbs (for Karatsuba-free cross-checks in tests).
    #[doc(hidden)]
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }
}

fn trim(limbs: &mut Vec<u32>) {
    while limbs.last() == Some(&0) {
        limbs.pop();
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Peel 9 decimal digits at a time.
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u32(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::new();
        s.push_str(&chunks.pop().unwrap().to_string());
        while let Some(c) = chunks.pop() {
            s.push_str(&format!("{c:09}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl std::str::FromStr for BigUint {
    type Err = ParseNumError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BigUint::parse_decimal(s)
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from_u32(v)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_u128(v)
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident, $inner:ident) => {
        impl $trait for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$inner(&rhs)
            }
        }
        impl<'a> $trait<&'a BigUint> for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &'a BigUint) -> BigUint {
                self.$inner(rhs)
            }
        }
    };
}

forward_binop!(Add, add, add_ref);
forward_binop!(Mul, mul, mul_ref);

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        self.checked_sub(&rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl<'a> Sub<&'a BigUint> for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &'a BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Div for BigUint {
    type Output = BigUint;
    fn div(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).0
    }
}

impl<'a> Div<&'a BigUint> for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &'a BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Rem for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: BigUint) -> BigUint {
        self.div_rem(&rhs).1
    }
}

impl<'a> Rem<&'a BigUint> for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &'a BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = self.add_ref(rhs);
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = self
            .checked_sub(rhs)
            .expect("BigUint subtraction underflow");
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = self.mul_ref(rhs);
    }
}

impl Shl<u64> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: u64) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<u64> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: u64) -> BigUint {
        self.shr_bits(bits)
    }
}

impl BitAnd<u32> for &BigUint {
    type Output = u32;
    fn bitand(self, rhs: u32) -> u32 {
        self.limbs.first().copied().unwrap_or(0) & rhs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u128) -> BigUint {
        BigUint::from_u128(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().to_u64(), Some(0));
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
    }

    #[test]
    fn add_small() {
        assert_eq!(b(7) + b(8), b(15));
        assert_eq!(b(u64::MAX as u128) + b(1), b(u64::MAX as u128 + 1));
    }

    #[test]
    fn add_carries_across_limbs() {
        let x = b(0xffff_ffff_ffff_ffff_ffff_ffff_ffff_fffe);
        assert_eq!(x.add_ref(&b(1)), b(u128::MAX));
    }

    #[test]
    fn sub_basic() {
        assert_eq!(b(100) - b(58), b(42));
        assert_eq!(b(1 << 64) - b(1), b((1u128 << 64) - 1));
        assert_eq!(b(5).checked_sub(&b(6)), None);
        assert_eq!(b(5).checked_sub(&b(5)), Some(BigUint::zero()));
    }

    #[test]
    fn mul_basic() {
        assert_eq!(b(12345) * b(67890), b(12345 * 67890));
        assert_eq!(
            b(u64::MAX as u128).mul_ref(&b(u64::MAX as u128)),
            b((u64::MAX as u128) * (u64::MAX as u128))
        );
        assert_eq!(b(0) * b(55), b(0));
    }

    #[test]
    fn div_rem_single_limb() {
        let (q, r) = b(1_000_000_007).div_rem_u32(97);
        assert_eq!(q.to_u64(), Some(1_000_000_007 / 97));
        assert_eq!(r, (1_000_000_007 % 97) as u32);
    }

    #[test]
    fn div_rem_multi_limb() {
        let n = b(0x1234_5678_9abc_def0_1122_3344_5566_7788);
        let d = b(0x0000_0000_ffff_ffff_ffff_ffff_0000_0001);
        let (q, r) = n.div_rem(&d);
        assert_eq!(q.mul_ref(&d).add_ref(&r), n);
        assert!(r < d);
    }

    #[test]
    fn div_rem_exercises_qhat_correction() {
        // Crafted so the initial q̂ estimate is too large.
        let n = BigUint::from_u128(0x8000_0000_0000_0000_0000_0000).shl_bits(32);
        let d = BigUint::from_u128(0x8000_0000_0000_0001);
        let (q, r) = n.div_rem(&d);
        assert_eq!(q.mul_ref(&d).add_ref(&r), n.shl_bits(0));
        assert!(r < d);
    }

    #[test]
    fn shifts_roundtrip() {
        let x = b(0xdead_beef_cafe_babe);
        assert_eq!(x.shl_bits(17).shr_bits(17), x);
        assert_eq!(x.shl_bits(64).shr_bits(64), x);
        assert_eq!(x.shr_bits(200), BigUint::zero());
    }

    #[test]
    fn pow_basic() {
        assert_eq!(b(2).pow(10), b(1024));
        assert_eq!(b(3).pow(0), b(1));
        assert_eq!(b(10).pow(30).to_string(), format!("1{}", "0".repeat(30)));
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(7).gcd(&b(13)), b(1));
        assert_eq!(b(4).lcm(&b(6)), b(12));
        assert_eq!(b(0).lcm(&b(6)), b(0));
        // Large coprime pair.
        let p = BigUint::parse_decimal("618970019642690137449562111").unwrap(); // 2^89-1
        let q = BigUint::parse_decimal("162259276829213363391578010288127").unwrap(); // 2^107-1
        assert_eq!(p.gcd(&q), BigUint::one());
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in [
            "0",
            "1",
            "999999999",
            "1000000000",
            "123456789012345678901234567890",
        ] {
            let v = BigUint::parse_decimal(s).unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!(BigUint::parse_decimal("12x").is_err());
        assert!(BigUint::parse_decimal("").is_err());
    }

    #[test]
    fn ordering() {
        assert!(b(3) < b(5));
        assert!(b(1 << 80) > b(u64::MAX as u128));
        assert_eq!(b(42).cmp(&b(42)), Ordering::Equal);
    }

    #[test]
    fn bit_length_and_bits() {
        assert_eq!(BigUint::zero().bit_length(), 0);
        assert_eq!(b(1).bit_length(), 1);
        assert_eq!(b(255).bit_length(), 8);
        assert_eq!(b(256).bit_length(), 9);
        assert_eq!(b(1 << 100).bit_length(), 101);
        assert!(b(4).bit(2));
        assert!(!b(4).bit(1));
        assert!(!b(4).bit(500));
    }

    #[test]
    fn power_of_two_detection() {
        assert!(b(1).is_power_of_two());
        assert!(b(1 << 77).is_power_of_two());
        assert!(!b(3).is_power_of_two());
        assert!(!b(0).is_power_of_two());
        assert!(!b((1 << 40) + 4).is_power_of_two());
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(b(0).trailing_zeros(), None);
        assert_eq!(b(1).trailing_zeros(), Some(0));
        assert_eq!(b(8).trailing_zeros(), Some(3));
        assert_eq!(b(1 << 90).trailing_zeros(), Some(90));
    }

    #[test]
    fn to_f64_large() {
        let x = b(1 << 100);
        let f = x.to_f64();
        assert!((f - (2f64).powi(100)).abs() / (2f64).powi(100) < 1e-9);
    }
}
