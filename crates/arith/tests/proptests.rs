//! Property-based tests cross-checking bignum arithmetic against `u128`
//! primitives and algebraic laws.

use proptest::prelude::*;
use qrel_arith::{BigInt, BigRational, BigUint};

fn bu(v: u128) -> BigUint {
    BigUint::from_u128(v)
}

proptest! {
    #[test]
    fn add_matches_u128(a in 0u128..=u128::MAX / 2, b in 0u128..=u128::MAX / 2) {
        prop_assert_eq!(bu(a).add_ref(&bu(b)), bu(a + b));
    }

    #[test]
    fn sub_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(bu(hi).checked_sub(&bu(lo)), Some(bu(hi - lo)));
        if hi != lo {
            prop_assert_eq!(bu(lo).checked_sub(&bu(hi)), None);
        }
    }

    #[test]
    fn mul_matches_u128(a in 0u128..=u64::MAX as u128, b in 0u128..=u64::MAX as u128) {
        prop_assert_eq!(bu(a).mul_ref(&bu(b)), bu(a * b));
    }

    #[test]
    fn div_rem_matches_u128(a in any::<u128>(), b in 1u128..=u128::MAX) {
        let (q, r) = bu(a).div_rem(&bu(b));
        prop_assert_eq!(q, bu(a / b));
        prop_assert_eq!(r, bu(a % b));
    }

    #[test]
    fn div_rem_reconstructs(a_limbs in proptest::collection::vec(any::<u64>(), 1..8),
                            b_limbs in proptest::collection::vec(any::<u64>(), 1..5)) {
        // Build large operands beyond u128 range.
        let mut a = BigUint::zero();
        for l in &a_limbs {
            a = a.shl_bits(64).add_ref(&BigUint::from_u64(*l));
        }
        let mut b = BigUint::zero();
        for l in &b_limbs {
            b = b.shl_bits(64).add_ref(&BigUint::from_u64(*l));
        }
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.mul_ref(&b).add_ref(&r), a);
    }

    #[test]
    fn gcd_divides_both_and_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        }
        let g = bu(a as u128).gcd(&bu(b as u128));
        prop_assert_eq!(g.to_u64(), Some(gcd_u64(a, b)));
    }

    #[test]
    fn shifts_invert(v in any::<u128>(), s in 0u64..300) {
        let x = bu(v);
        prop_assert_eq!(x.shl_bits(s).shr_bits(s), x);
    }

    #[test]
    fn display_parse_roundtrip(v in any::<u128>()) {
        let x = bu(v);
        prop_assert_eq!(x.to_string(), v.to_string());
        prop_assert_eq!(BigUint::parse_decimal(&x.to_string()).unwrap(), x);
    }

    #[test]
    fn bigint_ring_laws(a in any::<i64>(), b in any::<i64>(), c in any::<i64>()) {
        let (x, y, z) = (BigInt::from_i64(a), BigInt::from_i64(b), BigInt::from_i64(c));
        prop_assert_eq!(x.add_ref(&y), y.add_ref(&x));
        prop_assert_eq!(x.add_ref(&y).add_ref(&z), x.add_ref(&y.add_ref(&z)));
        prop_assert_eq!(x.mul_ref(&y), y.mul_ref(&x));
        prop_assert_eq!(x.mul_ref(&y.add_ref(&z)), x.mul_ref(&y).add_ref(&x.mul_ref(&z)));
        prop_assert_eq!(x.sub_ref(&x), BigInt::zero());
    }

    #[test]
    fn bigint_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let sum = BigInt::from_i64(a).add_ref(&BigInt::from_i64(b));
        prop_assert_eq!(sum.to_string(), (a as i128 + b as i128).to_string());
        let prod = BigInt::from_i64(a).mul_ref(&BigInt::from_i64(b));
        prop_assert_eq!(prod.to_string(), (a as i128 * b as i128).to_string());
    }

    #[test]
    fn rational_field_laws(an in -1000i64..1000, ad in 1u64..1000,
                           bn in -1000i64..1000, bd in 1u64..1000,
                           cn in -1000i64..1000, cd in 1u64..1000) {
        let a = BigRational::from_ratio(an, ad);
        let b = BigRational::from_ratio(bn, bd);
        let c = BigRational::from_ratio(cn, cd);
        prop_assert_eq!(a.add_ref(&b), b.add_ref(&a));
        prop_assert_eq!(a.mul_ref(&b), b.mul_ref(&a));
        prop_assert_eq!(a.mul_ref(&b.add_ref(&c)), a.mul_ref(&b).add_ref(&a.mul_ref(&c)));
        if !b.is_zero() {
            prop_assert_eq!(a.div_ref(&b).mul_ref(&b), a.clone());
        }
        prop_assert_eq!(a.sub_ref(&b).add_ref(&b), a);
    }

    #[test]
    fn rational_normalized(an in -10_000i64..10_000, ad in 1u64..10_000) {
        let a = BigRational::from_ratio(an, ad);
        let g = a.numer().magnitude().gcd(a.denom());
        prop_assert!(a.is_zero() || g.is_one());
    }

    #[test]
    fn rational_cmp_matches_f64(an in -1000i64..1000, ad in 1u64..1000,
                                bn in -1000i64..1000, bd in 1u64..1000) {
        let a = BigRational::from_ratio(an, ad);
        let b = BigRational::from_ratio(bn, bd);
        let fa = an as f64 / ad as f64;
        let fb = bn as f64 / bd as f64;
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn one_minus_involution(n in 0i64..1000, d in 1u64..1000) {
        prop_assume!(n as u64 <= d);
        let p = BigRational::from_ratio(n, d);
        prop_assert!(p.is_probability());
        prop_assert!(p.one_minus().is_probability());
        prop_assert_eq!(p.one_minus().one_minus(), p);
    }

    #[test]
    fn floor_ceil_consistent(n in -10_000i64..10_000, d in 1u64..100) {
        let x = BigRational::from_ratio(n, d);
        let f = x.floor();
        let c = x.ceil();
        // floor <= x <= ceil, and they differ by at most 1.
        let fr = BigRational::new(f.clone(), BigInt::one());
        let cr = BigRational::new(c.clone(), BigInt::one());
        prop_assert!(fr <= x && x <= cr);
        let diff = c.sub_ref(&f);
        prop_assert!(diff == BigInt::zero() || diff == BigInt::one());
        prop_assert_eq!(diff == BigInt::zero(), x.is_integer());
    }

    #[test]
    fn lcm_is_common_multiple(a in 1u64..100_000, b in 1u64..100_000) {
        let l = BigUint::from_u64(a).lcm(&BigUint::from_u64(b));
        prop_assert!(l.div_rem(&BigUint::from_u64(a)).1.is_zero());
        prop_assert!(l.div_rem(&BigUint::from_u64(b)).1.is_zero());
    }
}

proptest! {
    /// Karatsuba agrees with schoolbook well past the threshold.
    #[test]
    fn karatsuba_matches_schoolbook(a in proptest::collection::vec(any::<u32>(), 60..90),
                                    b in proptest::collection::vec(any::<u32>(), 60..90)) {
        // Build operands limb by limb (shift-and-add keeps it independent
        // of the multiplication under test).
        let build = |limbs: &[u32]| {
            let mut x = BigUint::zero();
            for &l in limbs.iter().rev() {
                x = x.shl_bits(32).add_ref(&BigUint::from_u32(l));
            }
            x
        };
        let x = build(&a);
        let y = build(&b);
        let product = x.mul_ref(&y);
        // Verify by reconstruction through division (Knuth D is
        // independently tested against u128).
        if !y.is_zero() {
            let (q, r) = product.div_rem(&y);
            prop_assert_eq!(q, x);
            prop_assert!(r.is_zero());
        }
    }
}
