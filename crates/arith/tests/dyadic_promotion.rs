//! Property tests pinning the dyadic→`BigRational` promotion boundary.
//!
//! The contract under test (DESIGN.md §15): a `FastProb` chain may switch
//! representation from fixed-width [`Dyadic`] to [`BigRational`] at any
//! point, but the *value* it denotes never changes — the result of any
//! mixed chain is exactly equal (structural `Eq` on gcd-normalized
//! rationals) to running the whole chain in `BigRational` from the start.
//! The generators deliberately park operands near `u128` overflow so a
//! large fraction of the sampled chains cross the boundary mid-stream.

use proptest::prelude::*;
use qrel_arith::{BigInt, BigRational, BigUint, Dyadic, FastProb};

/// Mirror of the fast path's ops, run entirely in `BigRational`.
#[derive(Debug, Clone)]
enum Op {
    Add(u128, u32),
    Mul(u128, u32),
    OneMinus,
}

fn dy_rational(num: u128, exp: u32) -> BigRational {
    BigRational::new(
        BigInt::from_biguint(BigUint::from_u128(num)),
        BigInt::from_biguint(BigUint::from_u64(1).shl_bits(u64::from(exp))),
    )
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u128>(), 0u32..=127).prop_map(|(n, e)| Op::Add(n, e)),
        (any::<u128>(), 0u32..=127).prop_map(|(n, e)| Op::Mul(n, e)),
        Just(Op::OneMinus),
    ]
}

proptest! {
    // Round-trip: every representable dyadic converts to a rational and
    // back without loss, and the rational agrees with num/2^exp.
    #[test]
    fn round_trip_is_lossless(num in any::<u128>(), exp in 0u32..=127) {
        let d = Dyadic::from_parts(num, exp);
        let q = d.to_rational();
        prop_assert_eq!(q.clone(), dy_rational(num, exp));
        prop_assert_eq!(Dyadic::from_rational(&q), Some(d));
    }

    // Checked ops agree with BigRational whenever they succeed, for
    // operands spanning the whole u128 range (most additions here
    // overflow; the ones that don't must be exact).
    #[test]
    fn checked_ops_agree_when_defined(
        an in any::<u128>(), ae in 0u32..=127,
        bn in any::<u128>(), be in 0u32..=127,
    ) {
        let a = Dyadic::from_parts(an, ae);
        let b = Dyadic::from_parts(bn, be);
        let (ar, br) = (a.to_rational(), b.to_rational());
        if let Some(s) = a.checked_add(b) {
            prop_assert_eq!(s.to_rational(), ar.add_ref(&br));
        }
        if let Some(p) = a.checked_mul(b) {
            prop_assert_eq!(p.to_rational(), ar.mul_ref(&br));
        }
        if let Some(c) = a.checked_one_minus() {
            prop_assert_eq!(c.to_rational(), ar.one_minus());
        }
    }

    // Near-overflow μ: numerators in the top half of u128 guarantee the
    // second multiplication overflows, so every sampled chain promotes —
    // and the promoted result must equal the always-rational one.
    #[test]
    fn forced_promotion_preserves_value(
        an in (u128::MAX / 2)..=u128::MAX, ae in 120u32..=127,
        bn in (u128::MAX / 2)..=u128::MAX, be in 120u32..=127,
    ) {
        let (aq, bq) = (dy_rational(an, ae), dy_rational(bn, be));
        let a = FastProb::from_rational(&aq);
        let b = FastProb::from_rational(&bq);
        prop_assert!(a.is_dyadic() && b.is_dyadic());
        let prod = a.mul(&b).mul(&a);
        prop_assert!(!prod.is_dyadic(), "top-half numerators must overflow");
        prop_assert_eq!(prod.to_rational(), aq.mul_ref(&bq).mul_ref(&aq));
        let sum = a.add(&b).add(&a.mul(&b));
        prop_assert_eq!(
            sum.to_rational(),
            aq.add_ref(&bq).add_ref(&aq.mul_ref(&bq))
        );
    }

    // Random op chains: apply the same sequence through FastProb and
    // through BigRational; wherever the fast path lands (still dyadic or
    // promoted), the final values must be identical.
    #[test]
    fn random_chain_matches_rational_mirror(
        start_n in any::<u128>(), start_e in 0u32..=127,
        ops in proptest::collection::vec(op_strategy(), 1..12),
    ) {
        let mut fast = FastProb::from_rational(&dy_rational(start_n, start_e));
        let mut exact = dy_rational(start_n, start_e);
        for op in &ops {
            match op {
                Op::Add(n, e) => {
                    let q = dy_rational(*n, *e);
                    fast = fast.add(&FastProb::from_rational(&q));
                    exact = exact.add_ref(&q);
                }
                Op::Mul(n, e) => {
                    let q = dy_rational(*n, *e);
                    fast = fast.mul(&FastProb::from_rational(&q));
                    exact = exact.mul_ref(&q);
                }
                Op::OneMinus => {
                    fast = fast.one_minus();
                    exact = exact.one_minus();
                }
            }
            // one_minus of a promoted value can go negative in the
            // mirror; FastProb stores it as Big, which is still exact.
            prop_assert_eq!(fast.to_rational(), exact.clone());
        }
    }

    // Non-dyadic inputs never enter the fast representation, and mixing
    // them into a chain is exact.
    #[test]
    fn non_dyadic_inputs_stay_big(n in 1i64..=1_000_000, d in 1u64..=1_000_000) {
        let q = BigRational::from_ratio(n, d);
        let f = FastProb::from_rational(&q);
        prop_assert_eq!(f.is_dyadic(), q.is_dyadic());
        let half = FastProb::from_rational(&BigRational::from_ratio(1, 2));
        prop_assert_eq!(
            f.mul(&half).add(&f).to_rational(),
            q.mul_ref(&BigRational::from_ratio(1, 2)).add_ref(&q)
        );
    }
}

/// Hand-planted regression: the exact shape that first exposed silent
/// shift truncation — aligning exponents in `checked_add` must detect
/// lost high bits, not wrap (u128's `checked_shl` does not do this).
#[test]
fn add_alignment_overflow_is_detected_not_truncated() {
    let wide = Dyadic::from_parts(u128::MAX, 7); // odd numerator, 128 bits
    let fine = Dyadic::from_parts(1, 127); // forces a 120-bit alignment shift
    assert_eq!(wide.checked_add(fine), None);

    // Through FastProb the same addition must promote and stay exact.
    let sum = FastProb::Dyadic(wide).add(&FastProb::Dyadic(fine));
    assert!(!sum.is_dyadic());
    assert_eq!(
        sum.to_rational(),
        wide.to_rational().add_ref(&fine.to_rational())
    );
}
