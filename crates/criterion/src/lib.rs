//! Vendored, offline subset of the `criterion` benchmarking API.
//!
//! A deliberately simple wall-clock harness with criterion's call
//! surface: `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`,
//! and `Bencher::iter`. Each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints median / mean / min per
//! iteration. No statistics beyond that, no HTML reports, no comparison
//! baselines — this exists so `cargo bench` works in an offline build.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level harness handle, one per `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(&id.into().label, sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.effective_sample_size(), f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.effective_sample_size(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self._criterion.sample_size)
    }
}

/// Identifier shown next to a benchmark's timings.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    /// Per-sample iteration timings, filled by [`Bencher::iter`].
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.samples.push(elapsed / self.iters_per_sample as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    // Warm-up: one sample, also used to pick an iteration count that
    // gives each timed sample a measurable duration.
    let mut warmup = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut warmup);
    let per_iter = warmup.samples.first().copied().unwrap_or(Duration::ZERO);
    let target = Duration::from_millis(20);
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: iters,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("  {label}: no measurements (closure never called iter)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "  {label}: median {} | mean {} | min {} ({} samples × {} iters)",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
        samples.len(),
        iters,
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(calls > 0);
    }
}
