//! In-memory job scheduler for the serve path.
//!
//! The serve front end parses and validates a request, then enqueues a
//! typed job here; a pool of scheduler workers executes jobs and
//! reports progress and terminal state back through the job record.
//! The scheduler is generic over the payload `P` handed to the
//! executor and the result `R` it produces, so it carries no solver
//! dependencies of its own.
//!
//! Guarantees:
//!
//! - **Bounded per-tenant queues.** Each tenant may hold at most
//!   `per_tenant_cap` non-terminal jobs; submits past the cap are
//!   rejected (the server maps this to `429` + `Retry-After`).
//! - **Priorities, FIFO within priority.** Three bands
//!   (`high`/`normal`/`low`); a worker always drains the highest
//!   non-empty band, and jobs within a band run in submit order.
//!   `reserved_workers` workers skip the `low` band entirely so a
//!   flood of long batch jobs can never starve short interactive ones.
//! - **Coalescing.** Submits carrying the same coalesce key (the
//!   canonical `(db-hash, query, method, eps, delta, seed)` cache key
//!   fingerprint upstream) while an equivalent job is still queued or
//!   running join that job's *group*: one execution, many job records,
//!   every member receiving the same shared [`Arc`] result — N
//!   identical requests cost one solve.
//! - **Cancellation.** Every group owns a [`CancelToken`]. Cancelling
//!   a queued job removes it immediately; cancelling the *last* live
//!   member of a running group fires the token so the executor's
//!   budget machinery can stop the solve. Other members of a coalesced
//!   group are unaffected by one member's cancellation.
//! - **State machine.** `queued → running → done | failed`, plus
//!   `queued → cancelled` and `running → cancelled`. Every transition
//!   is counted and surfaced via [`Scheduler::stats`] for `/metrics`.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use qrel_budget::CancelToken;

/// Names of the scheduler's fault-injection points (re-exported from
/// the `qrel-faults` registry): `sched.queue.spurious_full` makes a
/// submit report a full queue despite capacity remaining, and
/// `sched.worker.stall` stalls a worker just before it executes a job.
pub mod points {
    pub use qrel_faults::points::{SCHED_QUEUE_SPURIOUS_FULL, SCHED_WORKER_STALL};
}

/// Priority band. FIFO within a band; higher bands always drain first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    High,
    #[default]
    Normal,
    Low,
}

impl Priority {
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    fn band(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// Job lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Scheduler sizing knobs.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Maximum non-terminal jobs a single tenant may hold.
    pub per_tenant_cap: usize,
    /// Terminal job records retained for `GET /v1/jobs/{id}` before the
    /// oldest are evicted.
    pub retain_cap: usize,
    /// Workers that never pick up `low`-priority jobs (starvation
    /// guard). Clamped to `workers - 1` so at least one worker serves
    /// every band.
    pub reserved_workers: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            workers: 4,
            per_tenant_cap: 64,
            retain_cap: 1024,
            reserved_workers: 1,
        }
    }
}

/// Why a submit was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant is at its non-terminal job cap (or an armed
    /// `sched.queue.spurious_full` fault fired).
    QueueFull { tenant: String, cap: usize },
    /// The scheduler is draining; no new work is accepted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { tenant, cap } => {
                write!(f, "tenant {tenant:?} queue is full (cap {cap})")
            }
            SubmitError::Closed => write!(f, "scheduler is shutting down"),
        }
    }
}

/// Receipt for an accepted job.
#[derive(Debug, Clone, Copy)]
pub struct Submission {
    pub job_id: u64,
    /// True when this submit joined an existing queued/running group
    /// instead of scheduling a fresh execution.
    pub coalesced: bool,
}

/// Outcome of a cancel request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was cancelled (it was queued or running).
    Cancelled,
    /// The job had already reached the given terminal state.
    AlreadyTerminal(JobState),
    /// No such job for this tenant.
    NotFound,
}

/// A point-in-time view of one job.
#[derive(Debug, Clone)]
pub struct JobSnapshot<R> {
    pub id: u64,
    pub tenant: String,
    pub state: JobState,
    pub priority: Priority,
    pub coalesced: bool,
    /// Last progress string the executor reported ("" once terminal).
    pub progress: String,
    /// Shared result, present once `state == Done`.
    pub result: Option<Arc<R>>,
    /// Failure/cancellation detail, present for `Failed`/`Cancelled`.
    pub error: Option<String>,
}

/// Counter snapshot for `/metrics`.
#[derive(Debug, Clone, Default)]
pub struct SchedStats {
    /// Distinct executions (groups) waiting for a worker.
    pub queued_groups: u64,
    /// Job records in `Queued` (members of queued groups).
    pub queued_jobs: u64,
    /// Job records in `Running`.
    pub running_jobs: u64,
    /// Submits that joined an existing group.
    pub coalesce_hits: u64,
    /// Submits rejected at the per-tenant cap.
    pub rejected_full: u64,
    pub enqueued_total: u64,
    /// queued → running transitions.
    pub started_total: u64,
    /// running → done transitions.
    pub done_total: u64,
    /// running → failed transitions (executor panicked).
    pub failed_total: u64,
    /// queued → cancelled transitions.
    pub cancelled_queued_total: u64,
    /// running → cancelled transitions.
    pub cancelled_running_total: u64,
    /// Non-terminal jobs per tenant, sorted by tenant name.
    pub per_tenant: Vec<(String, u64)>,
}

/// Handed to the executor for one job group.
pub struct JobCtx {
    token: CancelToken,
    progress: Arc<dyn Fn(String) + Send + Sync>,
}

impl JobCtx {
    /// The group's cancellation token. Wire it into the job's `Budget`
    /// so cancelling the last member stops the solve cooperatively.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Report a progress string, visible in job status responses.
    pub fn progress(&self, msg: impl Into<String>) {
        (self.progress)(msg.into())
    }

    /// A cloneable handle to the progress sink, for executors that
    /// report from `'static` callbacks (e.g. a solver progress hook)
    /// where borrowing the `JobCtx` is impossible.
    pub fn progress_reporter(&self) -> Arc<dyn Fn(String) + Send + Sync> {
        Arc::clone(&self.progress)
    }
}

struct Group<P> {
    /// Taken by the worker when execution starts.
    payload: Option<P>,
    token: CancelToken,
    /// Live (non-cancelled) member job ids.
    members: Vec<u64>,
    key: Option<u64>,
    running: bool,
    /// Last progress string the executor reported.
    progress: String,
}

struct JobRec<R> {
    tenant: String,
    state: JobState,
    priority: Priority,
    group: u64,
    coalesced: bool,
    result: Option<Arc<R>>,
    error: Option<String>,
    /// Submit order, for stable `list` output.
    seq: u64,
}

struct State<P, R> {
    next_id: u64,
    next_group: u64,
    seq: u64,
    jobs: HashMap<u64, JobRec<R>>,
    groups: HashMap<u64, Group<P>>,
    /// Group ids per priority band. May contain ids whose group was
    /// already removed (all members cancelled while queued); workers
    /// skip those lazily.
    queues: [VecDeque<u64>; 3],
    /// Coalesce key → live (queued or running) group.
    by_key: HashMap<u64, u64>,
    /// Non-terminal job count per tenant.
    tenants: HashMap<String, u64>,
    /// Terminal job ids in completion order, for retention eviction.
    done_order: VecDeque<u64>,
    closed: bool,
    stats: StatsInner,
}

#[derive(Default)]
struct StatsInner {
    queued_groups: u64,
    queued_jobs: u64,
    running_jobs: u64,
    coalesce_hits: u64,
    rejected_full: u64,
    enqueued_total: u64,
    started_total: u64,
    done_total: u64,
    failed_total: u64,
    cancelled_queued_total: u64,
    cancelled_running_total: u64,
}

struct Inner<P, R> {
    config: SchedConfig,
    state: Mutex<State<P, R>>,
    /// Wakes workers: queue became non-empty, or the scheduler closed.
    work_cv: Condvar,
    /// Broadcast on every terminal transition, for [`Scheduler::wait`].
    done_cv: Condvar,
}

type Exec<P, R> = Arc<dyn Fn(&P, &JobCtx) -> R + Send + Sync>;

/// The scheduler. Dropping it closes the queue, finishes queued work,
/// and joins the worker threads.
pub struct Scheduler<P, R> {
    inner: Arc<Inner<P, R>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl<P: Send + 'static, R: Send + Sync + 'static> Scheduler<P, R> {
    /// Start the worker pool. `exec` runs each job group's payload and
    /// produces the shared result; panics inside it mark the group's
    /// members `Failed` without killing the worker.
    pub fn new<F>(mut config: SchedConfig, exec: F) -> Self
    where
        F: Fn(&P, &JobCtx) -> R + Send + Sync + 'static,
    {
        config.workers = config.workers.max(1);
        config.per_tenant_cap = config.per_tenant_cap.max(1);
        config.retain_cap = config.retain_cap.max(1);
        // At least one worker must serve every band.
        config.reserved_workers = config.reserved_workers.min(config.workers - 1);
        let inner = Arc::new(Inner {
            config: config.clone(),
            state: Mutex::new(State {
                next_id: 1,
                next_group: 1,
                seq: 0,
                jobs: HashMap::new(),
                groups: HashMap::new(),
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                by_key: HashMap::new(),
                tenants: HashMap::new(),
                done_order: VecDeque::new(),
                closed: false,
                stats: StatsInner::default(),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let exec: Exec<P, R> = Arc::new(exec);
        let workers = (0..config.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let exec = Arc::clone(&exec);
                let reserved = i < config.reserved_workers;
                std::thread::Builder::new()
                    .name(format!("qrel-sched-{i}"))
                    .spawn(move || worker_loop(inner, exec, reserved))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Enqueue a job. With a coalesce key, an equivalent queued/running
    /// group absorbs the submit (one execution, shared result).
    pub fn submit(
        &self,
        tenant: &str,
        priority: Priority,
        key: Option<u64>,
        payload: P,
    ) -> Result<Submission, SubmitError> {
        let mut st = self.lock();
        if st.closed {
            return Err(SubmitError::Closed);
        }
        let cap = self.inner.config.per_tenant_cap as u64;
        let spurious =
            qrel_faults::armed() && qrel_faults::hit(points::SCHED_QUEUE_SPURIOUS_FULL).is_some();
        if spurious || st.tenants.get(tenant).copied().unwrap_or(0) >= cap {
            st.stats.rejected_full += 1;
            return Err(SubmitError::QueueFull {
                tenant: tenant.to_string(),
                cap: cap as usize,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        st.seq += 1;
        let seq = st.seq;

        // Coalesce onto a live group when the key matches.
        let coalesced_group = key.and_then(|k| st.by_key.get(&k).copied());
        let (group, coalesced) = match coalesced_group {
            Some(g) => {
                st.stats.coalesce_hits += 1;
                (g, true)
            }
            None => {
                let g = st.next_group;
                st.next_group += 1;
                st.groups.insert(
                    g,
                    Group {
                        payload: Some(payload),
                        token: CancelToken::new(),
                        members: Vec::new(),
                        key,
                        running: false,
                        progress: String::new(),
                    },
                );
                if let Some(k) = key {
                    st.by_key.insert(k, g);
                }
                st.queues[priority.band()].push_back(g);
                st.stats.queued_groups += 1;
                (g, false)
            }
        };
        let grp = st.groups.get_mut(&group).expect("group just resolved");
        grp.members.push(id);
        let state = if grp.running {
            JobState::Running
        } else {
            JobState::Queued
        };
        st.jobs.insert(
            id,
            JobRec {
                tenant: tenant.to_string(),
                state,
                priority,
                group,
                coalesced,
                result: None,
                error: None,
                seq,
            },
        );
        *st.tenants.entry(tenant.to_string()).or_insert(0) += 1;
        st.stats.enqueued_total += 1;
        match state {
            JobState::Running => st.stats.running_jobs += 1,
            _ => st.stats.queued_jobs += 1,
        }
        drop(st);
        self.inner.work_cv.notify_all();
        Ok(Submission {
            job_id: id,
            coalesced,
        })
    }

    /// Record an already-finished job (e.g. a result-cache hit at
    /// submit time): the record is born terminal, no execution happens.
    pub fn submit_completed(
        &self,
        tenant: &str,
        priority: Priority,
        result: Arc<R>,
    ) -> Result<Submission, SubmitError> {
        let mut st = self.lock();
        if st.closed {
            return Err(SubmitError::Closed);
        }
        let id = st.next_id;
        st.next_id += 1;
        st.seq += 1;
        let seq = st.seq;
        st.jobs.insert(
            id,
            JobRec {
                tenant: tenant.to_string(),
                state: JobState::Done,
                priority,
                group: 0,
                coalesced: false,
                result: Some(result),
                error: None,
                seq,
            },
        );
        st.stats.enqueued_total += 1;
        st.stats.done_total += 1;
        st.done_order.push_back(id);
        evict_terminal(&mut st, self.inner.config.retain_cap);
        Ok(Submission {
            job_id: id,
            coalesced: false,
        })
    }

    /// Cancel a job owned by `tenant`. Cancelling one member of a
    /// coalesced group leaves the other members (and the execution)
    /// untouched; only the last member's cancellation fires the
    /// group's [`CancelToken`].
    pub fn cancel(&self, tenant: &str, id: u64) -> CancelOutcome {
        let mut st = self.lock();
        let Some(rec) = st.jobs.get(&id) else {
            return CancelOutcome::NotFound;
        };
        if rec.tenant != tenant {
            return CancelOutcome::NotFound;
        }
        if rec.state.is_terminal() {
            return CancelOutcome::AlreadyTerminal(rec.state);
        }
        let was = rec.state;
        let group = rec.group;
        let rec = st.jobs.get_mut(&id).expect("record just observed");
        rec.state = JobState::Cancelled;
        rec.error = Some("cancelled by client".to_string());
        match was {
            JobState::Queued => {
                st.stats.queued_jobs -= 1;
                st.stats.cancelled_queued_total += 1;
            }
            _ => {
                st.stats.running_jobs -= 1;
                st.stats.cancelled_running_total += 1;
            }
        }
        let tenant_key = tenant.to_string();
        decrement_tenant(&mut st, &tenant_key);
        st.done_order.push_back(id);
        if let Some(grp) = st.groups.get_mut(&group) {
            grp.members.retain(|&m| m != id);
            if grp.members.is_empty() {
                if grp.running {
                    // Last member of a running group: stop the solve.
                    grp.token.cancel();
                } else {
                    // Still queued: drop the group now; the stale queue
                    // entry is skipped when a worker reaches it.
                    if let Some(k) = grp.key {
                        st.by_key.remove(&k);
                    }
                    st.groups.remove(&group);
                    st.stats.queued_groups -= 1;
                }
            }
        }
        evict_terminal(&mut st, self.inner.config.retain_cap);
        drop(st);
        self.inner.done_cv.notify_all();
        CancelOutcome::Cancelled
    }

    /// Snapshot one job (tenant-scoped; other tenants' jobs are
    /// invisible, reported as absent).
    pub fn status(&self, tenant: &str, id: u64) -> Option<JobSnapshot<R>> {
        let st = self.lock();
        snapshot(&st, tenant, id)
    }

    /// Snapshot every retained job of `tenant`, in submit order.
    pub fn list(&self, tenant: &str) -> Vec<JobSnapshot<R>> {
        let st = self.lock();
        let mut ids: Vec<(u64, u64)> = st
            .jobs
            .iter()
            .filter(|(_, r)| r.tenant == tenant)
            .map(|(&id, r)| (r.seq, id))
            .collect();
        ids.sort_unstable();
        ids.into_iter()
            .filter_map(|(_, id)| snapshot(&st, tenant, id))
            .collect()
    }

    /// Block until the job reaches a terminal state or the timeout
    /// elapses (`None` waits indefinitely). Returns the latest
    /// snapshot, or `None` for an unknown job.
    pub fn wait(&self, tenant: &str, id: u64, timeout: Option<Duration>) -> Option<JobSnapshot<R>> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut st = self.lock();
        loop {
            let snap = snapshot(&st, tenant, id)?;
            if snap.state.is_terminal() {
                return Some(snap);
            }
            let wait_for = match deadline {
                None => Duration::from_secs(3600),
                Some(d) => match d.checked_duration_since(Instant::now()) {
                    Some(left) => left,
                    None => return Some(snap), // timed out, non-terminal
                },
            };
            let (guard, _timeout) = self
                .inner
                .done_cv
                .wait_timeout(st, wait_for)
                .expect("scheduler state poisoned");
            st = guard;
        }
    }

    /// Jobs that still need work (queued + running) — the scheduler
    /// backlog folded into the dynamic `Retry-After` estimate.
    pub fn backlog(&self) -> u64 {
        let st = self.lock();
        st.stats.queued_jobs + st.stats.running_jobs
    }

    /// Counter snapshot for `/metrics`.
    pub fn stats(&self) -> SchedStats {
        let st = self.lock();
        let mut per_tenant: Vec<(String, u64)> = st
            .tenants
            .iter()
            .filter(|(_, &n)| n > 0)
            .map(|(t, &n)| (t.clone(), n))
            .collect();
        per_tenant.sort();
        SchedStats {
            queued_groups: st.stats.queued_groups,
            queued_jobs: st.stats.queued_jobs,
            running_jobs: st.stats.running_jobs,
            coalesce_hits: st.stats.coalesce_hits,
            rejected_full: st.stats.rejected_full,
            enqueued_total: st.stats.enqueued_total,
            started_total: st.stats.started_total,
            done_total: st.stats.done_total,
            failed_total: st.stats.failed_total,
            cancelled_queued_total: st.stats.cancelled_queued_total,
            cancelled_running_total: st.stats.cancelled_running_total,
            per_tenant,
        }
    }

    /// Stop accepting submits. Workers finish everything already
    /// queued, then exit (graceful drain).
    pub fn close(&self) {
        self.lock().closed = true;
        self.inner.work_cv.notify_all();
        self.inner.done_cv.notify_all();
    }

    /// Forced drain: close, cancel every queued job, and fire the
    /// cancel token of every running group.
    pub fn abort(&self) {
        let mut st = self.lock();
        st.closed = true;
        let queued: Vec<u64> = st
            .jobs
            .iter()
            .filter(|(_, r)| r.state == JobState::Queued)
            .map(|(&id, _)| id)
            .collect();
        for id in queued {
            let rec = st.jobs.get_mut(&id).expect("id from scan");
            rec.state = JobState::Cancelled;
            rec.error = Some("server shutting down".to_string());
            st.stats.queued_jobs -= 1;
            st.stats.cancelled_queued_total += 1;
            let tenant = st.jobs[&id].tenant.clone();
            decrement_tenant(&mut st, &tenant);
            st.done_order.push_back(id);
        }
        for g in st.queues.iter().flatten().copied().collect::<Vec<_>>() {
            if let Some(grp) = st.groups.remove(&g) {
                if let Some(k) = grp.key {
                    st.by_key.remove(&k);
                }
                st.stats.queued_groups -= 1;
            }
        }
        for q in &mut st.queues {
            q.clear();
        }
        for grp in st.groups.values() {
            grp.token.cancel();
        }
        drop(st);
        self.inner.work_cv.notify_all();
        self.inner.done_cv.notify_all();
    }

    /// Join the worker threads (after [`Scheduler::close`]/`abort`).
    pub fn join(&self) {
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker handles poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<P, R>> {
        self.inner.state.lock().expect("scheduler state poisoned")
    }
}

impl<P, R> Drop for Scheduler<P, R> {
    fn drop(&mut self) {
        if let Ok(mut st) = self.inner.state.lock() {
            st.closed = true;
        }
        self.inner.work_cv.notify_all();
        self.inner.done_cv.notify_all();
        if let Ok(mut handles) = self.workers.lock() {
            for h in handles.drain(..) {
                let _ = h.join();
            }
        }
    }
}

fn snapshot<P, R>(st: &State<P, R>, tenant: &str, id: u64) -> Option<JobSnapshot<R>> {
    let rec = st.jobs.get(&id)?;
    if rec.tenant != tenant {
        return None;
    }
    let progress = if rec.state.is_terminal() {
        String::new()
    } else {
        st.groups
            .get(&rec.group)
            .map(|g| g.progress.clone())
            .unwrap_or_default()
    };
    Some(JobSnapshot {
        id,
        tenant: rec.tenant.clone(),
        state: rec.state,
        priority: rec.priority,
        coalesced: rec.coalesced,
        progress,
        result: rec.result.clone(),
        error: rec.error.clone(),
    })
}

fn decrement_tenant<P, R>(st: &mut State<P, R>, tenant: &str) {
    if let Some(n) = st.tenants.get_mut(tenant) {
        *n = n.saturating_sub(1);
        if *n == 0 {
            st.tenants.remove(tenant);
        }
    }
}

/// Drop the oldest terminal records past the retention cap.
fn evict_terminal<P, R>(st: &mut State<P, R>, retain_cap: usize) {
    while st.done_order.len() > retain_cap {
        let Some(old) = st.done_order.pop_front() else {
            break;
        };
        // Only remove if still terminal (it always is: ids are never
        // reused, and only terminal ids enter done_order).
        if st.jobs.get(&old).is_some_and(|r| r.state.is_terminal()) {
            st.jobs.remove(&old);
        }
    }
}

fn worker_loop<P: Send + 'static, R: Send + Sync + 'static>(
    inner: Arc<Inner<P, R>>,
    exec: Exec<P, R>,
    reserved: bool,
) {
    loop {
        let (group_id, payload, token) = {
            let mut st = inner.state.lock().expect("scheduler state poisoned");
            let picked = loop {
                match pick_group(&mut st, reserved) {
                    Some(g) => break Some(g),
                    None if st.closed => break None,
                    None => st = inner.work_cv.wait(st).expect("scheduler state poisoned"),
                }
            };
            let Some(g) = picked else {
                return;
            };
            let grp = st.groups.get_mut(&g).expect("picked group exists");
            grp.running = true;
            let payload = grp.payload.take().expect("group not yet started");
            let token = grp.token.clone();
            let members = grp.members.clone();
            st.stats.queued_groups -= 1;
            for m in members {
                let rec = st.jobs.get_mut(&m).expect("member record exists");
                rec.state = JobState::Running;
                st.stats.queued_jobs -= 1;
                st.stats.running_jobs += 1;
                st.stats.started_total += 1;
            }
            (g, payload, token)
        };

        // Chaos hook: stall this worker before it executes the job.
        if qrel_faults::armed() {
            qrel_faults::maybe_stall(points::SCHED_WORKER_STALL);
        }

        let progress_inner = Arc::clone(&inner);
        let ctx = JobCtx {
            token,
            progress: Arc::new(move |msg: String| {
                let mut st = progress_inner
                    .state
                    .lock()
                    .expect("scheduler state poisoned");
                if let Some(grp) = st.groups.get_mut(&group_id) {
                    grp.progress = msg;
                }
                drop(st);
                progress_inner.done_cv.notify_all();
            }),
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| exec(&payload, &ctx)));

        let mut st = inner.state.lock().expect("scheduler state poisoned");
        let grp = st.groups.remove(&group_id).expect("running group exists");
        if let Some(k) = grp.key {
            st.by_key.remove(&k);
        }
        let (result, error) = match outcome {
            Ok(r) => (Some(Arc::new(r)), None),
            Err(panic) => {
                let msg = if let Some(s) = panic.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = panic.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                (None, Some(format!("job executor panicked: {msg}")))
            }
        };
        for m in grp.members {
            let Some(rec) = st.jobs.get_mut(&m) else {
                continue;
            };
            if rec.state != JobState::Running {
                continue; // member cancelled mid-solve
            }
            match (&result, &error) {
                (Some(r), _) => {
                    rec.state = JobState::Done;
                    rec.result = Some(Arc::clone(r));
                    st.stats.done_total += 1;
                }
                (None, err) => {
                    rec.state = JobState::Failed;
                    rec.error = err.clone();
                    st.stats.failed_total += 1;
                }
            }
            st.stats.running_jobs -= 1;
            let tenant = st.jobs[&m].tenant.clone();
            decrement_tenant(&mut st, &tenant);
            st.done_order.push_back(m);
        }
        evict_terminal(&mut st, inner.config.retain_cap);
        drop(st);
        inner.done_cv.notify_all();
    }
}

/// Pop the next runnable group id, skipping stale entries whose group
/// was removed (all members cancelled while queued). Reserved workers
/// skip the `low` band until the scheduler is draining.
fn pick_group<P, R>(st: &mut State<P, R>, reserved: bool) -> Option<u64> {
    let bands = if reserved && !st.closed { 2 } else { 3 };
    for band in 0..bands {
        while let Some(g) = st.queues[band].pop_front() {
            if st.groups.contains_key(&g) {
                return Some(g);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc;

    /// A scheduler whose executor sleeps for the payload's millis and
    /// returns the payload; cancellation short-circuits the sleep.
    fn sleepy(config: SchedConfig) -> Scheduler<u64, u64> {
        Scheduler::new(config, |&ms: &u64, ctx: &JobCtx| {
            let step = Duration::from_millis(5);
            let deadline = Instant::now() + Duration::from_millis(ms);
            while Instant::now() < deadline && !ctx.token().is_cancelled() {
                std::thread::sleep(step);
            }
            ms
        })
    }

    fn one_worker() -> SchedConfig {
        SchedConfig {
            workers: 1,
            reserved_workers: 0,
            ..SchedConfig::default()
        }
    }

    #[test]
    fn submit_execute_and_wait_round_trip() {
        let _quiet = qrel_faults::quiesce();
        let sched = sleepy(one_worker());
        let sub = sched.submit("t", Priority::Normal, None, 0).unwrap();
        assert!(!sub.coalesced);
        let snap = sched
            .wait("t", sub.job_id, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert_eq!(*snap.result.unwrap(), 0);
        let stats = sched.stats();
        assert_eq!(stats.enqueued_total, 1);
        assert_eq!(stats.done_total, 1);
        assert_eq!(stats.queued_jobs + stats.running_jobs, 0);
    }

    #[test]
    fn coalesced_submits_share_one_execution() {
        let _quiet = qrel_faults::quiesce();
        let executions = Arc::new(AtomicU64::new(0));
        let execs = Arc::clone(&executions);
        let sched: Scheduler<u64, u64> = Scheduler::new(one_worker(), move |&p, _ctx| {
            execs.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(30));
            p
        });
        // A long head-of-line job keeps the key-7 group queued long
        // enough for the duplicates to coalesce deterministically.
        let head = sched.submit("t", Priority::Normal, None, 1).unwrap();
        let a = sched.submit("t", Priority::Normal, Some(7), 42).unwrap();
        let b = sched.submit("t", Priority::Normal, Some(7), 42).unwrap();
        let c = sched.submit("t", Priority::Normal, Some(7), 42).unwrap();
        assert!(!a.coalesced && b.coalesced && c.coalesced);
        for id in [head.job_id, a.job_id, b.job_id, c.job_id] {
            let snap = sched.wait("t", id, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(snap.state, JobState::Done);
        }
        // 2 executions: the head job and ONE solve for the three
        // coalesced submits.
        assert_eq!(executions.load(Ordering::SeqCst), 2);
        assert_eq!(sched.stats().coalesce_hits, 2);
    }

    #[test]
    fn cancel_before_start_skips_execution() {
        let _quiet = qrel_faults::quiesce();
        let executions = Arc::new(AtomicU64::new(0));
        let execs = Arc::clone(&executions);
        let sched: Scheduler<u64, u64> = Scheduler::new(one_worker(), move |&p, _ctx| {
            execs.fetch_add(1, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(20));
            p
        });
        let head = sched.submit("t", Priority::Normal, None, 1).unwrap();
        let doomed = sched.submit("t", Priority::Normal, None, 2).unwrap();
        assert_eq!(sched.cancel("t", doomed.job_id), CancelOutcome::Cancelled);
        let snap = sched.status("t", doomed.job_id).unwrap();
        assert_eq!(snap.state, JobState::Cancelled);
        sched.wait("t", head.job_id, Some(Duration::from_secs(5)));
        sched.close();
        sched.join();
        // Only the head job ever ran.
        assert_eq!(executions.load(Ordering::SeqCst), 1);
        assert_eq!(sched.stats().cancelled_queued_total, 1);
    }

    #[test]
    fn cancel_mid_solve_fires_the_group_token() {
        let _quiet = qrel_faults::quiesce();
        let sched = sleepy(one_worker());
        // Long enough that the test would time out if cancel didn't
        // interrupt the sleep loop.
        let sub = sched.submit("t", Priority::Normal, None, 30_000).unwrap();
        // Wait until it is actually running.
        let started = Instant::now();
        while sched.status("t", sub.job_id).unwrap().state == JobState::Queued {
            assert!(started.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(sched.cancel("t", sub.job_id), CancelOutcome::Cancelled);
        let snap = sched.status("t", sub.job_id).unwrap();
        assert_eq!(snap.state, JobState::Cancelled);
        // The worker must come free promptly (the token interrupted the
        // sleep): a follow-up job completes fast.
        let next = sched.submit("t", Priority::Normal, None, 0).unwrap();
        let snap = sched
            .wait("t", next.job_id, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert_eq!(sched.stats().cancelled_running_total, 1);
    }

    #[test]
    fn cancelling_one_coalesced_member_leaves_the_other_intact() {
        let _quiet = qrel_faults::quiesce();
        let sched = sleepy(one_worker());
        let head = sched.submit("t", Priority::Normal, None, 30).unwrap();
        let a = sched.submit("t", Priority::Normal, Some(9), 10).unwrap();
        let b = sched.submit("t", Priority::Normal, Some(9), 10).unwrap();
        assert!(b.coalesced);
        assert_eq!(sched.cancel("t", a.job_id), CancelOutcome::Cancelled);
        // b still completes with the shared result.
        let snap = sched
            .wait("t", b.job_id, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert_eq!(*snap.result.unwrap(), 10);
        // a stays cancelled even though the execution went on.
        assert_eq!(
            sched.status("t", a.job_id).unwrap().state,
            JobState::Cancelled
        );
        let _ = head;
    }

    #[test]
    fn per_tenant_cap_rejects_and_other_tenants_are_unaffected() {
        let _quiet = qrel_faults::quiesce();
        let config = SchedConfig {
            workers: 1,
            per_tenant_cap: 2,
            reserved_workers: 0,
            ..SchedConfig::default()
        };
        let sched = sleepy(config);
        let _a = sched.submit("t", Priority::Normal, None, 200).unwrap();
        let _b = sched.submit("t", Priority::Normal, None, 200).unwrap();
        let err = sched.submit("t", Priority::Normal, None, 0).unwrap_err();
        assert!(matches!(err, SubmitError::QueueFull { cap: 2, .. }));
        // A different tenant still gets in.
        assert!(sched.submit("u", Priority::Normal, None, 0).is_ok());
        assert_eq!(sched.stats().rejected_full, 1);
        sched.abort();
    }

    #[test]
    fn priorities_drain_high_before_low() {
        let _quiet = qrel_faults::quiesce();
        let (tx, rx) = mpsc::channel::<u64>();
        let tx = Mutex::new(tx);
        let sched: Scheduler<u64, u64> = Scheduler::new(one_worker(), move |&p, _ctx| {
            std::thread::sleep(Duration::from_millis(10));
            tx.lock().unwrap().send(p).unwrap();
            p
        });
        // Head job occupies the worker while we stack the bands.
        let head = sched.submit("t", Priority::Normal, None, 0).unwrap();
        let started = Instant::now();
        while sched.status("t", head.job_id).unwrap().state == JobState::Queued {
            assert!(started.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_millis(1));
        }
        let lo = sched.submit("t", Priority::Low, None, 1).unwrap();
        let hi = sched.submit("t", Priority::High, None, 2).unwrap();
        let mid = sched.submit("t", Priority::Normal, None, 3).unwrap();
        for id in [head.job_id, lo.job_id, hi.job_id, mid.job_id] {
            sched.wait("t", id, Some(Duration::from_secs(5)));
        }
        let order: Vec<u64> = rx.try_iter().collect();
        assert_eq!(order, vec![0, 2, 3, 1], "high drains first, low last");
    }

    #[test]
    fn tenant_scoping_hides_foreign_jobs() {
        let _quiet = qrel_faults::quiesce();
        let sched = sleepy(one_worker());
        let sub = sched.submit("alice", Priority::Normal, None, 0).unwrap();
        sched.wait("alice", sub.job_id, Some(Duration::from_secs(5)));
        assert!(sched.status("bob", sub.job_id).is_none());
        assert_eq!(sched.cancel("bob", sub.job_id), CancelOutcome::NotFound);
        assert_eq!(sched.list("bob").len(), 0);
        assert_eq!(sched.list("alice").len(), 1);
    }

    #[test]
    fn executor_panic_marks_the_job_failed_and_worker_survives() {
        let _quiet = qrel_faults::quiesce();
        let sched: Scheduler<u64, u64> = Scheduler::new(one_worker(), |&p, _ctx| {
            if p == 13 {
                panic!("boom");
            }
            p
        });
        let bad = sched.submit("t", Priority::Normal, None, 13).unwrap();
        let snap = sched
            .wait("t", bad.job_id, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(snap.state, JobState::Failed);
        assert!(snap.error.unwrap().contains("boom"));
        // The worker lives on.
        let ok = sched.submit("t", Priority::Normal, None, 1).unwrap();
        let snap = sched
            .wait("t", ok.job_id, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert_eq!(sched.stats().failed_total, 1);
    }

    #[test]
    fn submit_completed_is_born_terminal() {
        let _quiet = qrel_faults::quiesce();
        let sched = sleepy(one_worker());
        let sub = sched
            .submit_completed("t", Priority::Normal, Arc::new(99))
            .unwrap();
        let snap = sched.status("t", sub.job_id).unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert_eq!(*snap.result.unwrap(), 99);
    }

    #[test]
    fn retention_evicts_oldest_terminal_records() {
        let _quiet = qrel_faults::quiesce();
        let config = SchedConfig {
            workers: 1,
            retain_cap: 3,
            reserved_workers: 0,
            ..SchedConfig::default()
        };
        let sched = sleepy(config);
        let ids: Vec<u64> = (0..6)
            .map(|_| {
                let sub = sched.submit("t", Priority::Normal, None, 0).unwrap();
                sched.wait("t", sub.job_id, Some(Duration::from_secs(5)));
                sub.job_id
            })
            .collect();
        assert!(sched.status("t", ids[0]).is_none(), "oldest evicted");
        assert!(sched.status("t", ids[5]).is_some(), "newest retained");
        assert!(sched.list("t").len() <= 3);
    }

    #[test]
    fn close_finishes_queued_work_and_abort_cancels_it() {
        let _quiet = qrel_faults::quiesce();
        // Graceful close: queued jobs still complete.
        let sched = sleepy(one_worker());
        let a = sched.submit("t", Priority::Normal, None, 20).unwrap();
        let b = sched.submit("t", Priority::Normal, None, 0).unwrap();
        sched.close();
        assert_eq!(
            sched.submit("t", Priority::Normal, None, 0).unwrap_err(),
            SubmitError::Closed
        );
        sched.join();
        assert_eq!(sched.status("t", a.job_id).unwrap().state, JobState::Done);
        assert_eq!(sched.status("t", b.job_id).unwrap().state, JobState::Done);

        // Forced abort: queued jobs are cancelled, running ones
        // interrupted via their tokens.
        let sched = sleepy(one_worker());
        let long = sched.submit("t", Priority::Normal, None, 30_000).unwrap();
        let queued = sched.submit("t", Priority::Normal, None, 0).unwrap();
        let started = Instant::now();
        while sched.status("t", long.job_id).unwrap().state == JobState::Queued {
            assert!(started.elapsed() < Duration::from_secs(5));
            std::thread::sleep(Duration::from_millis(2));
        }
        sched.abort();
        sched.join();
        assert_eq!(
            sched.status("t", queued.job_id).unwrap().state,
            JobState::Cancelled
        );
        // The running job completed (token interrupted the sleep loop;
        // the executor returned normally, so the record is Done).
        assert!(sched.status("t", long.job_id).unwrap().state.is_terminal());
    }

    #[test]
    fn spurious_full_fault_rejects_submit() {
        let plan = qrel_faults::FaultPlan::new(11).with_rule(
            points::SCHED_QUEUE_SPURIOUS_FULL,
            1.0,
            0,
            1, // one spurious rejection, then heal
        );
        let sched = sleepy(one_worker());
        {
            let _guard = plan.arm();
            let err = sched.submit("t", Priority::Normal, None, 0).unwrap_err();
            assert!(matches!(err, SubmitError::QueueFull { .. }));
            // The single fire is spent; the next submit goes through.
            let ok = sched.submit("t", Priority::Normal, None, 0).unwrap();
            let snap = sched
                .wait("t", ok.job_id, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(snap.state, JobState::Done);
        }
        assert_eq!(sched.stats().rejected_full, 1);
    }

    #[test]
    fn reserved_workers_keep_serving_high_under_low_flood() {
        let _quiet = qrel_faults::quiesce();
        let config = SchedConfig {
            workers: 2,
            reserved_workers: 1,
            per_tenant_cap: 64,
            ..SchedConfig::default()
        };
        let sched = sleepy(config);
        // Flood the low band with long jobs; only the non-reserved
        // worker may pick them up.
        for _ in 0..4 {
            sched.submit("t", Priority::Low, None, 300).unwrap();
        }
        std::thread::sleep(Duration::from_millis(20));
        // A high-priority job lands while the flood is in progress; the
        // reserved worker must take it immediately.
        let started = Instant::now();
        let hi = sched.submit("t", Priority::High, None, 0).unwrap();
        let snap = sched
            .wait("t", hi.job_id, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(snap.state, JobState::Done);
        assert!(
            started.elapsed() < Duration::from_millis(250),
            "high-priority job starved for {:?}",
            started.elapsed()
        );
        sched.abort();
    }
}
