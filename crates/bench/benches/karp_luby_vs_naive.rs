//! Criterion bench for E4/E10: Karp–Luby vs naive Monte-Carlo vs exact
//! on the same DNF instance — per-sample cost comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use qrel_arith::BigRational;
use qrel_bench::random_kdnf;
use qrel_count::naive_mc::naive_mc_probability_with_samples;
use qrel_count::{dnf_probability_bdd, dnf_probability_shannon, KarpLuby};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_estimators(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(44);
    let vars = 24usize;
    let d = random_kdnf(vars, 16, 3, &mut rng);
    let probs = vec![BigRational::from_ratio(1, 3); vars];
    let samples = 10_000u64;

    let mut group = c.benchmark_group("dnf_probability");
    group.sample_size(10);
    group.bench_function("karp_luby_10k_samples", |b| {
        let kl = KarpLuby::new(&d, &probs);
        let mut r = StdRng::seed_from_u64(1);
        b.iter(|| kl.run_with_samples(samples, &mut r));
    });
    group.bench_function("naive_mc_10k_samples", |b| {
        let mut r = StdRng::seed_from_u64(2);
        b.iter(|| naive_mc_probability_with_samples(&d, &probs, samples, &mut r));
    });
    group.bench_function("exact_shannon", |b| {
        b.iter(|| dnf_probability_shannon(&d, &probs));
    });
    group.bench_function("exact_bdd", |b| {
        b.iter(|| dnf_probability_bdd(&d, &probs));
    });
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
