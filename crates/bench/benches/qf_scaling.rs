//! Criterion bench for E1: quantifier-free reliability (Prop 3.1) as a
//! function of database size — the timing-shaped claim "polynomial".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrel_bench::{random_graph_db, with_uniform_error};
use qrel_core::quantifier_free::qf_reliability;
use qrel_logic::parser::parse_formula;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_qf(c: &mut Criterion) {
    let f = parse_formula("E(x,y) & S(x) & !S(y)").unwrap();
    let free = vec!["x".to_string(), "y".to_string()];
    let mut group = c.benchmark_group("qf_reliability");
    group.sample_size(10);
    for n in [8usize, 16, 32, 64] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let db = random_graph_db(n, 0.2, 0.5, &mut rng);
        let ud = with_uniform_error(db, 1, 10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| qf_reliability(&ud, &f, &free).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qf);
criterion_main!(benches);
