//! Criterion bench for E6: grounding an existential query (Thm 5.4) —
//! the claim "polynomial in n, width independent of n".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrel_bench::random_graph_db;
use qrel_eval::ground_existential;
use qrel_logic::parser::parse_formula;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn bench_grounding(c: &mut Criterion) {
    let f = parse_formula("exists x y. E(x,y) & S(x) & S(y)").unwrap();
    let mut group = c.benchmark_group("ground_existential");
    group.sample_size(10);
    for n in [8usize, 16, 32, 64] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let db = random_graph_db(n, 0.3, 0.5, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| ground_existential(&db, &f, &HashMap::new(), 10_000_000).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grounding);
criterion_main!(benches);
