//! Criterion bench for the #SAT oracle (E2's independent counter):
//! DPLL model counting on monotone 2-CNF — exponential but with a much
//! better base than brute force.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrel_count::count_mon2sat;
use qrel_logic::mon2sat::Monotone2Sat;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_sharp_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharp_sat_mon2sat");
    group.sample_size(10);
    for m in [12u32, 16, 20] {
        let mut rng = StdRng::seed_from_u64(m as u64);
        let f = Monotone2Sat::random(m, m as usize + m as usize / 2, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| count_mon2sat(&f));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharp_sat);
criterion_main!(benches);
