//! Criterion bench for E3: exact reliability by world enumeration
//! (Thm 4.2) — the timing-shaped claim "exponential in uncertain facts".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrel_bench::{random_graph_db, with_random_errors};
use qrel_core::exact::exact_probability;
use qrel_eval::FoQuery;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_exact(c: &mut Criterion) {
    let q = FoQuery::parse("exists x y. E(x,y) & S(y)").unwrap();
    let mut group = c.benchmark_group("exact_probability_by_worlds");
    group.sample_size(10);
    for u in [4usize, 8, 12] {
        let mut rng = StdRng::seed_from_u64(u as u64);
        let db = random_graph_db(4, 0.4, 0.5, &mut rng);
        let ud = with_random_errors(db, u, &[2, 3, 4], &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(u), &u, |b, _| {
            b.iter(|| exact_probability(&ud, &q).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact);
criterion_main!(benches);
