//! Criterion bench: the conjunctive-query planner (σ/π/⋈ with greedy join
//! ordering) vs the naive nested-quantifier FO evaluator on the same
//! query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrel_bench::random_graph_db;
use qrel_eval::{CqQuery, FoQuery, Query};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_cq(c: &mut Criterion) {
    let src = "exists z. E(x,z) & E(z,y) & S(z)";
    let free = ["x", "y"];
    let mut group = c.benchmark_group("conjunctive_query");
    group.sample_size(10);
    for n in [10usize, 20, 40] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let db = random_graph_db(n, 0.15, 0.3, &mut rng);
        let planned = CqQuery::parse(src, &free).unwrap();
        let naive = FoQuery::with_free_order(
            qrel_logic::parser::parse_formula(src).unwrap(),
            free.iter().map(|s| s.to_string()).collect(),
        );
        group.bench_with_input(BenchmarkId::new("planner", n), &n, |b, _| {
            b.iter(|| planned.answers(&db).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("naive_fo", n), &n, |b, _| {
            b.iter(|| naive.answers(&db).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cq);
criterion_main!(benches);
