//! Criterion bench for the arithmetic substrate: the exact-rational
//! workload that dominates the exact engines (world-probability products,
//! gcd normalization, division).

use criterion::{criterion_group, criterion_main, Criterion};
use qrel_arith::{BigRational, BigUint};

fn bench_arith(c: &mut Criterion) {
    let mut group = c.benchmark_group("arith");

    group.bench_function("world_probability_product_200", |b| {
        // Product of 200 distinct rationals — one exact world probability.
        b.iter(|| {
            let mut acc = BigRational::one();
            for i in 0..200u64 {
                acc = acc.mul_ref(&BigRational::from_ratio((i % 7 + 1) as i64, i % 11 + 2));
            }
            acc
        });
    });

    group.bench_function("biguint_mul_64_limbs", |b| {
        let x = BigUint::from_u64(0xdead_beef_cafe_babe).pow(32);
        let y = BigUint::from_u64(0x1234_5678_9abc_def0).pow(32);
        b.iter(|| x.mul_ref(&y));
    });

    group.bench_function("biguint_div_rem_large", |b| {
        let x = BigUint::from_u64(u64::MAX).pow(40);
        let y = BigUint::from_u64(0xffff_fffb).pow(13);
        b.iter(|| x.div_rem(&y));
    });

    group.bench_function("biguint_gcd_large", |b| {
        let x = BigUint::from_u64(2)
            .pow(607)
            .checked_sub(&BigUint::one())
            .unwrap();
        let y = BigUint::from_u64(2)
            .pow(521)
            .checked_sub(&BigUint::one())
            .unwrap();
        b.iter(|| x.gcd(&y));
    });

    group.bench_function("rational_normalize_add", |b| {
        let x = BigRational::from_ratio(123_456_789, 987_654_321);
        let y = BigRational::from_ratio(555_555_555, 777_777_777);
        b.iter(|| x.add_ref(&y));
    });

    group.finish();
}

criterion_group!(benches, bench_arith);
criterion_main!(benches);
