//! Criterion bench for the Datalog substrate (E8's query engine):
//! semi-naive transitive closure over growing graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrel_bench::random_graph_db;
use qrel_db::datalog::DatalogProgram;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_datalog(c: &mut Criterion) {
    let prog = DatalogProgram::parse("T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).").unwrap();
    let mut group = c.benchmark_group("datalog_transitive_closure");
    group.sample_size(10);
    for n in [10usize, 20, 40] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let db = random_graph_db(n, 0.1, 0.0, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| prog.evaluate(&db).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_datalog);
criterion_main!(benches);
