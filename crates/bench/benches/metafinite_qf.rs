//! Criterion bench for E9: metafinite quantifier-free reliability
//! (Thm 6.2(i)) — the claim "polynomial time".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qrel_arith::BigRational;
use qrel_metafinite::reliability::qf_reliability;
use qrel_metafinite::{
    EntryDistribution, FunctionalDatabase, MTerm, ROp, UnreliableFunctionalDatabase,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

fn census(n: usize, rng: &mut StdRng) -> UnreliableFunctionalDatabase {
    let mut db = FunctionalDatabase::new(n);
    let salaries: Vec<BigRational> = (0..n)
        .map(|_| r(rng.gen_range(30i64..120) * 1000, 1))
        .collect();
    db.add_function_values("salary", 1, salaries.clone());
    let mut ud = UnreliableFunctionalDatabase::reliable(db);
    for (i, s) in salaries.iter().enumerate().take(n / 2) {
        ud.set_distribution(
            "salary",
            &[i as u32],
            EntryDistribution::new(vec![
                (s.clone(), r(9, 10)),
                (s.div_ref(&r(10, 1)), r(1, 10)),
            ])
            .unwrap(),
        );
    }
    ud
}

fn bench_meta_qf(c: &mut Criterion) {
    let flag = MTerm::apply(
        ROp::CharLe,
        [MTerm::constant(50_000, 1), MTerm::func("salary", ["x"])],
    );
    let mut group = c.benchmark_group("metafinite_qf_reliability");
    group.sample_size(10);
    for n in [25usize, 50, 100] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let ud = census(n, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| qf_reliability(&ud, &flag, &["x".to_string()]).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_meta_qf);
criterion_main!(benches);
