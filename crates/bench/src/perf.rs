//! The benchmark-gated perf harness: `BENCH_<exp>.json` emission and
//! baseline comparison.
//!
//! Every E-series bin that participates in the perf trajectory builds a
//! [`BenchReport`], records metrics, and calls
//! [`BenchReport::write_if_requested`] — which writes
//! `$QREL_BENCH_DIR/BENCH_<exp>.json` when that environment variable is
//! set and does nothing otherwise (so plain experiment runs are
//! unaffected).
//!
//! Two metric kinds exist and regress in opposite directions:
//!
//! * **score** — a host-normalized time: the min-of-k wall time of the
//!   measured section divided by the wall time of a fixed
//!   [`calibration_loop`] run on the same host moments earlier.
//!   Dividing out the calibration time makes scores comparable across
//!   machines of different speeds (a score of 2.0 means "twice the
//!   calibration loop", wherever it runs), and taking the minimum — not
//!   the median — makes both numbers robust to scheduler noise: the
//!   workloads are deterministic, so the fastest observation is the one
//!   closest to the true cost. *Bigger is worse.*
//! * **value** — a dimensionless quality number (a speedup ratio, a
//!   throughput). *Smaller is worse.*
//!
//! [`compare`] applies the gate: a score metric regresses when
//! `current > baseline × (1 + threshold)`, a value metric when
//! `current < baseline × (1 − threshold)`, and a metric missing from the
//! current report always regresses (silent metric loss must not pass).
//!
//! The JSON is hand-rolled in a fixed line-oriented shape (one metric
//! per line) so the comparator — and a human reading a diff of two
//! committed baselines — can parse it without a serde dependency.

use std::hint::black_box;
use std::time::Instant;

/// Iterations of the calibration kernel. Chosen so one pass takes a few
/// tens of milliseconds on 2020s-era hardware: long enough to be stable
/// against timer noise, short enough to rerun five times per bin.
const CALIB_ITERS: u64 = 30_000_000;

/// A fixed, deterministic, allocation-free CPU workload (SplitMix64
/// scrambling). Its wall time is the unit every score is expressed in.
pub fn calibration_kernel() -> u64 {
    let mut z = 0x9E37_79B9_7F4A_7C15u64;
    let mut acc = 0u64;
    for _ in 0..CALIB_ITERS {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        acc ^= x ^ (x >> 31);
    }
    acc
}

/// Minimum wall time over seven calibration passes.
pub fn calibration_loop() -> f64 {
    (0..7)
        .map(|_| {
            let start = Instant::now();
            black_box(calibration_kernel());
            start.elapsed().as_secs_f64()
        })
        .min_by(f64::total_cmp)
        .unwrap()
}

/// Metric kind — determines the regression direction in [`compare`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Host-normalized time; regresses upward.
    Score,
    /// Quality number (speedup, throughput); regresses downward.
    Value,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Score => "score",
            MetricKind::Value => "value",
        }
    }

    fn parse(s: &str) -> Option<MetricKind> {
        match s {
            "score" => Some(MetricKind::Score),
            "value" => Some(MetricKind::Value),
            _ => None,
        }
    }
}

/// One recorded metric.
#[derive(Debug, Clone)]
pub struct Metric {
    pub name: String,
    pub kind: MetricKind,
    pub value: f64,
}

/// A perf report for one experiment, serializable to `BENCH_<exp>.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Experiment tag, e.g. `"E3"` — names the output file.
    pub exp: String,
    /// Wall time of the calibration loop on the emitting host.
    pub calib_secs: f64,
    pub metrics: Vec<Metric>,
}

impl BenchReport {
    /// Start a report: runs the calibration loop immediately so later
    /// scores are normalized against this host's current speed.
    pub fn new(exp: &str) -> Self {
        BenchReport {
            exp: exp.to_string(),
            calib_secs: calibration_loop(),
            metrics: Vec::new(),
        }
    }

    /// Measure `f` `k` times, record the fastest run as a
    /// host-normalized score, and return the last run's output with the
    /// fastest time in seconds.
    pub fn timed<T>(&mut self, name: &str, k: usize, mut f: impl FnMut() -> T) -> (T, f64) {
        assert!(k >= 1);
        let mut best = f64::INFINITY;
        let mut out = None;
        for _ in 0..k {
            let start = Instant::now();
            out = Some(black_box(f()));
            best = best.min(start.elapsed().as_secs_f64());
        }
        self.metrics.push(Metric {
            name: name.to_string(),
            kind: MetricKind::Score,
            value: best / self.calib_secs,
        });
        (out.unwrap(), best)
    }

    /// Record a quality value (speedup ratio, throughput, …).
    pub fn value(&mut self, name: &str, v: f64) {
        self.metrics.push(Metric {
            name: name.to_string(),
            kind: MetricKind::Value,
            value: v,
        });
    }

    /// Serialize: fixed line-oriented JSON, one metric per line.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"exp\": \"{}\",\n", self.exp));
        s.push_str(&format!("  \"calib_secs\": {:.6},\n", self.calib_secs));
        s.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let comma = if i + 1 == self.metrics.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{ \"name\": \"{}\", \"kind\": \"{}\", \"value\": {:.6} }}{}\n",
                m.name,
                m.kind.as_str(),
                m.value,
                comma
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse the shape emitted by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
            let pat = format!("\"{key}\":");
            let at = line.find(&pat)? + pat.len();
            let rest = line[at..].trim_start();
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            Some(rest[..end].trim().trim_matches('"'))
        }
        let mut exp = None;
        let mut calib = None;
        let mut metrics = Vec::new();
        for line in text.lines() {
            let t = line.trim();
            if t.starts_with("{ \"name\"") || t.starts_with("{\"name\"") {
                let name = field(t, "name").ok_or("metric missing name")?.to_string();
                let kind = MetricKind::parse(field(t, "kind").ok_or("metric missing kind")?)
                    .ok_or_else(|| format!("bad metric kind in {t:?}"))?;
                let value: f64 = field(t, "value")
                    .ok_or("metric missing value")?
                    .parse()
                    .map_err(|e| format!("bad metric value in {t:?}: {e}"))?;
                metrics.push(Metric { name, kind, value });
            } else if t.contains("\"exp\"") {
                exp = field(t, "exp").map(str::to_string);
            } else if t.contains("\"calib_secs\"") {
                calib = field(t, "calib_secs").and_then(|v| v.parse().ok());
            }
        }
        Ok(BenchReport {
            exp: exp.ok_or("missing exp")?,
            calib_secs: calib.ok_or("missing calib_secs")?,
            metrics,
        })
    }

    /// If `QREL_BENCH_DIR` is set, write `BENCH_<exp>.json` there.
    /// Returns the path written, if any.
    pub fn write_if_requested(&self) -> Option<std::path::PathBuf> {
        let dir = std::env::var_os("QREL_BENCH_DIR")?;
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.exp));
        std::fs::create_dir_all(&dir).expect("QREL_BENCH_DIR must be creatable");
        std::fs::write(&path, self.to_json()).expect("BENCH json must be writable");
        Some(path)
    }
}

/// One comparison verdict.
#[derive(Debug, Clone)]
pub struct Verdict {
    pub metric: String,
    pub baseline: f64,
    pub current: Option<f64>,
    pub regressed: bool,
}

/// Gate `current` against `baseline` at the given relative `threshold`
/// (0.15 = fail on >15% regression). Every baseline metric must be
/// present in the current report; extra current metrics are ignored
/// (they become part of the gate once the baseline is re-recorded).
pub fn compare(baseline: &BenchReport, current: &BenchReport, threshold: f64) -> Vec<Verdict> {
    baseline
        .metrics
        .iter()
        .map(|b| {
            let cur = current
                .metrics
                .iter()
                .find(|c| c.name == b.name && c.kind == b.kind);
            let regressed = match cur {
                None => true,
                Some(c) => match b.kind {
                    MetricKind::Score => c.value > b.value * (1.0 + threshold),
                    MetricKind::Value => c.value < b.value * (1.0 - threshold),
                },
            };
            Verdict {
                metric: b.name.clone(),
                baseline: b.value,
                current: cur.map(|c| c.value),
                regressed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> BenchReport {
        BenchReport {
            exp: "E99".to_string(),
            calib_secs: 0.05,
            metrics: vec![
                Metric {
                    name: "total".to_string(),
                    kind: MetricKind::Score,
                    value: 2.5,
                },
                Metric {
                    name: "speedup".to_string(),
                    kind: MetricKind::Value,
                    value: 10.0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let r = report();
        let back = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back.exp, r.exp);
        assert_eq!(back.metrics.len(), 2);
        assert_eq!(back.metrics[0].name, "total");
        assert_eq!(back.metrics[0].kind, MetricKind::Score);
        assert!((back.metrics[0].value - 2.5).abs() < 1e-9);
        assert_eq!(back.metrics[1].kind, MetricKind::Value);
    }

    #[test]
    fn compare_directions() {
        let base = report();
        let mut cur = report();
        // Within threshold both ways: no regression.
        cur.metrics[0].value = 2.6; // +4% time
        cur.metrics[1].value = 9.5; // -5% speedup
        assert!(compare(&base, &cur, 0.15).iter().all(|v| !v.regressed));
        // Score up 20%: regressed.
        cur.metrics[0].value = 3.01;
        assert!(compare(&base, &cur, 0.15)[0].regressed);
        // Value down 20%: regressed.
        cur.metrics[0].value = 2.5;
        cur.metrics[1].value = 8.0;
        assert!(compare(&base, &cur, 0.15)[1].regressed);
        // Faster score / higher value: never a regression.
        cur.metrics[0].value = 0.1;
        cur.metrics[1].value = 100.0;
        assert!(compare(&base, &cur, 0.15).iter().all(|v| !v.regressed));
    }

    #[test]
    fn missing_metric_regresses() {
        let base = report();
        let mut cur = report();
        cur.metrics.pop();
        let verdicts = compare(&base, &cur, 0.15);
        assert!(!verdicts[0].regressed);
        assert!(verdicts[1].regressed);
        assert!(verdicts[1].current.is_none());
    }

    #[test]
    fn timed_records_scores_and_values() {
        let mut r = BenchReport::new("E98");
        assert!(r.calib_secs > 0.0);
        let ((), secs) = r.timed("noop", 3, || {
            black_box(0u64);
        });
        assert!(secs >= 0.0);
        r.value("ratio", 4.0);
        assert_eq!(r.metrics.len(), 2);
        assert_eq!(r.metrics[0].kind, MetricKind::Score);
        assert!(r.metrics[0].value >= 0.0);
    }
}
