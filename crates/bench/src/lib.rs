//! Shared harness for the qrel experiments.
//!
//! Each experiment in `DESIGN.md` §7 is a binary in `src/bin/` that
//! prints a table; `EXPERIMENTS.md` records the outputs next to the
//! paper's claims. This library provides the common pieces: table
//! rendering, timing, and workload generators.

pub mod perf;

use qrel_arith::BigRational;
use qrel_db::{Database, DatabaseBuilder, Fact};
use qrel_prob::UnreliableDatabase;
use rand::rngs::StdRng;
use rand::Rng;
use std::time::Instant;

/// Render a fixed-width table to stdout.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::from("|");
            for (c, w) in cells.iter().zip(&widths) {
                s.push_str(&format!(" {c:<w$} |"));
            }
            s
        };
        let sep = {
            let mut s = String::from("|");
            for w in &widths {
                s.push_str(&format!("{}|", "-".repeat(w + 2)));
            }
            s
        };
        println!("{}", line(&self.headers));
        println!("{sep}");
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

/// Time a closure, returning (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Format seconds human-readably.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// A random database over the standard experiment schema
/// `E/2, S/1` with edge density `p_edge` and mark density `p_mark`.
pub fn random_graph_db(n: usize, p_edge: f64, p_mark: f64, rng: &mut StdRng) -> Database {
    let mut edges = Vec::new();
    for a in 0..n as u32 {
        for b in 0..n as u32 {
            if a != b && rng.gen_bool(p_edge) {
                edges.push(vec![a, b]);
            }
        }
    }
    let marks: Vec<Vec<u32>> = (0..n as u32)
        .filter(|_| rng.gen_bool(p_mark))
        .map(|v| vec![v])
        .collect();
    DatabaseBuilder::new()
        .universe_size(n)
        .relation("E", 2)
        .relation("S", 1)
        .tuples("E", edges)
        .tuples("S", marks)
        .build()
}

/// Give every fact of `db` the same error probability.
pub fn with_uniform_error(db: Database, num: i64, den: u64) -> UnreliableDatabase {
    let mut ud = UnreliableDatabase::reliable(db);
    ud.set_uniform_error(BigRational::from_ratio(num, den))
        .unwrap();
    ud
}

/// Make exactly `count` randomly chosen facts uncertain with random
/// error probabilities drawn from the given denominators.
pub fn with_random_errors(
    db: Database,
    count: usize,
    denominators: &[u64],
    rng: &mut StdRng,
) -> UnreliableDatabase {
    let mut ud = UnreliableDatabase::reliable(db);
    let indexer = ud.indexer().clone();
    let total = indexer.total();
    let mut chosen = std::collections::HashSet::new();
    while chosen.len() < count.min(total) {
        chosen.insert(rng.gen_range(0..total));
    }
    for fi in chosen {
        let d = denominators[rng.gen_range(0..denominators.len())];
        let n = rng.gen_range(1..d) as i64;
        ud.set_error(&indexer.fact_at(fi), BigRational::from_ratio(n, d))
            .unwrap();
    }
    ud
}

/// Set error probability `num/den` on exactly `count` random facts.
pub fn with_fixed_errors(
    db: Database,
    count: usize,
    num: i64,
    den: u64,
    rng: &mut StdRng,
) -> UnreliableDatabase {
    let mut ud = UnreliableDatabase::reliable(db);
    let indexer = ud.indexer().clone();
    let total = indexer.total();
    let mut chosen = std::collections::HashSet::new();
    while chosen.len() < count.min(total) {
        chosen.insert(rng.gen_range(0..total));
    }
    for fi in chosen {
        ud.set_error(&indexer.fact_at(fi), BigRational::from_ratio(num, den))
            .unwrap();
    }
    ud
}

/// Random kDNF over `num_vars` variables with exactly `num_terms` terms.
pub fn random_kdnf(
    num_vars: usize,
    num_terms: usize,
    k: usize,
    rng: &mut StdRng,
) -> qrel_logic::prop::Dnf {
    use qrel_logic::prop::{Dnf, Lit};
    let mut d = Dnf::new();
    while d.num_terms() < num_terms {
        let len = rng.gen_range(1..=k);
        let lits: Vec<Lit> = (0..len)
            .map(|_| {
                let v = rng.gen_range(0..num_vars) as u32;
                if rng.gen() {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                }
            })
            .collect();
        d.push_term_checked(lits);
    }
    d
}

/// Log-log slope between two (x, y) measurements — the empirical
/// polynomial degree.
pub fn loglog_slope(x0: f64, y0: f64, x1: f64, y1: f64) -> f64 {
    ((y1 / y0).ln()) / ((x1 / x0).ln())
}

/// Shorthand for building a fact.
pub fn fact(rel: usize, tuple: Vec<u32>) -> Fact {
    Fact::new(rel, tuple)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["n", "time"]);
        t.row(&["8".to_string(), "1.2ms".to_string()]);
        t.print();
    }

    #[test]
    fn generators_produce_requested_sizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let db = random_graph_db(10, 0.3, 0.5, &mut rng);
        assert_eq!(db.size(), 10);
        let ud = with_random_errors(db, 7, &[2, 3, 4], &mut rng);
        assert_eq!(ud.uncertain_facts().len(), 7);
        let d = random_kdnf(12, 6, 3, &mut rng);
        assert_eq!(d.num_terms(), 6);
        assert!(d.width() <= 3);
    }

    #[test]
    fn slope_math() {
        // y = x²: slope 2.
        assert!((loglog_slope(2.0, 4.0, 8.0, 64.0) - 2.0).abs() < 1e-9);
    }
}
