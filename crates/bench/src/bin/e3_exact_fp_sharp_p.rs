//! E3 — Theorem 4.2: exact reliability via weighted world counting.
//!
//! Sweeps the number of uncertain facts `u` with mixed rational error
//! probabilities; verifies the integrality identity `g·Pr[𝔅 ⊨ ψ] ∈ ℕ`
//! (with the *sound* normalizer) on every instance, demonstrates the
//! published lcm normalizer failing, and shows runtime ~2^u.

use qrel_arith::{BigInt, BigRational};
use qrel_bench::perf::BenchReport;
use qrel_bench::{fmt_secs, random_graph_db, with_random_errors, Table};
use qrel_core::exact::{counting_certificate, exact_probability};
use qrel_core::existential_probability_bitslice;
use qrel_eval::FoQuery;
use qrel_prob::normalizer::{paper_g, sound_g};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E3 — weighted world counting and the g normalizer (Thm 4.2)\n");
    let q = FoQuery::parse("exists x y. E(x,y) & S(y)").unwrap();
    let mut table = Table::new(&[
        "u (uncertain)",
        "worlds",
        "Pr[ψ]",
        "bits(g)",
        "g·Pr ∈ ℕ",
        "Σν = 1",
        "time",
    ]);
    let mut rng = StdRng::seed_from_u64(3);
    let mut paper_g_failures = 0usize;
    let mut instances = 0usize;
    for u in [2usize, 4, 6, 8, 10, 12, 14, 16] {
        let db = random_graph_db(4, 0.4, 0.5, &mut rng);
        let ud = with_random_errors(db, u, &[2, 3, 4, 5, 8, 12], &mut rng);
        let ((p, cert), secs) = qrel_bench::timed(|| {
            (
                exact_probability(&ud, &q).unwrap(),
                counting_certificate(&ud, &q).unwrap(),
            )
        });
        // Integrality with the sound g (asserted inside the certificate);
        // completeness of the distribution.
        let total = ud
            .worlds()
            .fold(BigRational::zero(), |acc, (_, w)| acc.add_ref(&w));
        // Does the published lcm-g also clear denominators?
        let pg = paper_g(&ud);
        let pg_ok = p
            .mul_ref(&BigRational::new(BigInt::from_biguint(pg), BigInt::one()))
            .is_integer();
        instances += 1;
        if !pg_ok {
            paper_g_failures += 1;
        }
        table.row(&[
            u.to_string(),
            format!("2^{u}"),
            format!("{:.6}", p.to_f64()),
            sound_g(&ud).bit_length().to_string(),
            "✓".into(),
            if total.is_one() {
                "✓".into()
            } else {
                "✗".into()
            },
            fmt_secs(secs),
        ]);
        let _ = cert;
    }
    table.print();
    println!(
        "\nerratum check: published lcm-normalizer cleared denominators on \
         {}/{} instances (sound product-normalizer: {}/{}).",
        instances - paper_g_failures,
        instances,
        instances,
        instances
    );
    println!("paper: FP^#P membership — runtime doubles per uncertain fact.");

    println!("\npart 2: bit-parallel exact engine vs per-world enumeration (dyadic errors)");
    let mut report = BenchReport::new("E3");
    let u = 16usize;
    let db = random_graph_db(4, 0.4, 0.5, &mut rng);
    let ud = with_random_errors(db, u, &[2, 4, 8, 16], &mut rng);
    let (serial, serial_secs) = report.timed("exact_serial_u16", 3, || {
        exact_probability(&ud, &q).unwrap()
    });
    let (fast, fast_secs) = report.timed("exact_bitslice_u16", 5, || {
        existential_probability_bitslice(&ud, q.formula()).unwrap()
    });
    assert_eq!(
        serial, fast,
        "bit-sliced engine disagreed with world enumeration"
    );
    let speedup = serial_secs / fast_secs;
    println!(
        "u = {u}: enumeration {} vs bitslice {} — {speedup:.1}x, results bit-identical",
        fmt_secs(serial_secs),
        fmt_secs(fast_secs)
    );
    assert!(
        speedup >= 8.0,
        "bit-parallel engine must beat world enumeration by >= 8x on dyadic \
         instances (got {speedup:.1}x)"
    );
    report.value("bitslice_speedup_u16", speedup);
    if let Some(path) = report.write_if_requested() {
        println!("bench report written to {}", path.display());
    }
}
