//! E13 — data complexity vs expression complexity (Section 1).
//!
//! The paper measures reliability complexity "in terms of the size of the
//! unreliable database … rather than the expression complexity", arguing
//! queries are small while databases are huge. This experiment shows why
//! the caveat matters: the Prop 3.1 algorithm enumerates `2^{n(ψ)}`
//! assignments per tuple, so it is *exponential in the query* — fix the
//! database and grow the number of distinct atoms in a QF query, and the
//! runtime doubles per atom; fix the query and grow the database, and it
//! scales polynomially (E1).

use qrel_bench::{fmt_secs, random_graph_db, with_uniform_error, Table};
use qrel_core::quantifier_free::qf_reliability;
use qrel_logic::parser::parse_formula;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A unary QF query with exactly `k` distinct atoms: a disjunction of
/// `S(x)`, `E(x,x)` and constant-anchored edge atoms `E(x,c)` / `E(c,x)`.
/// One free variable throughout — only the atom count grows.
fn query_with_atoms(k: usize) -> (String, Vec<String>) {
    let mut pool = vec!["S(x)".to_string(), "E(x,x)".to_string()];
    for a in 0..6 {
        pool.push(format!("E(x,{a})"));
    }
    for a in 0..6 {
        pool.push(format!("E({a},x)"));
    }
    assert!(k <= pool.len(), "atom pool exhausted");
    (pool[..k].join(" | "), vec!["x".to_string()])
}

fn main() {
    println!("E13 — expression-complexity wall of the Prop 3.1 algorithm\n");
    println!("fixed database: n = 6, uniform μ = 1/10; growing query\n");
    let mut rng = StdRng::seed_from_u64(13);
    let db = random_graph_db(6, 0.3, 0.5, &mut rng);
    let ud = with_uniform_error(db, 1, 10);

    let mut table = Table::new(&["atoms n(ψ)", "free vars", "2^{n(ψ)}", "time", "growth"]);
    let mut prev: Option<f64> = None;
    for k in [2usize, 4, 6, 8, 10, 12, 14] {
        let (src, vars) = query_with_atoms(k);
        let f = parse_formula(&src).unwrap();
        let (rep, secs) = qrel_bench::timed(|| qf_reliability(&ud, &f, &vars).unwrap());
        let growth = prev
            .map(|p| format!("{:.1}x", secs / p))
            .unwrap_or("—".into());
        prev = Some(secs);
        table.row(&[
            rep.max_atoms_per_tuple.to_string(),
            vars.len().to_string(),
            format!("{}", 1u64 << rep.max_atoms_per_tuple),
            fmt_secs(secs),
            growth,
        ]);
    }
    table.print();
    println!(
        "\npaper (Sect. 1): \"queries are usually given by small expressions, \
         whereas the size of the databases may be huge\" — the ~4x growth per \
         row (+2 atoms) is the 2^{{n(ψ)}} expression-complexity factor, which \
         the data-complexity viewpoint treats as a constant. E1 shows the \
         complementary polynomial scaling in the database size."
    );
}
