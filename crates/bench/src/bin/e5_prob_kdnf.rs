//! E5 — Theorem 5.3: the Prob-kDNF → #DNF reduction.
//!
//! Fixed kDNF skeletons with dyadic vs non-dyadic probability vectors:
//! the reduction's exact output must equal the independent Shannon
//! oracle on every instance (the legal-assignment accounting), and the
//! counter blowup must stay polynomial in the probability bit width.

use qrel_arith::BigRational;
use qrel_bench::{random_kdnf, Table};
use qrel_core::prob_dnf::ProbDnfReduction;
use qrel_count::dnf_probability_shannon;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("E5 — Prob-kDNF via binary counters (Thm 5.3)\n");
    let mut rng = StdRng::seed_from_u64(5);
    let mut table = Table::new(&[
        "denominators",
        "vars",
        "terms",
        "counter bits",
        "φ'' terms",
        "illegal",
        "exact == oracle",
        "FPTRAS |err|",
    ]);
    let denominator_sets: [(&str, &[u64]); 4] = [
        ("dyadic {2,4,8}", &[2, 4, 8]),
        ("odd {3,5,7}", &[3, 5, 7]),
        ("mixed {2,3,12}", &[2, 3, 12]),
        ("wide {16,12,10}", &[16, 12, 10]),
    ];
    for (label, dens) in denominator_sets {
        let vars = 6usize;
        let d = random_kdnf(vars, 5, 3, &mut rng);
        let probs: Vec<BigRational> = (0..vars)
            .map(|_| {
                let q = dens[rng.gen_range(0..dens.len())];
                BigRational::from_ratio(rng.gen_range(1..q) as i64, q)
            })
            .collect();
        let red = ProbDnfReduction::new(&d, &probs).unwrap();
        let exact = red.exact_probability();
        let oracle = dnf_probability_shannon(&d, &probs);
        let est = red.estimate(0.05, 0.05, &mut rng);
        table.row(&[
            label.to_string(),
            vars.to_string(),
            d.num_terms().to_string(),
            red.total_bits.to_string(),
            red.phi2.num_terms().to_string(),
            red.illegal_count().to_string(),
            if exact == oracle {
                "✓".into()
            } else {
                "✗".into()
            },
            format!("{:.4}", (est - oracle.to_f64()).abs()),
        ]);
        assert_eq!(exact, oracle, "reduction broke on {label}");
    }
    table.print();
    println!(
        "\npaper: counters add O(len(q)) bits per variable and O(ℓ²)-size \
         threshold formulas; non-dyadic instances add the illegal-assignment \
         correction, and exactness is preserved in all rows."
    );
}
