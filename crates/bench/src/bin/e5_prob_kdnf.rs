//! E5 — Theorem 5.3: the Prob-kDNF → #DNF reduction.
//!
//! Fixed kDNF skeletons with dyadic vs non-dyadic probability vectors:
//! the reduction's exact output must equal the independent Shannon
//! oracle on every instance (the legal-assignment accounting), and the
//! counter blowup must stay polynomial in the probability bit width.

use qrel_arith::BigRational;
use qrel_bench::perf::BenchReport;
use qrel_bench::{fmt_secs, random_kdnf, Table};
use qrel_core::prob_dnf::ProbDnfReduction;
use qrel_count::{dnf_probability_bitslice, dnf_probability_enum, dnf_probability_shannon};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("E5 — Prob-kDNF via binary counters (Thm 5.3)\n");
    let mut rng = StdRng::seed_from_u64(5);
    let mut table = Table::new(&[
        "denominators",
        "vars",
        "terms",
        "counter bits",
        "φ'' terms",
        "illegal",
        "exact == oracle",
        "FPTRAS |err|",
    ]);
    let denominator_sets: [(&str, &[u64]); 4] = [
        ("dyadic {2,4,8}", &[2, 4, 8]),
        ("odd {3,5,7}", &[3, 5, 7]),
        ("mixed {2,3,12}", &[2, 3, 12]),
        ("wide {16,12,10}", &[16, 12, 10]),
    ];
    for (label, dens) in denominator_sets {
        let vars = 6usize;
        let d = random_kdnf(vars, 5, 3, &mut rng);
        let probs: Vec<BigRational> = (0..vars)
            .map(|_| {
                let q = dens[rng.gen_range(0..dens.len())];
                BigRational::from_ratio(rng.gen_range(1..q) as i64, q)
            })
            .collect();
        let red = ProbDnfReduction::new(&d, &probs).unwrap();
        let exact = red.exact_probability();
        let oracle = dnf_probability_shannon(&d, &probs);
        let est = red.estimate(0.05, 0.05, &mut rng);
        table.row(&[
            label.to_string(),
            vars.to_string(),
            d.num_terms().to_string(),
            red.total_bits.to_string(),
            red.phi2.num_terms().to_string(),
            red.illegal_count().to_string(),
            if exact == oracle {
                "✓".into()
            } else {
                "✗".into()
            },
            format!("{:.4}", (est - oracle.to_f64()).abs()),
        ]);
        assert_eq!(exact, oracle, "reduction broke on {label}");
    }
    table.print();
    println!(
        "\npaper: counters add O(len(q)) bits per variable and O(ℓ²)-size \
         threshold formulas; non-dyadic instances add the illegal-assignment \
         correction, and exactness is preserved in all rows."
    );

    println!("\npart 2: bit-parallel kDNF evaluation vs per-world enumeration");
    let mut report = BenchReport::new("E5");
    let vars = 20usize;
    let d = random_kdnf(vars, 24, 3, &mut rng);

    // Dyadic probabilities: the whole run stays on the fixed-width u128
    // fast path, and the speedup floor is asserted.
    let dyadic: Vec<BigRational> = (0..vars)
        .map(|_| {
            let den = [2u64, 4, 8, 16][rng.gen_range(0..4usize)];
            BigRational::from_ratio(rng.gen_range(1..den) as i64, den)
        })
        .collect();
    let (enum_p, enum_secs) =
        report.timed("kdnf_enum_dyadic", 3, || dnf_probability_enum(&d, &dyadic));
    let (fast_p, fast_secs) = report.timed("kdnf_bitslice_dyadic", 5, || {
        dnf_probability_bitslice(&d, &dyadic)
    });
    assert_eq!(enum_p, fast_p, "bitslice disagreed with enumeration");
    assert_eq!(
        fast_p,
        dnf_probability_shannon(&d, &dyadic),
        "bitslice disagreed with Shannon"
    );
    let speedup = enum_secs / fast_secs;
    println!(
        "dyadic, vars = {vars}, terms = 24: enum {} vs bitslice {} — {speedup:.1}x",
        fmt_secs(enum_secs),
        fmt_secs(fast_secs)
    );
    assert!(
        speedup >= 8.0,
        "bit-parallel kernel must beat per-world enumeration by >= 8x on \
         dyadic instances (got {speedup:.1}x)"
    );
    report.value("bitslice_speedup_dyadic", speedup);

    // Non-dyadic probabilities force the dyadic representation to
    // promote to BigRational lane weights; correctness must survive,
    // and the speedup is recorded but not floor-asserted.
    let thirds: Vec<BigRational> = (0..vars)
        .map(|_| {
            let den = [3u64, 5, 6, 12][rng.gen_range(0..4usize)];
            BigRational::from_ratio(rng.gen_range(1..den) as i64, den)
        })
        .collect();
    let (enum_p, enum_secs) = report.timed("kdnf_enum_promoted", 3, || {
        dnf_probability_enum(&d, &thirds)
    });
    let (fast_p, fast_secs) = report.timed("kdnf_bitslice_promoted", 3, || {
        dnf_probability_bitslice(&d, &thirds)
    });
    assert_eq!(
        enum_p, fast_p,
        "promoted bitslice disagreed with enumeration"
    );
    println!(
        "promoted (non-dyadic): enum {} vs bitslice {} — {:.1}x, results bit-identical",
        fmt_secs(enum_secs),
        fmt_secs(fast_secs),
        enum_secs / fast_secs
    );
    if let Some(path) = report.write_if_requested() {
        println!("bench report written to {}", path.display());
    }
}
