//! E10 — Ablation: exact Shannon vs Karp–Luby vs naive Monte-Carlo.
//!
//! Sweeps formula size and probability magnitude to locate the regimes:
//! exact wins on small instances, naive MC is fine while Pr\[φ\] is large,
//! Karp–Luby dominates as Pr\[φ\] → 0 and instances outgrow exact methods.

use qrel_arith::BigRational;
use qrel_bench::perf::BenchReport;
use qrel_bench::{fmt_secs, random_kdnf, Table};
use qrel_count::naive_mc::{naive_mc_probability_sharded, naive_mc_probability_with_samples};
use qrel_count::{
    dnf_probability_bdd, dnf_probability_bitslice, dnf_probability_enum, dnf_probability_shannon,
    KarpLuby,
};
use qrel_logic::prop::{Dnf, Lit};
use qrel_par::DEFAULT_SHARDS;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E10 — estimator crossovers\n");
    let mut rng = StdRng::seed_from_u64(10);

    println!("part 1: runtime crossover on growing random 3DNF (p = 1/2)");
    let mut t1 = Table::new(&[
        "vars",
        "terms",
        "Shannon time",
        "BDD time",
        "KL time",
        "KL rel err",
        "exacts agree",
    ]);
    for (vars, terms) in [(15usize, 10usize), (25, 20), (35, 40), (45, 80)] {
        let d = random_kdnf(vars, terms, 3, &mut rng);
        let probs = vec![BigRational::from_ratio(1, 2); vars];
        let (exact, te) = qrel_bench::timed(|| dnf_probability_shannon(&d, &probs));
        let (exact_bdd, tb) = qrel_bench::timed(|| dnf_probability_bdd(&d, &probs));
        let kl = KarpLuby::new(&d, &probs);
        let (rep, tk) = qrel_bench::timed(|| kl.run(0.05, 0.05, &mut rng));
        let rel = (rep.estimate - exact.to_f64()).abs() / exact.to_f64().max(1e-300);
        t1.row(&[
            vars.to_string(),
            terms.to_string(),
            fmt_secs(te),
            fmt_secs(tb),
            fmt_secs(tk),
            format!("{rel:.4}"),
            if exact == exact_bdd {
                "✓".into()
            } else {
                "✗".into()
            },
        ]);
        assert_eq!(exact, exact_bdd, "BDD oracle disagreed with Shannon");
    }
    t1.print();

    println!("\npart 2: accuracy collapse of naive MC as Pr[φ] shrinks (equal budgets)");
    let mut t2 = Table::new(&["Pr[φ]", "budget", "KL rel err", "naive rel err"]);
    for width in [4usize, 8, 12, 16] {
        let d = Dnf::from_terms([
            (0..width as u32).map(Lit::pos).collect::<Vec<_>>(),
            (width as u32..2 * width as u32)
                .map(Lit::pos)
                .collect::<Vec<_>>(),
        ]);
        let probs = vec![BigRational::from_ratio(1, 3); 2 * width];
        let exact = dnf_probability_shannon(&d, &probs).to_f64();
        let kl = KarpLuby::new(&d, &probs);
        let budget = 30_000u64;
        let rep = kl.run_with_samples(budget, &mut rng);
        let naive = naive_mc_probability_with_samples(&d, &probs, budget, &mut rng);
        t2.row(&[
            format!("{exact:.2e}"),
            budget.to_string(),
            format!("{:.4}", (rep.estimate - exact).abs() / exact),
            format!("{:.4}", (naive - exact).abs() / exact),
        ]);
    }
    t2.print();
    println!(
        "\nexpected shape: exact blows up in formula size; naive MC's relative \
         error goes to 1.0 (it reports 0) once Pr[φ] ≪ 1/budget; Karp–Luby \
         stays flat in both sweeps."
    );

    println!("\npart 3: parallel speedup of both samplers at a fixed budget (sharded engines)");
    let d = random_kdnf(45, 80, 3, &mut rng);
    let probs = vec![BigRational::from_ratio(1, 2); 45];
    let kl = KarpLuby::new(&d, &probs);
    let samples = 1_000_000u64;
    let mut t3 = Table::new(&["threads", "KL time", "KL speedup", "MC time", "MC speedup"]);
    let mut base: Option<(f64, f64, f64, f64)> = None;
    for threads in [1usize, 2, 4, 8] {
        let (kl_rep, kl_secs) =
            qrel_bench::timed(|| kl.run_sharded(samples, 0x10, DEFAULT_SHARDS, threads));
        let (mc_est, mc_secs) = qrel_bench::timed(|| {
            naive_mc_probability_sharded(&d, &probs, samples, 0x10, DEFAULT_SHARDS, threads)
        });
        let (kl_base_est, kl_base, mc_base_est, mc_base) =
            *base.get_or_insert((kl_rep.estimate, kl_secs, mc_est, mc_secs));
        assert_eq!(kl_rep.estimate.to_bits(), kl_base_est.to_bits());
        assert_eq!(mc_est.to_bits(), mc_base_est.to_bits());
        t3.row(&[
            threads.to_string(),
            fmt_secs(kl_secs),
            format!("{:.2}x", kl_base / kl_secs),
            fmt_secs(mc_secs),
            format!("{:.2}x", mc_base / mc_secs),
        ]);
    }
    t3.print();
    println!(
        "\nboth samplers shard the {samples}-sample budget over {DEFAULT_SHARDS} fixed \
         shards; estimates are asserted bit-identical across the threads column."
    );

    println!("\npart 4: exact-enumeration frontier — where bit-parallel evaluation moves it");
    let mut report = BenchReport::new("E10");
    let mut t4 = Table::new(&[
        "vars",
        "terms",
        "enum time",
        "bitslice time",
        "Shannon time",
        "enum/bitslice",
    ]);
    for (vars, terms) in [(14usize, 16usize), (18, 24), (22, 32)] {
        let d = random_kdnf(vars, terms, 3, &mut rng);
        let probs: Vec<BigRational> = (0..vars)
            .map(|i| BigRational::from_ratio(1 + (i as i64 % 3), [4u64, 8, 16][i % 3]))
            .collect();
        // Per-world enumeration is 2^vars sequential steps: past ~18
        // variables it is the method being retired, not a baseline
        // worth waiting on every CI run.
        let enum_out = (vars <= 18).then(|| {
            report.timed(&format!("enum_v{vars}"), 3, || {
                dnf_probability_enum(&d, &probs)
            })
        });
        let (fast, fast_secs) = report.timed(&format!("bitslice_v{vars}"), 5, || {
            dnf_probability_bitslice(&d, &probs)
        });
        let (shannon, sh_secs) = qrel_bench::timed(|| dnf_probability_shannon(&d, &probs));
        assert_eq!(
            fast, shannon,
            "bitslice disagreed with Shannon at {vars} vars"
        );
        let (enum_cell, ratio_cell) = match &enum_out {
            Some((p, secs)) => {
                assert_eq!(*p, fast, "enum disagreed with bitslice at {vars} vars");
                (fmt_secs(*secs), format!("{:.1}x", secs / fast_secs))
            }
            None => ("(skipped)".to_string(), "—".to_string()),
        };
        if let Some((_, secs)) = &enum_out {
            report.value(&format!("bitslice_speedup_v{vars}"), secs / fast_secs);
        }
        t4.row(&[
            vars.to_string(),
            terms.to_string(),
            enum_cell,
            fmt_secs(fast_secs),
            fmt_secs(sh_secs),
            ratio_cell,
        ]);
    }
    t4.print();
    println!(
        "\n64 worlds per machine word: the exhaustive-enumeration frontier moves \
         out by ~6 variables at equal wall time, with exact rationals throughout."
    );
    if let Some(path) = report.write_if_requested() {
        println!("bench report written to {}", path.display());
    }
}
