//! E9 — Theorem 6.2: metafinite reliability.
//!
//! A salary/department workload: quantifier-free flag queries scale
//! polynomially (6.2(i)); aggregate terms (Σ, min, max, avg, filtered Σ)
//! get exact reliability by world enumeration (6.2(ii)) cross-checked by
//! Monte-Carlo; consistency of the entry distributions is enforced.

use qrel_arith::BigRational;
use qrel_bench::{fmt_secs, Table};
use qrel_metafinite::reliability::{
    exact_reliability, expected_value, mc_reliability, qf_reliability,
};
use qrel_metafinite::{
    EntryDistribution, FunctionalDatabase, MTerm, MultisetOp, ROp, UnreliableFunctionalDatabase,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

fn census(n: usize, uncertain: usize, rng: &mut StdRng) -> UnreliableFunctionalDatabase {
    let mut db = FunctionalDatabase::new(n);
    let salaries: Vec<BigRational> = (0..n)
        .map(|_| r(rng.gen_range(30i64..120) * 1000, 1))
        .collect();
    let depts: Vec<BigRational> = (0..n).map(|_| r(rng.gen_range(1..4), 1)).collect();
    db.add_function_values("salary", 1, salaries.clone());
    db.add_function_values("dept", 1, depts);
    let mut ud = UnreliableFunctionalDatabase::reliable(db);
    for (i, salary) in salaries.iter().take(uncertain.min(n)).enumerate() {
        let observed = salary.clone();
        let typo = observed.div_ref(&r(10, 1));
        ud.set_distribution(
            "salary",
            &[i as u32],
            EntryDistribution::new(vec![(observed, r(9, 10)), (typo, r(1, 10))]).unwrap(),
        );
    }
    ud
}

fn main() {
    println!("E9 — metafinite reliability (Thm 6.2)\n");
    let mut rng = StdRng::seed_from_u64(9);

    println!("part 1: QF term χ[salary(x) ≥ 50k] — polynomial scaling (6.2(i))");
    let flag = MTerm::apply(
        ROp::CharLe,
        [MTerm::constant(50_000, 1), MTerm::func("salary", ["x"])],
    );
    let mut t1 = Table::new(&["n", "uncertain", "H", "R", "time"]);
    for n in [10usize, 50, 100, 200] {
        let ud = census(n, n / 2, &mut rng);
        let (rep, secs) =
            qrel_bench::timed(|| qf_reliability(&ud, &flag, &["x".to_string()]).unwrap());
        t1.row(&[
            n.to_string(),
            (n / 2).to_string(),
            format!("{:.4}", rep.expected_error.to_f64()),
            format!("{:.5}", rep.reliability.to_f64()),
            fmt_secs(secs),
        ]);
    }
    t1.print();

    println!("\npart 2: aggregates — exact (6.2(ii)) vs Monte-Carlo");
    let ud = census(8, 5, &mut rng);
    let aggregates: Vec<(&str, MTerm)> = vec![
        (
            "SUM(salary)",
            MTerm::multiset(MultisetOp::Sum, ["x"], MTerm::func("salary", ["x"])),
        ),
        (
            "MAX(salary)",
            MTerm::multiset(MultisetOp::Max, ["x"], MTerm::func("salary", ["x"])),
        ),
        (
            "AVG(salary)",
            MTerm::multiset(MultisetOp::Avg, ["x"], MTerm::func("salary", ["x"])),
        ),
        (
            "SUM WHERE dept=2",
            MTerm::multiset(
                MultisetOp::Sum,
                ["x"],
                MTerm::apply(
                    ROp::Mul,
                    [
                        MTerm::func("salary", ["x"]),
                        MTerm::apply(
                            ROp::CharEq,
                            [MTerm::func("dept", ["x"]), MTerm::constant(2, 1)],
                        ),
                    ],
                ),
            ),
        ),
    ];
    let mut t2 = Table::new(&[
        "aggregate",
        "observed",
        "E[value]",
        "exact R",
        "MC R̂",
        "|err|",
        "time (exact)",
    ]);
    for (name, term) in &aggregates {
        let observed = term
            .eval(ud.observed(), &std::collections::HashMap::new())
            .unwrap();
        let (rep, secs) = qrel_bench::timed(|| exact_reliability(&ud, term, &[]).unwrap());
        let ev = expected_value(&ud, term).unwrap();
        let mc = mc_reliability(&ud, term, &[], 0.03, 0.03, &mut rng).unwrap();
        t2.row(&[
            name.to_string(),
            format!("{:.0}", observed.to_f64()),
            format!("{:.0}", ev.to_f64()),
            format!("{:.5}", rep.reliability.to_f64()),
            format!("{mc:.5}"),
            format!("{:.5}", (mc - rep.reliability.to_f64()).abs()),
            fmt_secs(secs),
        ]);
    }
    t2.print();
    println!(
        "\npaper: QF metafinite reliability is PTIME; FO (aggregate) reliability \
         is FP^#P — exact engine enumerates ∏ support sizes worlds."
    );
}
