//! E2 — Proposition 3.2: the expected error of the fixed conjunctive
//! query `∃x∃y∃z (Lxy ∧ Rxz ∧ Sy ∧ Sz)` *is* #MONOTONE-2SAT.
//!
//! For random monotone 2-CNFs: check `H_ψ · 2^m = #SAT` exactly against
//! the DPLL oracle, and show the exact engine's runtime doubling per
//! added variable while the database only grows linearly.

use qrel_bench::{fmt_secs, Table};
use qrel_core::exact::exact_reliability;
use qrel_core::reductions::mon2sat::{recover_count, reduce};
use qrel_count::count_mon2sat;
use qrel_eval::FoQuery;
use qrel_logic::mon2sat::Monotone2Sat;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E2 — #MONOTONE-2SAT via expected error (Prop 3.2)\n");
    let mut rng = StdRng::seed_from_u64(2);
    let mut table = Table::new(&[
        "m (vars)",
        "clauses",
        "db size",
        "worlds",
        "#SAT via H_ψ",
        "#SAT via DPLL",
        "match",
        "time (exact engine)",
    ]);
    let mut prev_time: Option<f64> = None;
    let mut ratios = Vec::new();
    for m in [4u32, 6, 8, 10, 12, 14] {
        let clauses = m as usize + 1;
        let f = Monotone2Sat::random(m, clauses, &mut rng);
        let inst = reduce(&f);
        let q = FoQuery::new(inst.query.clone());
        let (h, secs) =
            qrel_bench::timed(|| exact_reliability(&inst.ud, &q).unwrap().expected_error);
        let via_h = recover_count(&inst, &h);
        let via_dpll = count_mon2sat(&f);
        let matches = via_h.to_u64() == Some(via_dpll);
        if let Some(p) = prev_time {
            ratios.push(secs / p);
        }
        prev_time = Some(secs);
        table.row(&[
            m.to_string(),
            clauses.to_string(),
            (clauses + m as usize).to_string(),
            format!("2^{m}"),
            via_h.to_string(),
            via_dpll.to_string(),
            if matches { "✓".into() } else { "✗".into() },
            fmt_secs(secs),
        ]);
        assert!(matches, "reduction disagreed with the oracle");
    }
    table.print();
    let avg: f64 = ratios
        .iter()
        .product::<f64>()
        .powf(1.0 / ratios.len() as f64);
    println!(
        "\ngeometric mean time ratio per +2 variables: {avg:.1}x  \
         (paper: exact computation is #P-hard ⇒ exponential; 4x expected)"
    );
}
