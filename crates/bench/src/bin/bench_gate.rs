//! Compare a directory of freshly emitted `BENCH_<exp>.json` reports
//! against the committed baselines and fail on regression.
//!
//! Usage: `bench_gate <baseline_dir> <current_dir> [threshold]`
//!
//! Every `BENCH_*.json` in the baseline directory must have a current
//! counterpart, and every baseline metric must be present and within
//! `threshold` (default 0.15 = 15%) of its baseline — scores may not
//! rise past it, values may not fall past it. Exit status 1 on any
//! regression or missing report, with a per-metric verdict table on
//! stdout either way.

use qrel_bench::perf::{compare, BenchReport, MetricKind};
use std::path::Path;
use std::process::ExitCode;

fn load_reports(dir: &Path) -> Vec<(String, BenchReport)> {
    let mut out: Vec<(String, BenchReport)> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| {
            p.file_name().is_some_and(|n| {
                let n = n.to_string_lossy();
                n.starts_with("BENCH_") && n.ends_with(".json")
            })
        })
        .map(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            let text =
                std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("{name}: unreadable: {e}"));
            let report =
                BenchReport::from_json(&text).unwrap_or_else(|e| panic!("{name}: malformed: {e}"));
            (name, report)
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 || args.len() > 4 {
        eprintln!("usage: bench_gate <baseline_dir> <current_dir> [threshold]");
        return ExitCode::from(2);
    }
    let baseline_dir = Path::new(&args[1]);
    let current_dir = Path::new(&args[2]);
    let threshold: f64 = args
        .get(3)
        .map(|t| t.parse().expect("threshold must be a number"))
        .unwrap_or(0.15);

    let baselines = load_reports(baseline_dir);
    assert!(
        !baselines.is_empty(),
        "no BENCH_*.json baselines in {}",
        baseline_dir.display()
    );
    let currents = load_reports(current_dir);

    let mut failures = 0usize;
    println!(
        "bench gate: {} baseline report(s), threshold {:.0}%",
        baselines.len(),
        threshold * 100.0
    );
    for (name, base) in &baselines {
        let Some((_, cur)) = currents.iter().find(|(n, _)| n == name) else {
            println!("FAIL {name}: no current report emitted");
            failures += 1;
            continue;
        };
        println!(
            "{} (calib base {:.4}s, cur {:.4}s)",
            name, base.calib_secs, cur.calib_secs
        );
        for v in compare(base, cur, threshold) {
            let kind = base
                .metrics
                .iter()
                .find(|m| m.name == v.metric)
                .map(|m| m.kind)
                .unwrap_or(MetricKind::Score);
            let dir = match kind {
                MetricKind::Score => "score",
                MetricKind::Value => "value",
            };
            let cur_s = v
                .current
                .map(|c| format!("{c:.4}"))
                .unwrap_or_else(|| "missing".to_string());
            let status = if v.regressed { "FAIL" } else { "ok  " };
            println!(
                "  {status} {dir:<5} {:<28} base {:.4}  cur {cur_s}",
                v.metric, v.baseline
            );
            if v.regressed {
                failures += 1;
            }
        }
    }
    if failures > 0 {
        println!("bench gate: {failures} regression(s)");
        ExitCode::FAILURE
    } else {
        println!("bench gate: all metrics within threshold");
        ExitCode::SUCCESS
    }
}
