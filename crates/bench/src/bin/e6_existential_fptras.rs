//! E6 — Theorem 5.4 and Corollary 5.5: existential-query probabilities
//! and absolute-error reliability.
//!
//! Sweeps the database size for a conjunctive query: grounded-DNF size
//! must grow polynomially (≈ n^{quantified vars}) with constant width,
//! both FPTRAS routes must land within ε of the exact value (small n),
//! and the k-ary budget split must keep the total reliability error ≤ ε.

use qrel_bench::{fmt_secs, random_graph_db, with_uniform_error, Table};
use qrel_core::exact::exact_reliability;
use qrel_core::existential::{
    existential_probability_exact, existential_probability_fptras, Route,
};
use qrel_core::reliability_approx::approximate_reliability;
use qrel_eval::{ground_existential, FoQuery};
use qrel_logic::parser::parse_formula;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() {
    println!("E6 — existential FPTRAS and reliability (Thm 5.4, Cor 5.5)\n");
    let f = parse_formula("exists x y. E(x,y) & S(x) & S(y)").unwrap();
    println!("ψ = {f}\n");

    println!("part 1: grounding growth and FPTRAS accuracy");
    let mut table = Table::new(&[
        "n",
        "ground terms",
        "width k",
        "exact ν(ψ)",
        "direct est",
        "counting est",
        "time (direct)",
    ]);
    let mut rng = StdRng::seed_from_u64(6);
    for n in [4usize, 6, 8, 12, 16] {
        let db = random_graph_db(n, 0.3, 0.6, &mut rng);
        let ud = with_uniform_error(db, 1, 8);
        let g = ground_existential(ud.observed(), &f, &HashMap::new(), 1_000_000).unwrap();
        let exact = if n <= 8 {
            format!(
                "{:.5}",
                existential_probability_exact(&ud, &f).unwrap().to_f64()
            )
        } else {
            "—".to_string()
        };
        let (direct, secs) = qrel_bench::timed(|| {
            existential_probability_fptras(&ud, &f, 0.05, 0.05, Route::Direct, &mut rng).unwrap()
        });
        let counting = if n <= 8 {
            format!(
                "{:.5}",
                existential_probability_fptras(&ud, &f, 0.05, 0.05, Route::ViaCounting, &mut rng)
                    .unwrap()
            )
        } else {
            "—".to_string()
        };
        table.row(&[
            n.to_string(),
            g.dnf.num_terms().to_string(),
            g.width().to_string(),
            exact,
            format!("{direct:.5}"),
            counting,
            fmt_secs(secs),
        ]);
    }
    table.print();

    println!("\npart 2: k-ary reliability with per-tuple budget split (Cor 5.5)");
    let unary = parse_formula("exists y. E(x,y) & S(y)").unwrap();
    let free = vec!["x".to_string()];
    let mut table2 = Table::new(&["n", "tuples", "exact R_ψ", "approx R̂_ψ", "|err|", "time"]);
    for n in [3usize, 4] {
        let db = random_graph_db(n, 0.4, 0.6, &mut rng);
        let ud = with_uniform_error(db, 1, 10);
        let exact = exact_reliability(&ud, &FoQuery::with_free_order(unary.clone(), free.clone()))
            .unwrap()
            .reliability
            .to_f64();
        let (rep, secs) = qrel_bench::timed(|| {
            approximate_reliability(&ud, &unary, &free, 0.15, 0.15, Route::Direct, &mut rng)
                .unwrap()
        });
        table2.row(&[
            n.to_string(),
            rep.tuples.to_string(),
            format!("{exact:.5}"),
            format!("{:.5}", rep.reliability),
            format!("{:.5}", (rep.reliability - exact).abs()),
            fmt_secs(secs),
        ]);
    }
    table2.print();
    println!("\npaper: grounding is kDNF with constant k, size poly(n); |err| ≤ ε = 0.15.");
}
