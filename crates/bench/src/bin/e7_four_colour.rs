//! E7 — Lemma 5.9: absolute reliability is co-NP-hard.
//!
//! A graph gallery (colourable and non-colourable families) run through
//! the `AR_ψ` reduction and the independent backtracking colourer: the
//! verdicts must match on every instance, and the world-search cost
//! grows with 4^|V|.

use qrel_bench::{fmt_secs, Table};
use qrel_core::absolute::is_absolutely_reliable;
use qrel_core::reductions::four_col::{lemma_query, reduce, Graph};
use qrel_eval::FoQuery;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("E7 — 4-colourability via co-AR_ψ (Lemma 5.9)\n");
    println!("ψ = {}\n", lemma_query());

    let mut gallery: Vec<(String, Graph)> = vec![
        ("K4".into(), Graph::complete(4)),
        ("K5".into(), Graph::complete(5)),
        ("C5".into(), Graph::cycle(5)),
        ("C7".into(), Graph::cycle(7)),
        ("K5 + pendant".into(), {
            let mut e = Graph::complete(5).edges().to_vec();
            e.push((4, 5));
            Graph::new(6, e)
        }),
    ];
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..4 {
        let n = 6 + i;
        let mut edges = Vec::new();
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                if rng.gen_bool(0.55) {
                    edges.push((a, b));
                }
            }
        }
        if edges.is_empty() {
            edges.push((0, 1));
        }
        gallery.push((format!("G({n}, 0.55) #{i}"), Graph::new(n, edges)));
    }

    let q = FoQuery::new(lemma_query());
    let mut table = Table::new(&[
        "graph",
        "|V|",
        "|E|",
        "reduction: 4-colourable",
        "oracle",
        "match",
        "time (AR search)",
    ]);
    for (name, g) in &gallery {
        let ud = reduce(g);
        let (via_ar, secs) = qrel_bench::timed(|| !is_absolutely_reliable(&ud, &q).unwrap());
        let oracle = g.is_k_colourable(4);
        table.row(&[
            name.clone(),
            g.num_vertices().to_string(),
            g.edges().len().to_string(),
            via_ar.to_string(),
            oracle.to_string(),
            if via_ar == oracle {
                "✓".into()
            } else {
                "✗".into()
            },
            fmt_secs(secs),
        ]);
        assert_eq!(via_ar, oracle, "reduction disagreed on {name}");
    }
    table.print();
    println!(
        "\npaper: 𝔇 ∉ AR_ψ ⟺ G is 4-colourable; the AR search walks up to \
         4^|V| colour-worlds (co-NP-hardness in action)."
    );
}
