//! E18 — safe-plan compilation: exact answers in polynomial time.
//!
//! The Dalvi–Suciu safe-plan rung computes the *exact* query probability
//! from an extensional plan over fact probabilities — no worlds, no
//! lineage. Part 1 cross-checks the plan against the Gray-code world
//! enumerator where enumeration is feasible, then races it against the
//! FPTRAS sampler where it is not: the plan must stay exact and beat the
//! sampler by well over an order of magnitude. Part 2 drives the serve
//! layer with a distinct-seed request train and scrapes `/metrics`: one
//! plan-cache miss (the single compile), everything else hits.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

use qrel_bench::{fmt_secs, random_graph_db, timed, with_uniform_error, Table};
use qrel_core::exact::exact_probability;
use qrel_core::existential::{existential_probability_fptras, Route};
use qrel_eval::FoQuery;
use qrel_logic::parser::parse_formula;
use qrel_serve::{Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const REQUESTS: usize = 40;

fn http_solve(addr: SocketAddr, seed: u64) -> (u16, f64) {
    let body = format!(
        "{{\"dataset\":\"uncertain16\",\"query\":\"exists x. S(x)\",\
         \"method\":\"auto\",\"seed\":{seed}}}"
    );
    let raw = format!(
        "POST /v1/solve HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let started = std::time::Instant::now();
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(raw.as_bytes()).unwrap();
    let mut text = String::new();
    conn.read_to_string(&mut text).unwrap();
    let elapsed = started.elapsed().as_secs_f64();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, elapsed)
}

fn scrape_counter(addr: SocketAddr, name: &str) -> u64 {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n")
        .unwrap();
    let mut text = String::new();
    conn.read_to_string(&mut text).unwrap();
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn main() {
    println!("E18 — safe-plan compilation (Dalvi–Suciu dichotomy, sjf fragment)\n");
    let f = parse_formula("exists x y. (S(x) & E(x, y))").unwrap();
    let plan = qrel_plan::compile(&f).unwrap();
    println!(
        "ψ = {f}   (hierarchical: safe plan, {} nodes)\n",
        plan.node_count()
    );

    println!("part 1: plan vs world enumeration vs FPTRAS sampling");
    let mut table = Table::new(&[
        "n",
        "facts",
        "plan ν(ψ)",
        "plan time",
        "enum time",
        "fptras time",
        "speedup",
    ]);
    let mut rng = StdRng::seed_from_u64(18);
    let mut worst_speedup = f64::INFINITY;
    for n in [4usize, 6, 16, 32] {
        let db = random_graph_db(n, 0.3, 0.6, &mut rng);
        let ud = with_uniform_error(db, 1, 8);
        let facts = ud.uncertain_facts().len();
        // Average the plan over a few evaluations — single-shot
        // microsecond timings are dominated by allocator noise.
        let (via_plan, t_plan) = {
            let (p, _) = timed(|| qrel_plan::sentence_probability(&ud, &plan).unwrap());
            let reps = 5;
            let (_, t) = timed(|| {
                for _ in 0..reps {
                    qrel_plan::sentence_probability(&ud, &plan).unwrap();
                }
            });
            (p, t / reps as f64)
        };
        // World enumeration is 2^facts — only run it where that fits.
        let t_enum = if facts <= 20 {
            let (via_worlds, t) =
                timed(|| exact_probability(&ud, &FoQuery::new(f.clone())).unwrap());
            assert_eq!(
                via_plan, via_worlds,
                "plan must be bit-equal to the enumerator"
            );
            fmt_secs(t)
        } else {
            "—".to_string()
        };
        let (est, t_fptras) = timed(|| {
            existential_probability_fptras(&ud, &f, 0.1, 0.1, Route::Direct, &mut rng).unwrap()
        });
        assert!(
            (est - via_plan.to_f64()).abs() <= 0.1 + 1e-9,
            "sampler left its envelope"
        );
        // The ≥50x gate applies where sampling is the only alternative
        // (beyond the enumerator's 2^20-world reach); the small rows
        // exist for the bit-equality cross-check.
        if facts > 20 {
            worst_speedup = worst_speedup.min(t_fptras / t_plan);
        }
        table.row(&[
            n.to_string(),
            facts.to_string(),
            format!("{:.6}", via_plan.to_f64()),
            fmt_secs(t_plan),
            t_enum,
            fmt_secs(t_fptras),
            format!("{:.0}x", t_fptras / t_plan),
        ]);
    }
    table.print();
    assert!(
        worst_speedup >= 50.0,
        "plan rung must beat sampling by ≥50x (worst {worst_speedup:.0}x)"
    );

    println!("\npart 2: serve-layer plan cache under a distinct-seed train");
    let dataset = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../data/uncertain16.json"
    ));
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        preload: vec![dataset],
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());

    let mut latencies = Vec::with_capacity(REQUESTS);
    for seed in 0..REQUESTS as u64 {
        // Distinct seeds defeat the result memo (seed is part of its
        // key) so every request reaches the plan cache.
        let (status, latency) = http_solve(addr, seed);
        assert_eq!(status, 200, "solve failed");
        latencies.push(latency);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let plan_hits = scrape_counter(addr, "qrel_plan_cache_hits_total");
    let plan_misses = scrape_counter(addr, "qrel_plan_cache_misses_total");
    let plan_solves = scrape_counter(addr, "qrel_solve_total{method=\"plan\"}");
    handle.shutdown();
    join.join().unwrap();

    println!(
        "  {} solves over 2^16-world dataset: plan cache {} hits / {} misses \
         ({:.1}% hit rate), qrel_solve_total{{method=\"plan\"}} = {}",
        REQUESTS,
        plan_hits,
        plan_misses,
        100.0 * plan_hits as f64 / (plan_hits + plan_misses) as f64,
        plan_solves,
    );
    println!(
        "  p50 end-to-end {} / p99 {}",
        fmt_secs(latencies[REQUESTS / 2]),
        fmt_secs(latencies[REQUESTS - 1]),
    );
    assert_eq!(
        plan_misses, 1,
        "exactly one compile for one (query, schema)"
    );
    assert_eq!(plan_hits as usize, REQUESTS - 1);

    println!(
        "\nexpected shape: the plan evaluates in microseconds and is bit-equal \
         to the enumerator where 2^facts fits; the sampler pays thousands of \
         world draws for an ε-estimate, so past the enumerator's reach the \
         exact plan wins by 50x or more, widening with n. On the serve path \
         one compile serves the whole train — the plan cache is keyed on \
         (query, schema), so distinct seeds and even fact mutations never \
         re-compile."
    );
}
