//! E4 — Theorem 5.2: the Karp–Luby #DNF FPTRAS.
//!
//! Random kDNFs across sizes: relative error vs the exact count, at the
//! (ε, δ)-dictated sample budget; then the adversarial low-probability
//! family where naive Monte-Carlo collapses but Karp–Luby stays accurate.

use qrel_arith::BigRational;
use qrel_bench::{fmt_secs, random_kdnf, Table};
use qrel_count::exact_dnf::dnf_count_models;
use qrel_count::naive_mc::naive_mc_probability_with_samples;
use qrel_count::{dnf_probability_shannon, KarpLuby};
use qrel_logic::prop::{Dnf, Lit};
use qrel_par::DEFAULT_SHARDS;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E4 — Karp–Luby #DNF FPTRAS (Thm 5.2)\n");
    let (eps, delta) = (0.05, 0.02);
    println!("part 1: random kDNF, ε = {eps}, δ = {delta}");
    let mut table = Table::new(&[
        "vars",
        "terms",
        "k",
        "exact #models",
        "KL estimate",
        "rel err",
        "samples",
        "time",
    ]);
    let mut rng = StdRng::seed_from_u64(4);
    for (vars, terms, k) in [
        (20usize, 8usize, 2usize),
        (30, 12, 3),
        (40, 16, 3),
        (60, 20, 3),
    ] {
        let d = random_kdnf(vars, terms, k, &mut rng);
        let exact = dnf_count_models(&d, vars).to_f64();
        let kl = KarpLuby::for_counting(&d, vars);
        let (report, secs) = qrel_bench::timed(|| kl.run(eps, delta, &mut rng));
        let estimate = report.estimate * (vars as f64).exp2();
        let rel = (estimate - exact).abs() / exact;
        table.row(&[
            vars.to_string(),
            terms.to_string(),
            k.to_string(),
            format!("{exact:.3e}"),
            format!("{estimate:.3e}"),
            format!("{:.4}", rel),
            report.samples.to_string(),
            fmt_secs(secs),
        ]);
    }
    table.print();

    println!("\npart 2: adversarially small Pr[φ] — KL vs naive MC at equal budget");
    let mut table2 = Table::new(&[
        "Pr[φ] (exact)",
        "KL rel err",
        "naive MC estimate",
        "naive rel err",
        "samples (each)",
    ]);
    for width in [6usize, 9, 12, 15] {
        // Two disjoint all-positive terms at p = 1/4 ⇒ Pr ≈ 2·4^-width.
        let d = Dnf::from_terms([
            (0..width as u32).map(Lit::pos).collect::<Vec<_>>(),
            (width as u32..2 * width as u32)
                .map(Lit::pos)
                .collect::<Vec<_>>(),
        ]);
        let probs = vec![BigRational::from_ratio(1, 4); 2 * width];
        let exact = dnf_probability_shannon(&d, &probs).to_f64();
        let kl = KarpLuby::new(&d, &probs);
        let report = kl.run(eps, delta, &mut rng);
        let kl_rel = (report.estimate - exact).abs() / exact;
        let naive = naive_mc_probability_with_samples(&d, &probs, report.samples, &mut rng);
        let naive_rel = (naive - exact).abs() / exact;
        table2.row(&[
            format!("{exact:.3e}"),
            format!("{kl_rel:.4}"),
            format!("{naive:.3e}"),
            format!("{naive_rel:.3}"),
            report.samples.to_string(),
        ]);
    }
    table2.print();
    println!(
        "\npaper: KL needs O(m·ε⁻²·ln 1/δ) samples regardless of Pr[φ]; naive MC \
         needs ~1/Pr[φ] — the rows above show exactly that divergence."
    );

    println!("\npart 3: parallel speedup at a fixed sample budget (sharded engine)");
    let d = random_kdnf(60, 20, 3, &mut rng);
    let kl = KarpLuby::for_counting(&d, 60);
    let samples = 2_000_000u64;
    let mut table3 = Table::new(&["threads", "estimate", "time", "speedup", "bit-identical"]);
    let mut serial: Option<(f64, f64)> = None;
    for threads in [1usize, 2, 4, 8] {
        let (report, secs) =
            qrel_bench::timed(|| kl.run_sharded(samples, 0xE4, DEFAULT_SHARDS, threads));
        let (base_est, base_secs) = *serial.get_or_insert((report.estimate, secs));
        table3.row(&[
            threads.to_string(),
            format!("{:.6e}", report.estimate),
            fmt_secs(secs),
            format!("{:.2}x", base_secs / secs),
            (report.estimate.to_bits() == base_est.to_bits()).to_string(),
        ]);
    }
    table3.print();
    println!(
        "\nthe shard count is fixed at {DEFAULT_SHARDS} regardless of threads, with one \
         seed-split RNG per shard and exact integer hit merging — every row above is \
         required to be bit-identical to threads=1 ({} samples each).",
        samples
    );
}
