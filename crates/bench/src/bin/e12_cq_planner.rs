//! E12 — substrate ablation: the conjunctive-query planner.
//!
//! Proposition 3.2 places conjunctive queries at the hardness frontier,
//! and the approximation algorithms evaluate CQs on thousands of sampled
//! worlds — so CQ evaluation speed directly scales every Monte-Carlo
//! estimator. This experiment compares the σ/π/⋈ planner (hash joins,
//! greedy ordering) against the naive nested-quantifier FO evaluator and
//! checks they agree tuple-for-tuple.

use qrel_bench::{fmt_secs, random_graph_db, Table};
use qrel_eval::{CqQuery, FoQuery, Query};
use qrel_logic::parser::parse_formula;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E12 — CQ planner vs naive FO evaluation\n");
    let queries: [(&str, &str, &[&str]); 3] = [
        ("2-hop", "exists z. E(x,z) & E(z,y)", &["x", "y"]),
        (
            "filtered 2-hop",
            "exists z. E(x,z) & E(z,y) & S(z)",
            &["x", "y"],
        ),
        ("triangle", "exists y z. E(x,y) & E(y,z) & E(z,x)", &["x"]),
    ];
    for (label, src, free) in queries {
        println!("query: {label} = {src}");
        let mut table = Table::new(&["n", "answers", "planner", "naive FO", "speedup", "agree"]);
        for n in [10usize, 20, 40, 80] {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let db = random_graph_db(n, 0.08, 0.4, &mut rng);
            let planned = CqQuery::parse(src, free).unwrap();
            let naive = FoQuery::with_free_order(
                parse_formula(src).unwrap(),
                free.iter().map(|s| s.to_string()).collect(),
            );
            let (fast_ans, t_fast) = qrel_bench::timed(|| planned.answers(&db).unwrap());
            let (naive_ans, t_naive) = qrel_bench::timed(|| naive.answers(&db).unwrap());
            table.row(&[
                n.to_string(),
                fast_ans.len().to_string(),
                fmt_secs(t_fast),
                fmt_secs(t_naive),
                format!("{:.1}x", t_naive / t_fast.max(1e-9)),
                if fast_ans == naive_ans {
                    "✓".into()
                } else {
                    "✗".into()
                },
            ]);
            assert_eq!(fast_ans, naive_ans, "planner diverged on {label} n={n}");
        }
        table.print();
        println!();
    }
    println!(
        "expected shape: identical answers everywhere; the planner's advantage \
         grows with n (hash joins touch matching tuples, nested loops touch n^k)."
    );
}
