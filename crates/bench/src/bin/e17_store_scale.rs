//! E17 — store ingest throughput and cold-open latency at scale.
//!
//! Infrastructure experiment (no paper claim): measures the `qrel-store`
//! persistence layer on a synthetic relation `R/2` over a universe of
//! `√n` elements — `n` uncertain facts at μ = 1/2, committed in 100k-row
//! batches — up to one million facts. Reported per ladder size:
//!
//! * ingest throughput (facts/second, commit path: validate → merge →
//!   hash-update → segment encode → fsync → manifest publish);
//! * on-disk bytes after ingest and after compaction;
//! * cold-open latency (manifest read + referenced-segment check);
//! * cold *load* latency (reconstruct the `UnreliableDatabase` from the
//!   columnar segments — the serve boot path);
//! * incremental-hash verification time (`verify`: page CRCs plus a
//!   from-scratch hash recomputation over the merged state).
//!
//! Expected shape: throughput is flat across the ladder (the commit path
//! is linear per row with BTreeMap-merge log factors), so facts/sec at
//! 1M is within ~2x of facts/sec at 10k; cold open is O(manifest) and
//! stays in single-digit milliseconds regardless of n; cold load and
//! verify are linear in n.

use qrel_bench::{fmt_secs, timed, Table};
use qrel_store::{Mutation, Store};
use std::path::PathBuf;

const BATCH: usize = 100_000;

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qrel-e17-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dir_bytes(dir: &std::path::Path) -> u64 {
    fn walk(d: &std::path::Path) -> u64 {
        std::fs::read_dir(d)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .map(|e| {
                        let p = e.path();
                        if p.is_dir() {
                            walk(&p)
                        } else {
                            e.metadata().map(|m| m.len()).unwrap_or(0)
                        }
                    })
                    .sum()
            })
            .unwrap_or(0)
    }
    walk(dir)
}

fn main() {
    println!("E17 — store ingest throughput and cold-open latency (infrastructure experiment)\n");
    println!("relation R/2 over √n elements, n uncertain facts at μ=1/2, {BATCH}-row batches\n");

    let mut table = Table::new(&[
        "facts",
        "ingest",
        "facts/s",
        "MB",
        "MB compact",
        "cold open",
        "cold load",
        "verify",
    ]);

    for &n in &[10_000usize, 100_000, 1_000_000] {
        let side = (n as f64).sqrt().ceil() as u32;
        let dir = tmp(&format!("{n}"));
        let mut store = Store::init(&dir).expect("init");
        store
            .create_dataset(
                "scale",
                (0..side).map(|i| format!("e{i}")).collect(),
                vec![("R".to_string(), 2)],
                "full",
            )
            .expect("create");

        // Ingest in fixed batches, row-major over the √n × √n grid.
        let (_, ingest_s) = timed(|| {
            let mut batch: Vec<Mutation> = Vec::with_capacity(BATCH);
            let mut emitted = 0usize;
            'outer: for a in 0..side {
                for b in 0..side {
                    batch.push(Mutation::set("R", vec![a, b], true, "1/2"));
                    emitted += 1;
                    if batch.len() == BATCH {
                        store.commit("scale", &batch).expect("commit");
                        batch.clear();
                    }
                    if emitted == n {
                        break 'outer;
                    }
                }
            }
            if !batch.is_empty() {
                store.commit("scale", &batch).expect("commit");
            }
        });
        let bytes = dir_bytes(&dir);
        store.compact("scale").expect("compact");
        let bytes_compact = dir_bytes(&dir);
        drop(store);

        let (reopened, open_s) = timed(|| Store::open(&dir).expect("open"));
        let (ud, load_s) = timed(|| {
            reopened
                .load("scale")
                .expect("load")
                .build()
                .expect("build")
        });
        assert_eq!(ud.uncertain_facts().len(), n, "rebuilt model lost facts");
        let (_, verify_s) = timed(|| reopened.verify("scale").expect("verify"));

        table.row(&[
            format!("{n}"),
            fmt_secs(ingest_s),
            format!("{:.0}", n as f64 / ingest_s),
            format!("{:.1}", bytes as f64 / 1e6),
            format!("{:.1}", bytes_compact as f64 / 1e6),
            fmt_secs(open_s),
            fmt_secs(load_s),
            fmt_secs(verify_s),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }
    table.print();
}
