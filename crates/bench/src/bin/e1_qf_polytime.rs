//! E1 — Proposition 3.1: quantifier-free reliability is polynomial time.
//!
//! Sweeps the database size for three quantifier-free queries of
//! different arities and reports exact runtimes, the per-tuple atom
//! count `n(ψ)` (which must not grow with `n`), and the empirical
//! log-log slope (which must track the arity, not blow up).

use qrel_bench::{fmt_secs, loglog_slope, random_graph_db, with_uniform_error, Table};
use qrel_core::quantifier_free::qf_reliability;
use qrel_logic::parser::parse_formula;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E1 — exact QF reliability scaling (Prop 3.1)\n");
    let queries: [(&str, &str, &[&str]); 3] = [
        ("1-ary, 2 atoms", "S(x) & !E(x,x)", &["x"]),
        ("2-ary, 2 atoms", "E(x,y) & x != y", &["x", "y"]),
        ("2-ary, 3 atoms", "E(x,y) & S(x) & !S(y)", &["x", "y"]),
    ];
    let sizes = [8usize, 16, 32, 64, 128];

    for (label, src, free) in queries {
        println!("query ψ = {src}   ({label})");
        let f = parse_formula(src).unwrap();
        let free: Vec<String> = free.iter().map(|s| s.to_string()).collect();
        let mut table = Table::new(&["n", "H_ψ (approx)", "R_ψ (approx)", "n(ψ)", "time"]);
        let mut measurements = Vec::new();
        for &n in &sizes {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let db = random_graph_db(n, 0.2, 0.5, &mut rng);
            let ud = with_uniform_error(db, 1, 10);
            let (rep, secs) = qrel_bench::timed(|| qf_reliability(&ud, &f, &free).unwrap());
            measurements.push((n as f64, secs));
            table.row(&[
                n.to_string(),
                format!("{:.4}", rep.expected_error.to_f64()),
                format!("{:.6}", rep.reliability.to_f64()),
                rep.max_atoms_per_tuple.to_string(),
                fmt_secs(secs),
            ]);
        }
        table.print();
        let (x0, y0) = measurements[1];
        let (x1, y1) = *measurements.last().unwrap();
        println!(
            "log-log slope (n={x0}→{x1}): {:.2}  (paper: polynomial, ≈ arity + atom work)\n",
            loglog_slope(x0, y0, x1, y1)
        );
    }
}
