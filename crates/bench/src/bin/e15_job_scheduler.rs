//! E15 — job-scheduler isolation of interactive latency.
//!
//! Infrastructure experiment (no paper claim): measures what the
//! `qrel-sched` rearchitecture of the serving layer buys. The workload
//! mixes short interactive solves (loose-accuracy FPTRAS, ~ms) with
//! long batch solves (tight-accuracy naive Monte Carlo, ~hundreds of
//! ms) and compares three arms:
//!
//! 1. `short-only` — the baseline short-request latency distribution;
//! 2. `mixed-sync` — longs arrive through the synchronous
//!    `POST /v1/solve` facade at normal priority, so they occupy the
//!    scheduler workers and shorts queue behind them;
//! 3. `mixed-jobs` — the same longs go through `POST /v1/jobs` at
//!    `low` priority, where the scheduler's reserved worker (which
//!    never picks up the `low` band) keeps a lane open for shorts.
//!
//! The claim under test: with the job API + priority bands, short p99
//! stays within 2x of the short-only baseline even under long-job
//! pressure, while the naive mixed-sync arm degrades to roughly the
//! long-job service time.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qrel_bench::Table;
use qrel_serve::{Server, ServerConfig};

const SHORT_CLIENTS: usize = 2;
const SHORTS_PER_CLIENT: usize = 30;
const LONG_CLIENTS: usize = 2;

fn http(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &str,
) -> (u16, String) {
    let mut raw = format!("{method} {path} HTTP/1.1\r\nHost: bench\r\n");
    for (k, v) in headers {
        raw.push_str(&format!("{k}: {v}\r\n"));
    }
    raw.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len()));
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(raw.as_bytes()).unwrap();
    let mut text = String::new();
    conn.read_to_string(&mut text).unwrap();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn short_body(seed: u64) -> String {
    format!(
        "{{\"dataset\":\"uncertain16\",\"query\":\"exists x. S(x)\",\
         \"method\":\"fptras\",\"eps\":0.2,\"delta\":0.1,\"seed\":{seed}}}"
    )
}

fn long_body(seed: u64, priority: Option<&str>) -> String {
    let prio = priority
        .map(|p| format!(",\"priority\":\"{p}\""))
        .unwrap_or_default();
    format!(
        "{{\"dataset\":\"uncertain16\",\"query\":\"exists x. S(x)\",\
         \"method\":\"mc\",\"eps\":0.003,\"delta\":0.05,\"seed\":{seed},\
         \"tenant\":\"batch\"{prio}}}"
    )
}

fn json_u64(body: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let at = body.find(&needle)? + needle.len();
    let digits: String = body[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[derive(Clone, Copy, PartialEq)]
enum Arm {
    ShortOnly,
    MixedSync,
    MixedJobs,
}

impl Arm {
    fn name(self) -> &'static str {
        match self {
            Arm::ShortOnly => "short-only",
            Arm::MixedSync => "mixed-sync",
            Arm::MixedJobs => "mixed-jobs",
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Run one arm; returns (sorted short latencies, longs run: completed
/// sync solves in `mixed-sync`, accepted job submissions in
/// `mixed-jobs`).
fn run_arm(arm: Arm) -> (Vec<f64>, u64) {
    let dataset = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../data/uncertain16.json"
    ));
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 6,
        sched_workers: 2,
        reserved_workers: 1,
        queue_cap: 256,
        cache_bytes: 0, // every solve must be live or the arms converge
        preload: vec![dataset],
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());

    let stop = Arc::new(AtomicBool::new(false));
    let longs_done = Arc::new(AtomicU64::new(0));
    let long_threads: Vec<_> = if arm == Arm::ShortOnly {
        Vec::new()
    } else {
        (0..LONG_CLIENTS)
            .map(|c| {
                let stop = Arc::clone(&stop);
                let done = Arc::clone(&longs_done);
                std::thread::spawn(move || {
                    let mut seed = 10_000 + 1_000 * c as u64;
                    while !stop.load(Ordering::Relaxed) {
                        seed += 1;
                        match arm {
                            Arm::MixedSync => {
                                let (status, _) =
                                    http(addr, "POST", "/v1/solve", &[], &long_body(seed, None));
                                if status == 200 {
                                    done.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Arm::MixedJobs => {
                                let (status, receipt) = http(
                                    addr,
                                    "POST",
                                    "/v1/jobs",
                                    &[],
                                    &long_body(seed, Some("low")),
                                );
                                if status != 202 {
                                    continue;
                                }
                                done.fetch_add(1, Ordering::Relaxed);
                                let id = json_u64(&receipt, "job_id").unwrap();
                                let tenant = [("X-Qrel-Tenant", "batch")];
                                loop {
                                    let (_, snap) =
                                        http(addr, "GET", &format!("/v1/jobs/{id}"), &tenant, "");
                                    if snap.contains("\"state\":\"done\"") {
                                        break;
                                    }
                                    if snap.contains("\"state\":\"failed\"")
                                        || snap.contains("\"state\":\"cancelled\"")
                                        || stop.load(Ordering::Relaxed)
                                    {
                                        break;
                                    }
                                    std::thread::sleep(Duration::from_millis(10));
                                }
                            }
                            Arm::ShortOnly => unreachable!(),
                        }
                    }
                })
            })
            .collect()
    };
    if arm != Arm::ShortOnly {
        // Let the first longs reach the scheduler before shorts arrive.
        std::thread::sleep(Duration::from_millis(50));
    }

    let shorts: Vec<_> = (0..SHORT_CLIENTS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(SHORTS_PER_CLIENT);
                for i in 0..SHORTS_PER_CLIENT {
                    let seed = (c * SHORTS_PER_CLIENT + i) as u64;
                    let started = Instant::now();
                    let (status, body) = http(addr, "POST", "/v1/solve", &[], &short_body(seed));
                    assert_eq!(status, 200, "short solve failed: {body}");
                    latencies.push(started.elapsed().as_secs_f64());
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = shorts.into_iter().flat_map(|t| t.join().unwrap()).collect();
    stop.store(true, Ordering::Relaxed);
    for t in long_threads {
        t.join().unwrap();
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());

    handle.shutdown();
    join.join().unwrap();
    (latencies, longs_done.load(Ordering::Relaxed))
}

fn main() {
    println!(
        "E15 — job-scheduler isolation of short-request latency (infrastructure experiment)\n"
    );
    println!(
        "workload: {SHORT_CLIENTS} client threads x {SHORTS_PER_CLIENT} short solves \
         (fptras eps=0.2) against {LONG_CLIENTS} background long-solve clients \
         (mc eps=0.003, ~400ms each); server: sched_workers=2, reserved_workers=1, cache off\n"
    );
    let mut table = Table::new(&["arm", "shorts", "p50 ms", "p99 ms", "longs run"]);
    let mut p99 = [0.0f64; 3];
    for (i, arm) in [Arm::ShortOnly, Arm::MixedSync, Arm::MixedJobs]
        .into_iter()
        .enumerate()
    {
        let (lat, longs) = run_arm(arm);
        p99[i] = percentile(&lat, 0.99);
        table.row(&[
            arm.name().to_string(),
            lat.len().to_string(),
            format!("{:.2}", percentile(&lat, 0.50) * 1e3),
            format!("{:.2}", p99[i] * 1e3),
            longs.to_string(),
        ]);
    }
    table.print();

    // The claim under test: low-priority jobs + a reserved worker keep
    // short p99 within 2x of baseline (plus a small absolute floor so a
    // sub-millisecond baseline doesn't make the ratio noise-bound).
    let bound = (2.0 * p99[0]).max(p99[0] + 0.050);
    assert!(
        p99[2] <= bound,
        "mixed-jobs short p99 {:.2}ms exceeds bound {:.2}ms (baseline {:.2}ms)",
        p99[2] * 1e3,
        bound * 1e3,
        p99[0] * 1e3
    );
    println!(
        "\nexpected shape: mixed-sync p99 climbs toward the long-job service time \
         (longs at normal priority occupy every scheduler worker); mixed-jobs p99 \
         stays within 2x of short-only because the reserved worker never picks up \
         the low band. PASS: mixed-jobs p99 within bound."
    );
}
