//! E16 — availability under a seeded fault storm, before vs after
//! self-healing.
//!
//! Infrastructure experiment (no paper claim): arms one deterministic
//! `FaultPlan` — rung panics, rung stalls, worker panics, poisoned
//! cache replies — and drives the same sequential exact workload
//! through `qrel-serve` twice: once with self-healing disabled (no
//! rung retries, no breakers, no watchdog) and once with the defaults.
//! The storm schedule is a pure function of `(seed, point, hit index)`,
//! so both configurations face the same adversary.
//!
//! Reported per configuration: availability (fraction of `200`s), the
//! error taxonomy (`500` = surfaced rung/worker panic, `422` =
//! degradation the budget could not hide), p50/p99 latency, and the
//! self-healing counters scraped from `/metrics` (watchdog cancels,
//! poisoned cache replies detected). The headline is availability:
//! with retries on, a panicked rung usually heals on the second
//! attempt, bit-identical to a first-try answer, so requests that were
//! `500`s/`422`s become `200`s without touching the numeric path.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Instant;

use qrel_bench::Table;
use qrel_faults::{points, FaultPlan};
use qrel_serve::{Server, ServerConfig};

const REQUESTS: usize = 200;
const SEED_POOL: u64 = 10;
const TIMEOUT_MS: u64 = 2_000;

fn storm() -> FaultPlan {
    FaultPlan::new(16)
        .with_rule(&points::rung_panic("exact"), 0.25, 0, 0)
        .with_rule(&points::rung_stall("exact"), 0.10, 100, 0)
        .with_rule(points::SERVE_WORKER_PANIC, 0.05, 0, 0)
        .with_rule(points::CACHE_REPLY_POISON, 0.50, 0, 0)
}

fn http_solve(addr: SocketAddr, seed: u64) -> (u16, f64) {
    let body = format!(
        "{{\"dataset\":\"uncertain16\",\"query\":\"exists x. S(x)\",\
         \"method\":\"exact\",\"seed\":{seed},\"timeout_ms\":{TIMEOUT_MS}}}"
    );
    let raw = format!(
        "POST /v1/solve HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let started = Instant::now();
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(raw.as_bytes()).unwrap();
    let mut text = String::new();
    conn.read_to_string(&mut text).unwrap();
    let elapsed = started.elapsed().as_secs_f64();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, elapsed)
}

fn scrape_counter(addr: SocketAddr, name: &str) -> u64 {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n")
        .unwrap();
    let mut text = String::new();
    conn.read_to_string(&mut text).unwrap();
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn run_config(self_heal: bool) -> Vec<String> {
    let dataset = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../data/uncertain16.json"
    ));
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        self_heal,
        preload: vec![dataset],
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        let _ = server.run();
    });

    // Same storm for both configurations: decisions are a pure function
    // of (seed, point, hit index), not of wall clock or thread timing.
    let guard = storm().arm();
    let mut latencies = Vec::with_capacity(REQUESTS);
    let mut ok = 0u64;
    let mut e422 = 0u64;
    let mut e500 = 0u64;
    let mut other = 0u64;
    for i in 0..REQUESTS {
        let (status, latency) = http_solve(addr, i as u64 % SEED_POOL);
        latencies.push(latency);
        match status {
            200 => ok += 1,
            422 => e422 += 1,
            500 => e500 += 1,
            _ => other += 1,
        }
    }
    drop(guard);
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let watchdog = scrape_counter(addr, "qrel_watchdog_cancels_total");
    let poison = scrape_counter(addr, "qrel_cache_poison_detected_total");
    handle.shutdown();
    let _ = TcpStream::connect(addr);
    let _ = join.join();

    vec![
        if self_heal { "on" } else { "off" }.to_string(),
        format!("{:.1}%", 100.0 * ok as f64 / REQUESTS as f64),
        e422.to_string(),
        e500.to_string(),
        other.to_string(),
        format!("{:.2}", percentile(&latencies, 0.50) * 1e3),
        format!("{:.2}", percentile(&latencies, 0.99) * 1e3),
        watchdog.to_string(),
        poison.to_string(),
    ]
}

fn main() {
    println!("E16 — availability under a seeded fault storm (infrastructure experiment)\n");
    println!(
        "storm (seed 16): rung panic p=0.25, rung stall p=0.10/100ms, \
         worker panic p=0.05, cache poison p=0.50"
    );
    println!(
        "workload: {REQUESTS} sequential exact solves on uncertain16, \
         {SEED_POOL} distinct seeds, timeout {TIMEOUT_MS}ms\n"
    );
    let mut table = Table::new(&[
        "self-heal",
        "availability",
        "422",
        "500",
        "other",
        "p50 ms",
        "p99 ms",
        "watchdog",
        "poison-det",
    ]);
    for self_heal in [false, true] {
        table.row(&run_config(self_heal));
    }
    table.print();
    println!("\navailability = 200s / {REQUESTS}; 500 = surfaced panic, 422 = tagged degradation;");
    println!("watchdog / poison-det scraped from /metrics after the storm.");
}
