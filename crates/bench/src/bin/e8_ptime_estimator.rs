//! E8 — Theorem 5.12: the padding estimator for all PTIME queries.
//!
//! Verifies the exact identity `ν(ψ′) = ξ² + (ξ−ξ²)·ν(ψ)` with
//! rationals, sweeps ξ and (ε, δ) to compare the Lemma 5.11 sample
//! budget with the estimator's measured error, and runs the estimator on
//! a Datalog (transitive closure) query — the query class that motivates
//! the theorem.

use qrel_arith::BigRational;
use qrel_bench::{random_graph_db, with_fixed_errors, Table};
use qrel_core::exact::exact_probability;
use qrel_core::ptime_estimator::{direct_probability, PaddingEstimator};
use qrel_count::bounds::hoeffding_samples;
use qrel_eval::{DatalogQuery, FnQuery, Query};
use qrel_par::DEFAULT_SHARDS;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("E8 — absolute-error MC for PTIME queries (Thm 5.12)\n");
    let mut rng = StdRng::seed_from_u64(8);

    // The Boolean Datalog query: node n−1 reachable from node 0.
    let reach = FnQuery::boolean(|db| {
        DatalogQuery::parse("T(y) :- E(0,y). T(z) :- T(y), E(y,z).", "T")
            .unwrap()
            .eval(db, &[5])
            .unwrap()
    });
    // Draw seeded instances until the adversary's flips actually matter
    // (0 < ν(ψ) < 1) — a degenerate instance would make every estimator
    // look perfect and the sweep uninformative.
    let (ud, exact) = loop {
        let db = random_graph_db(6, 0.35, 0.0, &mut rng);
        let ud = with_fixed_errors(db, 12, 1, 5, &mut rng);
        let exact = exact_probability(&ud, &reach).unwrap();
        if exact.to_f64() > 0.05 && exact.to_f64() < 0.95 {
            break (ud, exact);
        }
    };
    println!(
        "query: Datalog reachability 0→5; exact ν(ψ) = {} (≈ {:.5})\n",
        exact,
        exact.to_f64()
    );

    println!("part 1: the padded-expectation identity (exact rationals)");
    let mut t1 = Table::new(&["ξ", "ν(ψ')", "ξ²", "ξ", "identity holds"]);
    for (n, d) in [(1i64, 8u64), (1, 4), (3, 8)] {
        let xi = BigRational::from_ratio(n, d);
        let est = PaddingEstimator::new(xi.clone());
        let padded = est.padded_expectation(&exact);
        let xi2 = xi.mul_ref(&xi);
        let holds = padded == xi2.add_ref(&xi.sub_ref(&xi2).mul_ref(&exact))
            && padded >= xi2
            && padded <= xi;
        t1.row(&[
            xi.to_string(),
            format!("{:.6}", padded.to_f64()),
            format!("{:.6}", xi2.to_f64()),
            format!("{:.6}", xi.to_f64()),
            if holds { "✓".into() } else { "✗".into() },
        ]);
    }
    t1.print();

    println!("\npart 2: (ε, δ) sweep — measured |α − ν(ψ)| vs the budget");
    let mut t2 = Table::new(&[
        "ξ",
        "ε",
        "δ",
        "t (Lemma 5.11)",
        "estimate",
        "|err|",
        "within 2ε",
    ]);
    for (xn, xd) in [(1i64, 8u64), (1, 4), (3, 8)] {
        for (eps, delta) in [(0.1f64, 0.05f64), (0.05, 0.05)] {
            let est = PaddingEstimator::new(BigRational::from_ratio(xn, xd));
            let rep = est
                .estimate_probability(&ud, &reach, eps, delta, &mut rng)
                .unwrap();
            let err = (rep.estimate - exact.to_f64()).abs();
            t2.row(&[
                format!("{xn}/{xd}"),
                eps.to_string(),
                delta.to_string(),
                rep.samples.to_string(),
                format!("{:.5}", rep.estimate),
                format!("{err:.5}"),
                if err <= eps {
                    "✓".into()
                } else {
                    "✗ (prob < δ)".into()
                },
            ]);
        }
    }
    t2.print();

    println!("\npart 3: ablation — padding construction vs plain Hoeffding sampling");
    let mut t3 = Table::new(&["estimator", "samples", "estimate", "|err|"]);
    let (eps, delta) = (0.05, 0.05);
    let padding = PaddingEstimator::default_xi();
    let rep = padding
        .estimate_probability(&ud, &reach, eps, delta, &mut rng)
        .unwrap();
    t3.row(&[
        "Thm 5.12 padding (ξ=1/4)".into(),
        rep.samples.to_string(),
        format!("{:.5}", rep.estimate),
        format!("{:.5}", (rep.estimate - exact.to_f64()).abs()),
    ]);
    let dir = direct_probability(&ud, &reach, eps, delta, &mut rng).unwrap();
    t3.row(&[
        "direct Hoeffding".into(),
        dir.samples.to_string(),
        format!("{:.5}", dir.estimate),
        format!("{:.5}", (dir.estimate - exact.to_f64()).abs()),
    ]);
    t3.print();
    println!(
        "\npadding premium: {}x more samples than Hoeffding for the same (ε, δ) \
         — the construction exists to route through Lemma 5.11's relative \
         bound, not to be sample-optimal.",
        rep.samples / hoeffding_samples(eps, delta).max(1)
    );

    println!("\npart 4: parallel speedup at the fixed Lemma 5.11 budget (sharded engine)");
    let mut t4 = Table::new(&["threads", "estimate", "time", "speedup", "bit-identical"]);
    let mut serial: Option<(f64, f64)> = None;
    for threads in [1usize, 2, 4, 8] {
        let (rep, secs) = qrel_bench::timed(|| {
            padding
                .estimate_probability_sharded(
                    &ud,
                    &reach,
                    eps,
                    delta,
                    0xE8,
                    DEFAULT_SHARDS,
                    threads,
                )
                .unwrap()
        });
        let (base_est, base_secs) = *serial.get_or_insert((rep.estimate, secs));
        t4.row(&[
            threads.to_string(),
            format!("{:.5}", rep.estimate),
            qrel_bench::fmt_secs(secs),
            format!("{:.2}x", base_secs / secs),
            (rep.estimate.to_bits() == base_est.to_bits()).to_string(),
        ]);
    }
    t4.print();
    println!(
        "\nfixed shard count ({DEFAULT_SHARDS}) + per-shard seed-split RNGs: the estimate \
         is required to be bit-identical across the threads column."
    );
}
