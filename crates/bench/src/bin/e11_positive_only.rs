//! E11 — de Rougemont's positive-only model (Remark, Section 3).
//!
//! Re-runs the E2 reduction workload under `ErrorModel::PositiveOnly`
//! (the reduction assigns positive error probabilities to positive facts
//! only, so it applies verbatim), and checks that the full pipeline —
//! exact engine, QF fast path, grounding — behaves identically to the
//! unrestricted model on positive-only instances.

use qrel_arith::BigRational;
use qrel_bench::Table;
use qrel_core::exact::{exact_probability, exact_reliability};
use qrel_core::existential::existential_probability_exact;
use qrel_core::quantifier_free::qf_reliability;
use qrel_core::reductions::mon2sat::{recover_count, reduce};
use qrel_count::count_mon2sat;
use qrel_db::{DatabaseBuilder, Fact};
use qrel_eval::FoQuery;
use qrel_logic::mon2sat::Monotone2Sat;
use qrel_logic::parser::parse_formula;
use qrel_prob::{ErrorModel, UnreliableDatabase};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

fn main() {
    println!("E11 — the positive-only (de Rougemont) model variant\n");

    println!("part 1: Prop 3.2 reduction under PositiveOnly (it is positive-only by construction)");
    let mut rng = StdRng::seed_from_u64(11);
    let mut t1 = Table::new(&["m", "model", "#SAT via H_ψ", "#SAT via DPLL", "match"]);
    for m in [5u32, 7, 9] {
        let f = Monotone2Sat::random(m, m as usize + 1, &mut rng);
        let inst = reduce(&f);
        assert_eq!(inst.ud.model(), ErrorModel::PositiveOnly);
        let q = FoQuery::new(inst.query.clone());
        let h = exact_reliability(&inst.ud, &q).unwrap().expected_error;
        let via_h = recover_count(&inst, &h);
        let via_dpll = count_mon2sat(&f);
        t1.row(&[
            m.to_string(),
            "PositiveOnly".into(),
            via_h.to_string(),
            via_dpll.to_string(),
            if via_h.to_u64() == Some(via_dpll) {
                "✓".into()
            } else {
                "✗".into()
            },
        ]);
    }
    t1.print();

    println!("\npart 2: identical behaviour of all engines across the two models");
    // Build the same positive-only instance twice, once per model flag.
    let build = |model: ErrorModel| -> UnreliableDatabase {
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("E", 2)
            .relation("S", 1)
            .tuples("E", [vec![0, 1], vec![1, 2], vec![2, 0]])
            .tuples("S", [vec![0], vec![2]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db).with_model(model).unwrap();
        ud.set_error(&Fact::new(0, vec![0, 1]), r(1, 4)).unwrap();
        ud.set_error(&Fact::new(0, vec![1, 2]), r(1, 3)).unwrap();
        ud.set_error(&Fact::new(1, vec![0]), r(1, 5)).unwrap();
        ud
    };
    let full = build(ErrorModel::Full);
    let pos = build(ErrorModel::PositiveOnly);

    let exist = parse_formula("exists x y. E(x,y) & S(y)").unwrap();
    let qf = parse_formula("E(x,y) & S(x)").unwrap();
    let free = vec!["x".to_string(), "y".to_string()];

    let mut t2 = Table::new(&["quantity", "Full model", "PositiveOnly", "equal"]);
    let p_full = exact_probability(&full, &FoQuery::new(exist.clone())).unwrap();
    let p_pos = exact_probability(&pos, &FoQuery::new(exist.clone())).unwrap();
    t2.row(&[
        "Pr[∃xy E∧S]".into(),
        p_full.to_string(),
        p_pos.to_string(),
        if p_full == p_pos {
            "✓".into()
        } else {
            "✗".into()
        },
    ]);
    let g_full = existential_probability_exact(&full, &exist).unwrap();
    let g_pos = existential_probability_exact(&pos, &exist).unwrap();
    t2.row(&[
        "same via grounding".into(),
        g_full.to_string(),
        g_pos.to_string(),
        if g_full == g_pos {
            "✓".into()
        } else {
            "✗".into()
        },
    ]);
    let h_full = qf_reliability(&full, &qf, &free).unwrap().expected_error;
    let h_pos = qf_reliability(&pos, &qf, &free).unwrap().expected_error;
    t2.row(&[
        "H of QF query".into(),
        h_full.to_string(),
        h_pos.to_string(),
        if h_full == h_pos {
            "✓".into()
        } else {
            "✗".into()
        },
    ]);
    t2.print();

    println!("\npart 3: the restriction is enforced");
    let db = DatabaseBuilder::new()
        .universe_size(2)
        .relation("S", 1)
        .tuples("S", [vec![0]])
        .build();
    let mut ud = UnreliableDatabase::reliable(db)
        .with_model(ErrorModel::PositiveOnly)
        .unwrap();
    let rejected = ud.set_error(&Fact::new(0, vec![1]), r(1, 2)).is_err();
    println!(
        "  setting μ > 0 on a negative fact: {}",
        if rejected {
            "rejected ✓"
        } else {
            "accepted ✗"
        }
    );
    println!(
        "\npaper: \"for complexity considerations this gives no essential \
         difference\" — all rows above agree exactly."
    );
}
