//! E14 — serving-layer throughput and latency.
//!
//! Infrastructure experiment (no paper claim): measures the `qrel-serve`
//! HTTP layer end to end — worker-pool scaling and the effect of the
//! result cache — against the in-process server on an ephemeral port.
//! The workload is the FPTRAS rung on the `uncertain16` dataset with a
//! small seed pool, so with the cache enabled most requests repeat a
//! (query, seed) pair the cache has already answered.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Instant;

use qrel_bench::Table;
use qrel_serve::{Server, ServerConfig};

const CLIENT_THREADS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 50;
const SEED_POOL: u64 = 10;

fn http_solve(addr: SocketAddr, seed: u64) -> (u16, f64) {
    let body = format!(
        "{{\"dataset\":\"uncertain16\",\"query\":\"exists x. S(x)\",\
         \"method\":\"fptras\",\"eps\":0.2,\"delta\":0.1,\"seed\":{seed}}}"
    );
    let raw = format!(
        "POST /v1/solve HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let started = Instant::now();
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(raw.as_bytes()).unwrap();
    let mut text = String::new();
    conn.read_to_string(&mut text).unwrap();
    let elapsed = started.elapsed().as_secs_f64();
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    (status, elapsed)
}

fn scrape_counter(addr: SocketAddr, name: &str) -> u64 {
    let mut conn = TcpStream::connect(addr).unwrap();
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n")
        .unwrap();
    let mut text = String::new();
    conn.read_to_string(&mut text).unwrap();
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn run_config(workers: usize, cache: bool) -> Vec<String> {
    let dataset = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../data/uncertain16.json"
    ));
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_cap: 256,
        cache_bytes: if cache { 64 * 1024 * 1024 } else { 0 },
        preload: vec![dataset],
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().unwrap());

    let started = Instant::now();
    let clients: Vec<_> = (0..CLIENT_THREADS)
        .map(|c| {
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(REQUESTS_PER_CLIENT);
                for i in 0..REQUESTS_PER_CLIENT {
                    let seed = ((c * REQUESTS_PER_CLIENT + i) as u64) % SEED_POOL;
                    let (status, latency) = http_solve(addr, seed);
                    assert_eq!(status, 200, "solve failed");
                    latencies.push(latency);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = clients
        .into_iter()
        .flat_map(|c| c.join().unwrap())
        .collect();
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let hits = scrape_counter(addr, "qrel_cache_hits_total");
    handle.shutdown();
    join.join().unwrap();

    let total = latencies.len();
    vec![
        workers.to_string(),
        if cache { "on" } else { "off" }.to_string(),
        total.to_string(),
        format!("{:.0}", total as f64 / wall),
        format!("{:.2}", percentile(&latencies, 0.50) * 1e3),
        format!("{:.2}", percentile(&latencies, 0.99) * 1e3),
        hits.to_string(),
    ]
}

fn main() {
    println!("E14 — qrel-serve throughput/latency (infrastructure experiment)\n");
    println!(
        "workload: {CLIENT_THREADS} client threads x {REQUESTS_PER_CLIENT} requests, \
         fptras(eps=0.2, delta=0.1) on uncertain16, {SEED_POOL} distinct seeds\n"
    );
    let mut table = Table::new(&[
        "workers",
        "cache",
        "requests",
        "rps",
        "p50 ms",
        "p99 ms",
        "cache hits",
    ]);
    for workers in [1usize, 4] {
        for cache in [false, true] {
            table.row(&run_config(workers, cache));
        }
    }
    table.print();
    println!(
        "\nexpected shape: cache-on turns repeated (query, seed) pairs into \
         O(lookup) hits, collapsing p50 and multiplying rps; extra workers \
         help most when the cache is off (solves dominate) and the machine \
         has cores to spare."
    );
}
