//! Vendored, offline subset of `serde_json`: a strict JSON text layer
//! over the [`serde::Value`] interchange tree.
//!
//! Provides exactly the API surface this workspace uses: [`from_str`],
//! [`from_value`], [`to_string`], [`to_string_pretty`], [`Value`] and
//! the [`json!`] macro. Parsing is strict RFC 8259 (with `\uXXXX`
//! escapes and surrogate pairs); printing matches serde_json's compact
//! and 2-space-indented pretty conventions.

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

// The `json!` macro expands in downstream crates that may not depend on
// `serde` directly; route through this re-export.
#[doc(hidden)]
pub use serde as __serde;

/// Error type for both parse and conversion failures.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Default nesting-depth cap applied by [`from_str`]. Deep enough for
/// any legitimate spec (ours nest ≤ 8 levels), shallow enough that the
/// recursive-descent parser cannot be driven into a stack overflow by
/// adversarial input like `[[[[…]]]]`.
pub const DEFAULT_MAX_DEPTH: usize = 128;

/// Default total-size cap applied by [`from_str`]: 256 MiB. A guard
/// against pathological allocation, not a tuning knob — network-facing
/// callers should pass a much smaller [`ParseLimits::max_bytes`].
pub const DEFAULT_MAX_BYTES: usize = 256 * 1024 * 1024;

/// Resource limits enforced while parsing untrusted JSON text.
///
/// `from_str` applies [`ParseLimits::default`]; callers that face raw
/// network bytes (the `qrel-serve` HTTP server) tighten both knobs via
/// [`from_str_with_limits`].
#[derive(Debug, Clone, Copy)]
pub struct ParseLimits {
    /// Maximum array/object nesting depth before parsing aborts.
    pub max_depth: usize,
    /// Maximum input length in bytes; longer inputs are rejected before
    /// any parsing work happens.
    pub max_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_depth: DEFAULT_MAX_DEPTH,
            max_bytes: DEFAULT_MAX_BYTES,
        }
    }
}

/// Parse JSON text into any deserializable type.
///
/// Enforces [`ParseLimits::default`] — a [`DEFAULT_MAX_DEPTH`] nesting
/// cap and a [`DEFAULT_MAX_BYTES`] size cap — so even the trusting
/// entry point cannot be crashed by deeply nested or enormous input.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    from_str_with_limits(s, ParseLimits::default())
}

/// Parse JSON text under explicit [`ParseLimits`] — the entry point for
/// adversarial input (HTTP request bodies).
pub fn from_str_with_limits<T: Deserialize>(s: &str, limits: ParseLimits) -> Result<T> {
    let value = parse_value_complete(s, limits)?;
    Ok(T::deserialize_value(&value)?)
}

/// Convert an already-parsed [`Value`] into a deserializable type.
pub fn from_value<T: Deserialize>(v: Value) -> Result<T> {
    Ok(T::deserialize_value(&v)?)
}

/// Serialize to compact JSON text.
#[allow(clippy::unnecessary_wraps)] // upstream-compatible signature
pub fn to_string<T: Serialize + ?Sized>(x: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&x.serialize_value(), &mut out);
    Ok(out)
}

/// Serialize to 2-space-indented JSON text.
#[allow(clippy::unnecessary_wraps)] // upstream-compatible signature
pub fn to_string_pretty<T: Serialize + ?Sized>(x: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&x.serialize_value(), 0, &mut out);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Printing

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => write_float(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(indent + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

/// serde_json always keeps a float distinguishable from an integer.
fn write_float(x: f64, out: &mut String) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current array/object nesting depth (see [`ParseLimits`]).
    depth: usize,
    max_depth: usize,
}

fn parse_value_complete(s: &str, limits: ParseLimits) -> Result<Value> {
    if s.len() > limits.max_bytes {
        return Err(Error::new(format!(
            "input of {} bytes exceeds the {}-byte limit",
            s.len(),
            limits.max_bytes
        )));
    }
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
        max_depth: limits.max_depth,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
        }
    }

    /// Enter one nesting level, erroring past the depth limit. The
    /// matching `depth -= 1` lives at each container's exit points.
    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(Error::new(format!(
                "nesting depth exceeds the limit of {}",
                self.max_depth
            )));
        }
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 character starting here.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let len =
                        utf8_len(rest[0]).ok_or_else(|| Error::new("invalid UTF-8 in string"))?;
                    if rest.len() < len {
                        return Err(Error::new("truncated UTF-8 in string"));
                    }
                    let s = std::str::from_utf8(&rest[..len])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// json! macro

/// Build a [`Value`] from JSON-ish literal syntax. Supports the forms
/// this workspace uses: literals, arrays, objects with string keys, and
/// interpolated Rust expressions (which must be `Serialize`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => {
        $crate::__serde::Serialize::serialize_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basic_values() {
        for text in [
            "null",
            "true",
            "[1,2,3]",
            r#"{"a":1,"b":[true,"x"],"c":{"d":null}}"#,
            r#""esc \" \\ \n é""#,
            "-42",
            "3.5",
        ] {
            let v: Value = from_str(text).unwrap();
            let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, back);
        }
    }

    #[test]
    fn rejects_malformed() {
        for text in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            assert!(from_str::<Value>(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn integers_and_floats_distinguished() {
        assert_eq!(from_str::<Value>("7").unwrap(), Value::Int(7));
        assert_eq!(from_str::<Value>("7.0").unwrap(), Value::Float(7.0));
        assert_eq!(to_string(&Value::Float(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&Value::Int(2)).unwrap(), "2");
    }

    #[test]
    fn json_macro_forms() {
        assert_eq!(json!([]), Value::Array(vec![]));
        assert_eq!(
            json!([[0, 9]]),
            Value::Array(vec![Value::Array(vec![Value::Int(0), Value::Int(9)])])
        );
        let v = json!({"arity": 1, "tuples": [[0]]});
        assert_eq!(v["arity"], Value::Int(1));
        assert_eq!(v["tuples"][0][0], Value::Int(0));
        let x = 5u32;
        assert_eq!(json!(x), Value::Int(5));
    }

    #[test]
    fn pretty_formatting() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}");
    }

    #[test]
    fn surrogate_pairs() {
        let v: Value = from_str(r#""😀""#).unwrap();
        assert_eq!(v, Value::Str("😀".to_string()));
    }

    #[test]
    fn deep_array_nesting_is_rejected_not_a_crash() {
        // 100k levels would overflow the stack without the depth guard.
        let depth = 100_000;
        let text = "[".repeat(depth) + &"]".repeat(depth);
        let err = from_str::<Value>(&text).unwrap_err();
        assert!(err.to_string().contains("nesting depth"), "{err}");
    }

    #[test]
    fn deep_object_nesting_is_rejected_not_a_crash() {
        let depth = 100_000;
        let text = "{\"a\":".repeat(depth) + "null" + &"}".repeat(depth);
        let err = from_str::<Value>(&text).unwrap_err();
        assert!(err.to_string().contains("nesting depth"), "{err}");
    }

    #[test]
    fn nesting_exactly_at_the_limit_parses() {
        let limits = ParseLimits {
            max_depth: 10,
            max_bytes: 1024,
        };
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(from_str_with_limits::<Value>(&ok, limits).is_ok());
        let too_deep = "[".repeat(11) + &"]".repeat(11);
        assert!(from_str_with_limits::<Value>(&too_deep, limits).is_err());
        // Depth is net nesting, not total containers: wide siblings at
        // the same level never trip the limit.
        let wide = format!("[{}]", vec!["[]"; 300].join(","));
        assert!(from_str_with_limits::<Value>(&wide, limits).is_ok());
    }

    #[test]
    fn size_limit_rejects_before_parsing() {
        let limits = ParseLimits {
            max_depth: 10,
            max_bytes: 16,
        };
        assert!(from_str_with_limits::<Value>("[1,2,3]", limits).is_ok());
        let big = format!("[{}]", vec!["0"; 100].join(","));
        let err = from_str_with_limits::<Value>(&big, limits).unwrap_err();
        assert!(err.to_string().contains("byte limit"), "{err}");
    }

    #[test]
    fn realistic_specs_fit_default_limits() {
        // The shipped data files must stay parseable under from_str's
        // built-in caps.
        let nested = r#"{"database":{"vocab":{"symbols":[{"name":"S","arity":1}]},
            "universe":{"names":["a"]},"relations":[{"arity":1,"tuples":[[0]]}]}}"#;
        assert!(from_str::<Value>(nested).is_ok());
    }
}
