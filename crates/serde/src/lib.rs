//! Vendored, offline subset of the `serde` data model used by this
//! workspace.
//!
//! Instead of serde's visitor-based zero-copy architecture, this stub
//! routes everything through one owned [`Value`] tree (the same shape
//! `serde_json::Value` exposes): `Serialize` renders a type into a
//! `Value`, `Deserialize` rebuilds a type from one. The `derive`
//! feature re-exports proc macros from the local `serde_derive` crate
//! that generate impls with serde's externally-tagged conventions, plus
//! the container attributes `#[serde(from = "...")]` /
//! `#[serde(try_from = "...")]` and the field attributes
//! `#[serde(default)]` / `#[serde(default = "path")]` that this
//! repository relies on.

use std::collections::BTreeSet;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the single interchange representation.
///
/// Numbers keep integer/float identity: integers parse into `Int`
/// (covering the full `u64`/`i64` domains via `i128`), everything else
/// into `Float`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs (duplicate keys: last wins on
    /// lookup, mirroring serde_json's map semantics closely enough for
    /// our specs).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|pairs| field(pairs, key))
    }

    /// Human-readable type name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Last-wins field lookup in an object's pair list.
pub fn field<'a>(pairs: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v)
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if matches!(self, Value::Null) {
            *self = Value::Object(Vec::new());
        }
        let Value::Object(pairs) = self else {
            panic!("cannot index {} with a string key", self.kind());
        };
        let pos = pairs.iter().rposition(|(k, _)| k == key);
        let pos = match pos {
            Some(p) => p,
            None => {
                pairs.push((key.to_string(), Value::Null));
                pairs.len() - 1
            }
        };
        &mut pairs[pos].1
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, i: usize) -> &mut Value {
        let Value::Array(items) = self else {
            panic!("cannot index {} with a usize", self.kind());
        };
        &mut items[i]
    }
}

/// Deserialization error: a message plus an outermost-first path of the
/// fields/elements that led to it.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }

    /// Prefix a path segment (used by generated code while unwinding).
    pub fn in_context(self, segment: &str) -> Self {
        DeError {
            msg: format!("{segment}: {}", self.msg),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into the interchange [`Value`].
pub trait Serialize {
    fn serialize_value(&self) -> Value;
}

/// Rebuild `Self` from the interchange [`Value`].
pub trait Deserialize: Sized {
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        DeError::custom(format!(
                            "integer {} out of range for {}", i, stringify!($t)
                        ))
                    }),
                    other => Err(DeError::custom(format!(
                        "expected integer, got {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize_value(&self) -> Value {
        Value::Int(*self as i128)
    }
}

impl Deserialize for u128 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Int(i) if *i >= 0 => Ok(*i as u128),
            Value::Int(i) => Err(DeError::custom(format!(
                "integer {i} out of range for u128"
            ))),
            other => Err(DeError::custom(format!(
                "expected integer, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DeError::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {}", v.kind())))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                T::deserialize_value(item).map_err(|e| e.in_context(&format!("[{i}]")))
            })
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(Vec::<T>::deserialize_value(v)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        T::deserialize_value(v).map(Box::new)
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| {
                    DeError::custom(format!("expected array, got {}", v.kind()))
                })?;
                if items.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected tuple of {} elements, got {}", $len, items.len()
                    )));
                }
                Ok(($($name::deserialize_value(&items[$idx])
                    .map_err(|e| e.in_context(&format!("[{}]", $idx)))?,)+))
            }
        }
    )*};
}
tuple_impls! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::deserialize_value(&7u32.serialize_value()).unwrap(), 7);
        assert_eq!(
            String::deserialize_value(&"hi".serialize_value()).unwrap(),
            "hi"
        );
        assert!(bool::deserialize_value(&Value::Int(1)).is_err());
        assert!(u8::deserialize_value(&Value::Int(300)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, true), (2, false)];
        let round: Vec<(u32, bool)> = Deserialize::deserialize_value(&v.serialize_value()).unwrap();
        assert_eq!(round, v);
        let s: BTreeSet<u64> = [3, 1, 2].into_iter().collect();
        let round: BTreeSet<u64> = Deserialize::deserialize_value(&s.serialize_value()).unwrap();
        assert_eq!(round, s);
        assert_eq!(
            Option::<u32>::deserialize_value(&Value::Null).unwrap(),
            None
        );
    }

    #[test]
    fn index_and_index_mut() {
        let mut v = Value::Object(vec![(
            "a".into(),
            Value::Array(vec![Value::Int(1), Value::Int(2)]),
        )]);
        assert_eq!(v["a"][1], Value::Int(2));
        assert_eq!(v["missing"], Value::Null);
        v["a"][0] = Value::Int(9);
        assert_eq!(v["a"][0], Value::Int(9));
        v["b"] = Value::Bool(true);
        assert_eq!(v["b"], Value::Bool(true));
    }
}
