//! Exact plan evaluation over fact probabilities.
//!
//! A compiled [`Plan`] is evaluated under a variable environment by one
//! recursive walk: leaves read `ν(Rā)` straight off the
//! [`UnreliableDatabase`], inner nodes combine child probabilities with
//! the independence rules the compiler proved applicable. No worlds are
//! enumerated and no lineage is built — cost is `O(|plan| · n^d)` for
//! projection depth `d`, polynomial where the world enumerator is
//! exponential.

use crate::ir::Plan;
use qrel_arith::BigRational;
use qrel_db::{Element, Fact};
use qrel_eval::{query_answers, EvalError};
use qrel_logic::{Formula, Term};
use qrel_prob::UnreliableDatabase;
use std::collections::HashMap;

/// Exact reliability computed from a plan — same fields and semantics
/// as the Theorem 4.2 enumerator's `ExactReport`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanReport {
    /// `H_ψ(𝔇)` — the expected Hamming distance.
    pub expected_error: BigRational,
    /// `R_ψ(𝔇) = 1 − H_ψ/n^k`.
    pub reliability: BigRational,
}

/// Resolve a constant name: universe element name first, then numeric
/// index (same rule as the model checker in `qrel_eval::fo`).
fn resolve_const(ud: &UnreliableDatabase, name: &str) -> Result<Element, EvalError> {
    if let Some(e) = ud.observed().universe().lookup(name) {
        return Ok(e);
    }
    if let Ok(i) = name.parse::<u32>() {
        if (i as usize) < ud.size() {
            return Ok(i);
        }
    }
    Err(EvalError::UnknownConstant(name.to_string()))
}

fn resolve_term(
    ud: &UnreliableDatabase,
    env: &HashMap<String, Element>,
    t: &Term,
) -> Result<Element, EvalError> {
    match t {
        Term::Var(v) => env
            .get(v)
            .copied()
            .ok_or_else(|| EvalError::UnboundVariable(v.clone())),
        Term::Const(c) => resolve_const(ud, c),
    }
}

/// `Pr[𝔅 ⊨ plan]` under `env`. The environment must bind every free
/// variable of the plan's leaves.
pub fn probability(
    ud: &UnreliableDatabase,
    plan: &Plan,
    env: &mut HashMap<String, Element>,
) -> Result<BigRational, EvalError> {
    match plan {
        Plan::Const(b) => Ok(if *b {
            BigRational::one()
        } else {
            BigRational::zero()
        }),
        Plan::Literal {
            positive,
            rel,
            args,
        } => {
            let vocab = ud.observed().vocabulary();
            let rel_ix = vocab
                .index_of(rel)
                .ok_or_else(|| EvalError::UnknownRelation(rel.clone()))?;
            let arity = ud.observed().relation(rel_ix).arity();
            if arity != args.len() {
                return Err(EvalError::ArityMismatch {
                    rel: rel.clone(),
                    expected: arity,
                    got: args.len(),
                });
            }
            let tuple: Vec<Element> = args
                .iter()
                .map(|t| resolve_term(ud, env, t))
                .collect::<Result<_, _>>()?;
            let nu = ud.nu(&Fact::new(rel_ix, tuple));
            Ok(if *positive { nu } else { nu.one_minus() })
        }
        Plan::Equality { positive, lhs, rhs } => {
            let holds = resolve_term(ud, env, lhs)? == resolve_term(ud, env, rhs)?;
            Ok(if holds == *positive {
                BigRational::one()
            } else {
                BigRational::zero()
            })
        }
        Plan::Join(children) => {
            let mut p = BigRational::one();
            for c in children {
                p = p.mul_ref(&probability(ud, c, env)?);
                if p.is_zero() {
                    break;
                }
            }
            Ok(p)
        }
        Plan::Union(children) => {
            let mut miss = BigRational::one();
            for c in children {
                miss = miss.mul_ref(&probability(ud, c, env)?.one_minus());
                if miss.is_zero() {
                    break;
                }
            }
            Ok(miss.one_minus())
        }
        Plan::Project { var, child } => {
            let shadowed = env.get(var).copied();
            let n = ud.size() as Element;
            let mut miss = BigRational::one();
            let mut failure = None;
            for a in 0..n {
                env.insert(var.clone(), a);
                match probability(ud, child, env) {
                    Ok(p) => {
                        miss = miss.mul_ref(&p.one_minus());
                        if miss.is_zero() {
                            break;
                        }
                    }
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
            match shadowed {
                Some(e) => {
                    env.insert(var.clone(), e);
                }
                None => {
                    env.remove(var);
                }
            }
            match failure {
                Some(e) => Err(e),
                None => Ok(miss.one_minus()),
            }
        }
        Plan::Complement(child) => Ok(probability(ud, child, env)?.one_minus()),
        Plan::Guard(child) => {
            if ud.size() == 0 {
                Ok(BigRational::zero())
            } else {
                probability(ud, child, env)
            }
        }
    }
}

/// `Pr[𝔅 ⊨ ψ]` for a Boolean query's plan.
pub fn sentence_probability(
    ud: &UnreliableDatabase,
    plan: &Plan,
) -> Result<BigRational, EvalError> {
    probability(ud, plan, &mut HashMap::new())
}

/// Exact reliability from a plan: per tuple `t̄`, the probability that
/// the actual answer disagrees with the observed one is `1 − p_t̄` when
/// `t̄ ∈ ψ^𝔄` and `p_t̄` otherwise; summing gives the expected Hamming
/// distance `H_ψ` by linearity, identically to the Theorem 4.2
/// enumerator.
pub fn reliability(
    ud: &UnreliableDatabase,
    plan: &Plan,
    formula: &Formula,
    free: &[String],
) -> Result<PlanReport, EvalError> {
    let observed = query_answers(ud.observed(), formula, free)?;
    let k = free.len();
    let mut h = BigRational::zero();
    let mut env = HashMap::new();
    for tuple in ud.observed().universe().tuples(k) {
        env.clear();
        for (v, e) in free.iter().zip(tuple.iter()) {
            env.insert(v.clone(), *e);
        }
        let p = probability(ud, plan, &mut env)?;
        let miss = if observed.contains(&tuple) {
            p.one_minus()
        } else {
            p
        };
        h = h.add_ref(&miss);
    }
    let total = BigRational::from_int(ud.observed().universe().tuple_count(k) as i64);
    let reliability = if total.is_zero() {
        BigRational::one()
    } else {
        h.div_ref(&total).one_minus()
    };
    Ok(PlanReport {
        expected_error: h,
        reliability,
    })
}
