//! The safe-plan compiler: hierarchical, self-join-free shapes become
//! exact extensional plans; everything else is declined with a reason.
//!
//! The correctness backbone is independence, established syntactically:
//!
//! * **Global self-join-freeness.** Each relation symbol appears in at
//!   most one atom of the whole query. Under a fixed variable
//!   environment a subformula's truth value depends only on the facts of
//!   the relations appearing in it, so any two sibling subtrees of a
//!   conjunction or disjunction are functions of disjoint fact sets —
//!   independent events — and `∧`/`∨` compile to independent
//!   join/union.
//! * **Root variables.** `∃x φ` compiles to an independent project only
//!   when `x` occurs in *every* relational atom of its connected
//!   component: then two groundings `φ[x:=a]`, `φ[x:=b]` (`a ≠ b`)
//!   touch disjoint facts (same atom → tuples differ at an `x`
//!   position; different atoms → different relations by
//!   self-join-freeness), so the groundings are independent. This is
//!   the hierarchy condition of the dichotomy literature, applied one
//!   quantifier at a time.
//!
//! Quantifier blocks are split into connected components by shared
//! quantified variables first (components are relation-disjoint, hence
//! an independent join), `∃` distributes over `∨`, `∀x̄ φ` is
//! `¬∃x̄ ¬φ`, and equalities are deterministic leaves (independent of
//! everything). When no root variable exists the shape is reported as
//! non-hierarchical — exactly the queries (like the H₀ pattern
//! `∃x∃y S(x) ∧ E(x,y) ∧ T(y)`) the dichotomy theorem makes #P-hard.

use crate::ir::Plan;
use qrel_logic::{Formula, Term};
use std::collections::BTreeSet;
use std::fmt;

/// Why the compiler declined a query: the shape is outside the safe
/// class (or outside the fragment the compiler understands).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unsafe {
    /// Second-order quantification has no extensional plan.
    SecondOrder,
    /// A relation appears in more than one atom.
    SelfJoin { rel: String },
    /// A quantifier block with no root variable — the provably hard
    /// hierarchical-condition failure.
    NonHierarchical { vars: Vec<String> },
}

impl fmt::Display for Unsafe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unsafe::SecondOrder => f.write_str("second-order quantification"),
            Unsafe::SelfJoin { rel } => {
                write!(
                    f,
                    "relation {rel:?} appears in more than one atom (self-join)"
                )
            }
            Unsafe::NonHierarchical { vars } => write!(
                f,
                "no root variable among {{{}}} occurs in every atom of its component \
                 (non-hierarchical)",
                vars.join(", ")
            ),
        }
    }
}

impl std::error::Error for Unsafe {}

/// Compile a formula to an exact extensional plan, or report why its
/// shape is unsafe. Free variables are left symbolic in the plan's
/// leaves and bound at evaluation time.
pub fn compile(formula: &Formula) -> Result<Plan, Unsafe> {
    if formula.is_second_order() {
        return Err(Unsafe::SecondOrder);
    }
    let mut seen = BTreeSet::new();
    if let Some(rel) = first_repeated_relation(formula, &mut seen) {
        return Err(Unsafe::SelfJoin { rel });
    }
    compile_inner(formula)
}

/// First relation symbol occurring in two atoms, if any.
fn first_repeated_relation(f: &Formula, seen: &mut BTreeSet<String>) -> Option<String> {
    match f {
        Formula::Atom { rel, .. } => {
            if !seen.insert(rel.clone()) {
                Some(rel.clone())
            } else {
                None
            }
        }
        Formula::Not(g)
        | Formula::Exists(_, g)
        | Formula::Forall(_, g)
        | Formula::ExistsRel(_, _, g)
        | Formula::ForallRel(_, _, g) => first_repeated_relation(g, seen),
        Formula::And(gs) | Formula::Or(gs) => {
            gs.iter().find_map(|g| first_repeated_relation(g, seen))
        }
        Formula::True | Formula::False | Formula::Eq(..) => None,
    }
}

fn compile_inner(f: &Formula) -> Result<Plan, Unsafe> {
    match f {
        Formula::True => Ok(Plan::Const(true)),
        Formula::False => Ok(Plan::Const(false)),
        Formula::Atom { rel, args } => Ok(Plan::Literal {
            positive: true,
            rel: rel.clone(),
            args: args.clone(),
        }),
        Formula::Eq(a, b) => Ok(Plan::Equality {
            positive: true,
            lhs: a.clone(),
            rhs: b.clone(),
        }),
        Formula::Not(g) => match &**g {
            Formula::Atom { rel, args } => Ok(Plan::Literal {
                positive: false,
                rel: rel.clone(),
                args: args.clone(),
            }),
            Formula::Eq(a, b) => Ok(Plan::Equality {
                positive: false,
                lhs: a.clone(),
                rhs: b.clone(),
            }),
            inner => Ok(Plan::Complement(Box::new(compile_inner(inner)?))),
        },
        // Children are relation-disjoint (global self-join-freeness), so
        // under any fixed environment they are independent events.
        Formula::And(gs) => Ok(Plan::Join(
            gs.iter().map(compile_inner).collect::<Result<_, _>>()?,
        )),
        Formula::Or(gs) => Ok(Plan::Union(
            gs.iter().map(compile_inner).collect::<Result<_, _>>()?,
        )),
        Formula::Exists(vars, body) => compile_exists(vars, body),
        Formula::Forall(vars, body) => Ok(Plan::Complement(Box::new(compile_exists(
            vars,
            &Formula::not((**body).clone()),
        )?))),
        Formula::ExistsRel(..) | Formula::ForallRel(..) => Err(Unsafe::SecondOrder),
    }
}

/// One atom occurrence with the variables free *at the quantifier-block
/// level* (inner quantifiers shadow).
struct AtomOcc {
    relational: bool,
    vars: BTreeSet<String>,
}

fn atom_occurrences(f: &Formula, bound: &mut Vec<String>, out: &mut Vec<AtomOcc>) {
    let term_vars = |ts: &[&Term], bound: &Vec<String>| -> BTreeSet<String> {
        ts.iter()
            .filter_map(|t| match t {
                Term::Var(v) if !bound.contains(v) => Some(v.clone()),
                _ => None,
            })
            .collect()
    };
    match f {
        Formula::True | Formula::False => {}
        Formula::Atom { args, .. } => out.push(AtomOcc {
            relational: true,
            vars: term_vars(&args.iter().collect::<Vec<_>>(), bound),
        }),
        Formula::Eq(a, b) => out.push(AtomOcc {
            relational: false,
            vars: term_vars(&[a, b], bound),
        }),
        Formula::Not(g) => atom_occurrences(g, bound, out),
        Formula::And(gs) | Formula::Or(gs) => {
            for g in gs {
                atom_occurrences(g, bound, out);
            }
        }
        Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
            let depth = bound.len();
            bound.extend(vs.iter().cloned());
            atom_occurrences(g, bound, out);
            bound.truncate(depth);
        }
        Formula::ExistsRel(_, _, g) | Formula::ForallRel(_, _, g) => {
            atom_occurrences(g, bound, out)
        }
    }
}

/// Compile `∃ vars. body`.
fn compile_exists(vars: &[String], body: &Formula) -> Result<Plan, Unsafe> {
    // Merge directly nested blocks; an inner binder shadows an outer
    // variable of the same name, so the outer copy is dropped.
    let mut vars: Vec<String> = vars.to_vec();
    let mut body = body;
    while let Formula::Exists(inner_vars, inner) = body {
        vars.retain(|v| !inner_vars.contains(v));
        vars.extend(inner_vars.iter().cloned());
        body = inner;
    }
    // ∃ distributes over ∨; the disjuncts stay relation-disjoint.
    if let Formula::Or(gs) = body {
        return Ok(Plan::Union(
            gs.iter()
                .map(|g| compile_exists(&vars, g))
                .collect::<Result<_, _>>()?,
        ));
    }
    let mut occ = Vec::new();
    atom_occurrences(body, &mut Vec::new(), &mut occ);
    // Vacuous variables (no free occurrence in the body) quantify over
    // the same event repeatedly — dropping them is sound for |A| ≥ 1.
    // When *all* variables are vacuous a Guard pins the |A| = 0 case
    // (∃x̄ φ is false over an empty universe); otherwise the surviving
    // Project already evaluates to 0 there.
    let had = vars.len();
    let remaining: Vec<String> = vars
        .into_iter()
        .filter(|v| occ.iter().any(|a| a.vars.contains(v)))
        .collect();
    let plan = if remaining.is_empty() {
        let inner = compile_inner(body)?;
        return Ok(if had > 0 {
            Plan::Guard(Box::new(inner))
        } else {
            inner
        });
    } else if let Formula::And(gs) = body {
        match split_components(&remaining, gs) {
            Some(parts) => Plan::Join(
                parts
                    .into_iter()
                    .map(|(vs, conj)| compile_exists(&vs, &Formula::and(conj)))
                    .collect::<Result<_, _>>()?,
            ),
            None => compile_rooted(&remaining, body, &occ)?,
        }
    } else {
        compile_rooted(&remaining, body, &occ)?
    };
    Ok(plan)
}

/// Group the conjuncts of `∃ vars. ∧ gs` into connected components by
/// shared quantified variables. Components are relation-disjoint
/// (self-join-freeness) and share no quantified variable, so the block
/// is an independent join of per-component blocks. Returns `None` when
/// everything is one component (no split to make).
fn split_components(
    vars: &[String],
    conjuncts: &[Formula],
) -> Option<Vec<(Vec<String>, Vec<Formula>)>> {
    let sets: Vec<BTreeSet<String>> = conjuncts
        .iter()
        .map(|g| {
            let mut occ = Vec::new();
            atom_occurrences(g, &mut Vec::new(), &mut occ);
            occ.into_iter()
                .flat_map(|a| a.vars)
                .filter(|v| vars.contains(v))
                .collect()
        })
        .collect();
    // Union-find over conjunct indices.
    let mut group: Vec<usize> = (0..conjuncts.len()).collect();
    fn root(group: &mut [usize], mut i: usize) -> usize {
        while group[i] != i {
            group[i] = group[group[i]];
            i = group[i];
        }
        i
    }
    for i in 0..conjuncts.len() {
        for j in (i + 1)..conjuncts.len() {
            if !sets[i].is_disjoint(&sets[j]) {
                let (a, b) = (root(&mut group, i), root(&mut group, j));
                group[a.max(b)] = a.min(b);
            }
        }
    }
    // Components in first-conjunct order, each with its variable slice
    // in the block's original order (deterministic plans).
    let mut order: Vec<usize> = Vec::new();
    for i in 0..conjuncts.len() {
        let r = root(&mut group, i);
        if !order.contains(&r) {
            order.push(r);
        }
    }
    if order.len() <= 1 {
        return None;
    }
    Some(
        order
            .into_iter()
            .map(|r| {
                let members: Vec<usize> = (0..conjuncts.len())
                    .filter(|&i| root(&mut group, i) == r)
                    .collect();
                let comp_vars: Vec<String> = vars
                    .iter()
                    .filter(|v| members.iter().any(|&i| sets[i].contains(*v)))
                    .cloned()
                    .collect();
                let comp: Vec<Formula> =
                    members.into_iter().map(|i| conjuncts[i].clone()).collect();
                (comp_vars, comp)
            })
            .collect(),
    )
}

/// Single-component block: find a root variable occurring in every
/// relational atom and peel one independent project; equalities are
/// deterministic and exempt.
fn compile_rooted(vars: &[String], body: &Formula, occ: &[AtomOcc]) -> Result<Plan, Unsafe> {
    let root = vars.iter().find(|v| {
        occ.iter()
            .filter(|a| a.relational)
            .all(|a| a.vars.contains(*v))
    });
    match root {
        Some(x) => {
            let rest: Vec<String> = vars.iter().filter(|v| *v != x).cloned().collect();
            Ok(Plan::Project {
                var: x.clone(),
                child: Box::new(compile_exists(&rest, body)?),
            })
        }
        None => Err(Unsafe::NonHierarchical {
            vars: vars.to_vec(),
        }),
    }
}
