//! # qrel-plan — the safe-plan compiler
//!
//! The dichotomy literature (Amarilli–Kimelfeld, building on
//! Dalvi–Suciu) splits self-join-free queries into *hierarchical*
//! shapes, whose probability factors through independence into a
//! polynomial-time extensional plan, and everything else, which is
//! #P-hard. This crate implements the tractable side for the
//! unreliable-database model of Grädel–Gurevich–Hirsch:
//!
//! * [`compile()`][fn@compile] detects hierarchical, self-join-free shapes (including
//!   negation, `∀` via complement, disjunction, and equality atoms) and
//!   emits a symbolic [`Plan`] — independent join/union/project plus
//!   complement over atom leaves;
//! * [`eval::probability`]/[`eval::reliability`] evaluate a plan
//!   *exactly* in `BigRational` straight over the fact marginals `ν`,
//!   never materializing worlds or lineage;
//! * [`Unsafe`] reports *why* a declined query is outside the safe
//!   class, so `Method::Auto` can fall back to the enumeration/sampling
//!   ladder with a diagnosable trace;
//! * [`pairwise_hierarchical`] is an independent implementation of the
//!   classical hierarchy condition, kept deliberately separate from the
//!   compiler so the differential harness can cross-check safety
//!   classifications.

pub mod compile;
pub mod eval;
pub mod hierarchy;
pub mod ir;

pub use compile::{compile, Unsafe};
pub use eval::{probability, reliability, sentence_probability, PlanReport};
pub use hierarchy::pairwise_hierarchical;
pub use ir::Plan;

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_arith::BigRational;
    use qrel_core::{exact_probability, exact_reliability};
    use qrel_db::{Database, DatabaseBuilder, Fact};
    use qrel_eval::FoQuery;
    use qrel_logic::parser::parse_formula;
    use qrel_prob::UnreliableDatabase;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    /// 3 elements; S = {0, 2}, T = {1}, E = {(0,1), (1,2)}; every S/T/E
    /// fact uncertain with assorted error rates — 3 + 3 + 9 = 15
    /// uncertain facts would be 2^15 worlds for the enumerator, so keep
    /// only a handful uncertain.
    fn fixture() -> UnreliableDatabase {
        let db: Database = DatabaseBuilder::new()
            .universe_size(3)
            .relation("S", 1)
            .relation("T", 1)
            .relation("E", 2)
            .tuples("S", [vec![0], vec![2]])
            .tuples("T", [vec![1]])
            .tuples("E", [vec![0, 1], vec![1, 2]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(1, 4)).unwrap();
        ud.set_error(&Fact::new(0, vec![1]), r(1, 3)).unwrap();
        ud.set_error(&Fact::new(1, vec![1]), r(1, 5)).unwrap();
        ud.set_error(&Fact::new(2, vec![0, 1]), r(1, 2)).unwrap();
        ud.set_error(&Fact::new(2, vec![2, 0]), r(1, 7)).unwrap();
        ud
    }

    /// Probability and reliability from the plan must be bit-equal to
    /// the Theorem 4.2 world enumerator on every safe query.
    fn assert_matches_enumerator(src: &str) {
        let ud = fixture();
        let q = FoQuery::parse(src).unwrap();
        let plan = compile(q.formula()).unwrap_or_else(|u| panic!("{src}: declined: {u}"));
        let rep = reliability(&ud, &plan, q.formula(), q.free_vars()).unwrap();
        let oracle = exact_reliability(&ud, &q).unwrap();
        assert_eq!(
            rep.reliability, oracle.reliability,
            "{src}: plan reliability diverges from enumerator"
        );
        assert_eq!(rep.expected_error, oracle.expected_error, "{src}");
        if q.free_vars().is_empty() {
            let p = sentence_probability(&ud, &plan).unwrap();
            let p_oracle = exact_probability(&ud, &q).unwrap();
            assert_eq!(p, p_oracle, "{src}: plan probability diverges");
        }
    }

    #[test]
    fn safe_queries_match_the_enumerator() {
        for src in [
            "exists x. S(x)",
            "exists x y. (S(x) & E(x, y))",
            "exists x y. (E(x, y) & T(y))",
            "exists x y z. (S(x) & E(y, z))",
            "exists x. (S(x) | T(x))",
            "exists x. (S(x) & !T(x))",
            "forall x. S(x)",
            "forall x. (S(x) | T(x))",
            "exists x. (S(x) & (forall y. E(x, y)))",
            "!(exists x. S(x))",
            "exists x. (S(x) & x = 'e1')",
            "exists x y. (E(x, y) & x = y)",
            "exists x. (T('e1') & S(x))",
            "S(x)",
            "S(x) & !T(y)",
            "exists y. E(x, y)",
            "true",
            "false",
        ] {
            assert_matches_enumerator(src);
        }
    }

    #[test]
    fn unsafe_shapes_are_declined_with_reasons() {
        // The H₀ pattern — the dichotomy theorem's hard query.
        let h0 = parse_formula("exists x y. (S(x) & E(x, y) & T(y))").unwrap();
        assert!(matches!(compile(&h0), Err(Unsafe::NonHierarchical { .. })));
        // Self-join.
        let sj = parse_formula("exists x y. (S(x) & S(y))").unwrap();
        assert!(matches!(compile(&sj), Err(Unsafe::SelfJoin { rel }) if rel == "S"));
        // Second-order.
        let so = qrel_logic::Formula::ExistsRel(
            "X".into(),
            1,
            Box::new(parse_formula("exists x. X(x)").unwrap()),
        );
        assert_eq!(compile(&so), Err(Unsafe::SecondOrder));
    }

    #[test]
    fn declined_queries_fail_the_independent_hierarchy_test_too() {
        let h0 = parse_formula("exists x y. (S(x) & E(x, y) & T(y))").unwrap();
        assert_eq!(pairwise_hierarchical(&h0), Some(false));
        let chain = parse_formula("exists x y. (S(x) & E(x, y))").unwrap();
        assert_eq!(pairwise_hierarchical(&chain), Some(true));
        // Star: one root variable shared by all atoms.
        let star = parse_formula("exists x y z. (E(x, y) & E2(x, z))").unwrap();
        assert_eq!(pairwise_hierarchical(&star), Some(true));
        assert!(compile(&star).is_ok());
        // Out of fragment: the pairwise test abstains.
        let dj = parse_formula("exists x. (S(x) | T(x))").unwrap();
        assert_eq!(pairwise_hierarchical(&dj), None);
    }

    #[test]
    fn plan_render_is_deterministic_and_readable() {
        let f = parse_formula("exists x y. (S(x) & E(x, y))").unwrap();
        let plan = compile(&f).unwrap();
        assert_eq!(
            plan.render(),
            "project x\n  join\n    atom S(x)\n    project y\n      atom E(x, y)"
        );
        let neg = parse_formula("forall x. S(x)").unwrap();
        assert_eq!(
            compile(&neg).unwrap().render(),
            "complement\n  project x\n    neg-atom S(x)"
        );
    }

    #[test]
    fn vacuous_quantifiers_and_empty_universes() {
        // ∃x ⊤ is true iff the universe is nonempty.
        let f = parse_formula("exists x. true").unwrap();
        let plan = compile(&f).unwrap();
        assert!(matches!(plan, Plan::Guard(_)));
        let ud = fixture();
        assert_eq!(sentence_probability(&ud, &plan).unwrap(), r(1, 1));
        let empty = UnreliableDatabase::reliable(
            DatabaseBuilder::new()
                .universe_size(0)
                .relation("S", 1)
                .build(),
        );
        assert_eq!(sentence_probability(&empty, &plan).unwrap(), r(0, 1));
        // ∃x S(c) — vacuous x next to a real atom.
        let g = parse_formula("exists x. S('e1')").unwrap();
        assert!(compile(&g).is_ok());
    }

    #[test]
    fn certain_facts_pin_leaf_probabilities() {
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .tuples("S", [vec![0]])
            .build();
        let ud = UnreliableDatabase::reliable(db);
        let plan = compile(&parse_formula("exists x. S(x)").unwrap()).unwrap();
        assert_eq!(sentence_probability(&ud, &plan).unwrap(), r(1, 1));
        let plan_neg = compile(&parse_formula("forall x. !S(x)").unwrap()).unwrap();
        assert_eq!(sentence_probability(&ud, &plan_neg).unwrap(), r(0, 1));
    }

    #[test]
    fn node_count_counts_every_node() {
        let f = parse_formula("exists x y. (S(x) & E(x, y))").unwrap();
        // project x → join → (atom S, project y → atom E) = 5 nodes.
        assert_eq!(compile(&f).unwrap().node_count(), 5);
    }
}
