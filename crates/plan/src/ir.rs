//! The extensional plan algebra.
//!
//! A [`Plan`] is a *symbolic*, database-independent expression tree: its
//! leaves name atoms with their (possibly variable) argument terms, and
//! its inner nodes are the independence-exploiting operators of the
//! safe-plan algebra. Evaluation (see [`crate::eval`]) walks the tree
//! under a variable environment and reads each leaf's marginal
//! probability `ν` straight off the unreliable database — no worlds, no
//! lineage.

use qrel_logic::Term;
use std::fmt;

/// A node of the extensional plan algebra.
///
/// Every operator's probability rule is exact *because the compiler only
/// emits it where independence holds*: the query is globally
/// self-join-free, so sibling subtrees touch disjoint relations, and a
/// `Project` root variable occurs in every atom below it, so distinct
/// groundings touch disjoint facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Plan {
    /// `Pr = 1` or `Pr = 0`.
    Const(bool),
    /// A single atom `R(t̄)` (or its negation): `Pr = ν(Rt̄)` under the
    /// current environment, `1 − ν` when negative.
    Literal {
        positive: bool,
        rel: String,
        args: Vec<Term>,
    },
    /// `t₁ = t₂` (or `≠`): deterministic under the environment, so
    /// `Pr ∈ {0, 1}` — independent of everything.
    Equality {
        positive: bool,
        lhs: Term,
        rhs: Term,
    },
    /// Independent join: `Pr = ∏ᵢ Pr[childᵢ]`.
    Join(Vec<Plan>),
    /// Independent union: `Pr = 1 − ∏ᵢ (1 − Pr[childᵢ])`.
    Union(Vec<Plan>),
    /// Independent project `∃x`: `Pr = 1 − ∏_{a ∈ A} (1 − Pr[child[x:=a]])`.
    Project { var: String, child: Box<Plan> },
    /// Complement: `Pr = 1 − Pr[child]`.
    Complement(Box<Plan>),
    /// Nonempty-universe gate: `Pr = 0` when `|A| = 0`, else the child.
    /// Emitted for `∃x̄ φ` whose variables are all vacuous in `φ`.
    Guard(Box<Plan>),
}

impl Plan {
    /// Total number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        match self {
            Plan::Const(_) | Plan::Literal { .. } | Plan::Equality { .. } => 1,
            Plan::Join(cs) | Plan::Union(cs) => 1 + cs.iter().map(Plan::node_count).sum::<usize>(),
            Plan::Project { child, .. } | Plan::Complement(child) | Plan::Guard(child) => {
                1 + child.node_count()
            }
        }
    }

    /// Deterministic multi-line rendering for `qrel explain`: one node
    /// per line, children indented two spaces. No trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        if !out.is_empty() {
            out.push('\n');
        }
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            Plan::Const(b) => out.push_str(&format!("const {b}")),
            Plan::Literal {
                positive,
                rel,
                args,
            } => {
                out.push_str(if *positive { "atom " } else { "neg-atom " });
                out.push_str(rel);
                out.push('(');
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&a.to_string());
                }
                out.push(')');
            }
            Plan::Equality { positive, lhs, rhs } => {
                out.push_str(&format!(
                    "{} {lhs} = {rhs}",
                    if *positive { "eq" } else { "neq" }
                ));
            }
            Plan::Join(cs) => {
                out.push_str("join");
                for c in cs {
                    c.render_into(out, depth + 1);
                }
            }
            Plan::Union(cs) => {
                out.push_str("union");
                for c in cs {
                    c.render_into(out, depth + 1);
                }
            }
            Plan::Project { var, child } => {
                out.push_str(&format!("project {var}"));
                child.render_into(out, depth + 1);
            }
            Plan::Complement(child) => {
                out.push_str("complement");
                child.render_into(out, depth + 1);
            }
            Plan::Guard(child) => {
                out.push_str("guard nonempty-universe");
                child.render_into(out, depth + 1);
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}
