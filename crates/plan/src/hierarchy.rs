//! The classical pairwise hierarchy test for self-join-free conjunctive
//! queries — an *independent* implementation of the safety condition,
//! used by the differential harness and the property tests to
//! cross-check the compiler's accept/decline decisions.

use qrel_logic::{Formula, Term};
use std::collections::BTreeSet;

/// For a self-join-free conjunctive query `∃x̄ (α₁ ∧ … ∧ α_ℓ)` of
/// relational atoms, the syntactic hierarchy condition: for every pair
/// of quantified variables `x, y`, the atom sets `at(x)` and `at(y)`
/// are nested or disjoint. The dichotomy literature proves this
/// condition equivalent to safety, so it must agree with
/// [`crate::compile()`] on every query in the fragment.
///
/// Returns `None` when the formula is outside the fragment (not a
/// conjunction of relational atoms under an `∃` prefix, or not
/// self-join-free) — the test then says nothing.
pub fn pairwise_hierarchical(formula: &Formula) -> Option<bool> {
    // Strip the ∃ prefix; inner binders shadow outer same-named ones.
    let mut vars: Vec<String> = Vec::new();
    let mut body = formula;
    while let Formula::Exists(vs, inner) = body {
        vars.retain(|v| !vs.contains(v));
        vars.extend(vs.iter().cloned());
        body = inner;
    }
    // Flatten the matrix into relational atoms; anything else is
    // outside the fragment.
    let mut atoms: Vec<(&String, &Vec<Term>)> = Vec::new();
    if !collect_atoms(body, &mut atoms) {
        return None;
    }
    let mut rels = BTreeSet::new();
    if !atoms.iter().all(|(rel, _)| rels.insert(rel.as_str())) {
        return None; // self-join
    }
    // at(v): indices of atoms containing quantified variable v.
    let at = |v: &String| -> BTreeSet<usize> {
        atoms
            .iter()
            .enumerate()
            .filter(|(_, (_, args))| args.iter().any(|t| matches!(t, Term::Var(w) if w == v)))
            .map(|(i, _)| i)
            .collect()
    };
    let sets: Vec<BTreeSet<usize>> = vars.iter().map(at).collect();
    for (i, a) in sets.iter().enumerate() {
        for b in sets.iter().skip(i + 1) {
            let nested = a.is_subset(b) || b.is_subset(a);
            if !nested && !a.is_disjoint(b) {
                return Some(false);
            }
        }
    }
    Some(true)
}

/// Flatten a conjunction of relational atoms; `true` iff in-fragment.
fn collect_atoms<'a>(f: &'a Formula, out: &mut Vec<(&'a String, &'a Vec<Term>)>) -> bool {
    match f {
        Formula::True => true,
        Formula::Atom { rel, args } => {
            out.push((rel, args));
            true
        }
        Formula::And(gs) => gs.iter().all(|g| collect_atoms(g, out)),
        _ => false,
    }
}
