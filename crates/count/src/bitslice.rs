//! Bit-parallel (bit-sliced) exact DNF evaluation: 64 worlds per `u64`.
//!
//! The Thm 4.2-style enumerators walk all `2^n` worlds of the lineage.
//! Serial code evaluates one world per iteration; this kernel packs 64
//! worlds into the lanes of a `u64` and evaluates every term against all
//! 64 at once with three bitwise ops, so the satisfaction test costs
//! `terms` instructions per *block* instead of `terms × width` per
//! *world*.
//!
//! **Layout.** Let `n = var_bound`, `low = min(n, 6)`, `L = 2^low ≤ 64`.
//! World `w = block·L + lane`: the `low` least-significant variables take
//! their values from the lane index (variable `v < low` is bit `v` of the
//! lane, realized as the constant lane pattern `PATTERNS[v]`), and the
//! remaining `h = n − low` variables take theirs from `gray(block) =
//! block ^ (block >> 1)`. Gray-coding the block index keeps consecutive
//! blocks one bit apart (cheap for incremental schemes) while remaining a
//! bijection on `0..2^h`, so arbitrary `[start, end)` world ranges—and
//! therefore block-aligned shards—partition the space exactly.
//!
//! **Per-term compilation.** Low literals fold into a single 64-bit
//! `low_mask` (AND of patterns / complements); high literals fold into
//! `hi_pos`/`hi_neg` masks tested once per block. A block's satisfied-lane
//! mask is the OR of `low_mask` over terms whose high masks match, with
//! early exit once all lanes are satisfied.
//!
//! **Probability accumulation** runs on [`FastProb`] — fixed-width dyadic
//! `u128` arithmetic that promotes to `BigRational` only on overflow
//! (exactly, see `qrel-arith::dyadic`). Per block the high-variable
//! weight is an `O(h)` multiply-only product (dyadics are not closed
//! under division, so nothing is ever divided), and the satisfied lanes
//! contribute precomputed lane weights; a fully satisfied block
//! contributes the high weight times the precomputed total lane mass.
//! All arithmetic is exact, so results are bit-identical to the serial
//! `BigRational` engines after gcd normalization, in any summation order.

use qrel_arith::{BigRational, BigUint, FastProb};
use qrel_logic::prop::Dnf;
use qrel_par::{run_shards, shard_ranges_aligned};

/// Lane patterns: bit `j` of `PATTERNS[v]` is bit `v` of lane index `j`.
const PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA, // v=0: lane bit 0
    0xCCCC_CCCC_CCCC_CCCC, // v=1
    0xF0F0_F0F0_F0F0_F0F0, // v=2
    0xFF00_FF00_FF00_FF00, // v=3
    0xFFFF_0000_FFFF_0000, // v=4
    0xFFFF_FFFF_0000_0000, // v=5
];

/// Balanced Gray code: consecutive block indices differ in one bit, and
/// `gray` is a bijection on any `0..2^h`.
#[inline]
fn gray(b: u64) -> u64 {
    b ^ (b >> 1)
}

/// A term compiled against the bit-sliced layout.
struct SlicedTerm {
    /// Lanes (low-variable assignments) satisfying the term's low literals.
    low_mask: u64,
    /// High variables required true / required false, as bits of `gray(block)`.
    hi_pos: u64,
    hi_neg: u64,
}

/// The compiled DNF plus the probability tables shared by every block.
struct Sliced {
    n: usize,
    low: usize,
    terms: Vec<SlicedTerm>,
    /// `lane_weight[j]` = Π over low vars of (bit j set → p_v, else 1−p_v).
    lane_weight: Vec<FastProb>,
    /// High-var weight factors: `(p_v, 1−p_v)` for each of the `h` high vars.
    hi_weight: Vec<(FastProb, FastProb)>,
}

fn compile(dnf: &Dnf, probs: &[BigRational]) -> Sliced {
    let n = dnf.var_bound();
    assert!(
        n <= probs.len(),
        "probability vector does not cover all variables"
    );
    assert!(n < 64, "bit-sliced enumeration limited to 63 variables");
    for p in &probs[..n] {
        assert!(p.is_probability(), "probability out of range");
    }
    let low = n.min(6);
    let lanes = 1usize << low;
    let full = lane_mask(lanes);

    let terms = dnf
        .terms()
        .iter()
        .map(|t| {
            let mut st = SlicedTerm {
                low_mask: full,
                hi_pos: 0,
                hi_neg: 0,
            };
            for l in t {
                let v = l.var as usize;
                if v < low {
                    let pat = PATTERNS[v];
                    st.low_mask &= if l.positive { pat } else { !pat };
                } else {
                    let bit = 1u64 << (v - low);
                    if l.positive {
                        st.hi_pos |= bit;
                    } else {
                        st.hi_neg |= bit;
                    }
                }
            }
            st
        })
        .collect();

    let mut lane_weight = Vec::with_capacity(lanes);
    for j in 0..lanes {
        let mut w = FastProb::one();
        for (v, p) in probs.iter().enumerate().take(low) {
            let f = FastProb::from_rational(p);
            w = w.mul(&if (j >> v) & 1 == 1 { f } else { f.one_minus() });
        }
        lane_weight.push(w);
    }
    let hi_weight = probs
        .iter()
        .take(n)
        .skip(low)
        .map(|p| {
            let f = FastProb::from_rational(p);
            let c = f.one_minus();
            (f, c)
        })
        .collect();

    Sliced {
        n,
        low,
        terms,
        lane_weight,
        hi_weight,
    }
}

#[inline]
fn lane_mask(lanes: usize) -> u64 {
    if lanes >= 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    }
}

impl Sliced {
    fn lanes(&self) -> u64 {
        1u64 << self.low
    }

    /// Satisfied-lane mask for one block (high assignment `hi`), with
    /// early exit once every lane in `valid` is covered.
    #[inline]
    fn block_sat(&self, hi: u64, valid: u64) -> u64 {
        let mut sat = 0u64;
        for t in &self.terms {
            if hi & t.hi_pos == t.hi_pos && hi & t.hi_neg == 0 {
                sat |= t.low_mask;
                if sat & valid == valid {
                    break;
                }
            }
        }
        sat & valid
    }

    /// Π over high vars of their weight under assignment `hi`
    /// (multiply-only: no division, so the dyadic fast path survives).
    fn high_weight(&self, hi: u64) -> FastProb {
        let mut w = FastProb::one();
        for (j, (p, q)) in self.hi_weight.iter().enumerate() {
            w = w.mul(if (hi >> j) & 1 == 1 { p } else { q });
        }
        w
    }

    /// Probability mass of the satisfying worlds with index in
    /// `[start, end)`.
    fn range_probability(&self, start: u64, end: u64) -> FastProb {
        let lanes = self.lanes();
        let full = lane_mask(lanes as usize);
        // Total lane mass = 1 exactly (the low vars' distribution sums
        // out), letting fully satisfied blocks skip the per-lane sum.
        let mut acc = FastProb::zero();
        let mut block = start / lanes;
        let last = end.div_ceil(lanes);
        while block < last {
            let mut valid = full;
            if block == start / lanes {
                valid &= !lane_mask((start % lanes) as usize);
            }
            if block + 1 == last && !end.is_multiple_of(lanes) {
                valid &= lane_mask((end % lanes) as usize);
            }
            let hi = gray(block);
            let sat = self.block_sat(hi, valid);
            if sat != 0 {
                let hw = self.high_weight(hi);
                let low_sum = if sat == full {
                    FastProb::one()
                } else {
                    let mut s = FastProb::zero();
                    let mut m = sat;
                    while m != 0 {
                        let j = m.trailing_zeros() as usize;
                        s = s.add(&self.lane_weight[j]);
                        m &= m - 1;
                    }
                    s
                };
                acc = acc.add(&hw.mul(&low_sum));
            }
            block += 1;
        }
        acc
    }
}

/// Exact DNF probability by bit-sliced world enumeration — same contract
/// as [`crate::dnf_probability_shannon`], different algorithm, bit-equal
/// result.
pub fn dnf_probability_bitslice(dnf: &Dnf, probs: &[BigRational]) -> BigRational {
    if dnf.is_false() {
        return BigRational::zero();
    }
    let s = compile(dnf, probs);
    let total = 1u64 << s.n;
    s.range_probability(0, total).to_rational()
}

/// Probability mass of satisfying worlds with index in `[start, end)`
/// under the bit-sliced world order. `[0, 2^var_bound)` recovers
/// [`dnf_probability_bitslice`]; disjoint ranges sum exactly to the
/// total, which is what the sharded driver and the lane-invariance tests
/// rely on.
pub fn dnf_probability_bitslice_range(
    dnf: &Dnf,
    probs: &[BigRational],
    start: u64,
    end: u64,
) -> BigRational {
    if dnf.is_false() || start >= end {
        return BigRational::zero();
    }
    let s = compile(dnf, probs);
    let total = 1u64 << s.n;
    assert!(end <= total, "world range out of bounds");
    s.range_probability(start, end).to_rational()
}

/// Sharded bit-sliced probability: `[0, 2^n)` is cut into `shards`
/// block-aligned ranges (no 64-lane block straddles a shard), each shard
/// enumerates its range independently, and the exact partial sums are
/// merged in shard order. Exact rational addition is associative, so the
/// result is bit-identical to [`dnf_probability_bitslice`] for every
/// `shards`/`threads` combination.
pub fn dnf_probability_bitslice_sharded(
    dnf: &Dnf,
    probs: &[BigRational],
    shards: usize,
    threads: usize,
) -> BigRational {
    if dnf.is_false() {
        return BigRational::zero();
    }
    let s = compile(dnf, probs);
    let total = 1u64 << s.n;
    let ranges = shard_ranges_aligned(total, shards, s.lanes());
    let partials = run_shards(shards, threads, |shard| {
        let (lo, hi) = ranges[shard];
        s.range_probability(lo, hi).to_rational()
    });
    let mut acc = BigRational::zero();
    for p in &partials {
        acc = acc.add_ref(p);
    }
    acc
}

/// Exact model count over `num_vars` variables by bit-sliced enumeration
/// with per-block popcounts — same contract as
/// [`crate::exact_dnf::dnf_count_models`].
pub fn dnf_count_models_bitslice(dnf: &Dnf, num_vars: usize) -> BigUint {
    assert!(
        dnf.var_bound() <= num_vars,
        "variable count does not cover the formula"
    );
    if dnf.is_false() {
        return BigUint::zero();
    }
    let probs = vec![BigRational::from_ratio(1, 2); dnf.var_bound()];
    let s = compile(dnf, &probs);
    let lanes = s.lanes();
    let full = lane_mask(lanes as usize);
    let blocks = (1u64 << s.n) / lanes;
    let mut count = 0u128;
    for b in 0..blocks {
        count += u128::from(s.block_sat(gray(b), full).count_ones());
    }
    // Variables above var_bound are free: each doubles every model.
    let free = (num_vars - s.n) as u64;
    let mut c = BigUint::from_u128(count);
    c = c.shl_bits(free);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_dnf::{dnf_count_models, dnf_probability_shannon};
    use qrel_logic::prop::Lit;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn random_dnf(rng: &mut StdRng, num_vars: usize, num_terms: usize, k: usize) -> Dnf {
        let mut d = Dnf::new();
        for _ in 0..num_terms {
            let len = rng.gen_range(1..=k);
            let lits: Vec<Lit> = (0..len)
                .map(|_| {
                    let v = rng.gen_range(0..num_vars) as u32;
                    if rng.gen() {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    }
                })
                .collect();
            d.push_term_checked(lits);
        }
        d
    }

    #[test]
    fn gray_is_a_bijection() {
        for h in [0u32, 1, 3, 7] {
            let mut seen: Vec<u64> = (0..1u64 << h).map(gray).collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), 1 << h);
            assert!(seen.iter().all(|&g| g < 1 << h));
        }
    }

    #[test]
    fn lane_patterns_encode_lane_bits() {
        for (v, pat) in PATTERNS.iter().enumerate() {
            for j in 0..64u64 {
                assert_eq!((pat >> j) & 1, (j >> v) & 1, "v={v} j={j}");
            }
        }
    }

    #[test]
    fn trivial_shapes() {
        let probs = vec![r(1, 3); 3];
        assert_eq!(
            dnf_probability_bitslice(&Dnf::new(), &probs),
            BigRational::zero()
        );
        let mut top = Dnf::new();
        top.push_term_checked(vec![]);
        assert_eq!(dnf_probability_bitslice(&top, &probs), BigRational::one());
        // ⊤ with no variables at all.
        assert_eq!(dnf_probability_bitslice(&top, &[]), BigRational::one());
    }

    #[test]
    fn matches_shannon_across_sizes() {
        let mut rng = StdRng::seed_from_u64(64);
        // Sizes straddle the low/high split: below 6 vars (partial lane
        // block), exactly 6, and above (multi-block).
        for n in [1usize, 3, 5, 6, 7, 9, 12] {
            for trial in 0..6 {
                let nt = rng.gen_range(1..7);
                let d = random_dnf(&mut rng, n, nt, 3);
                let probs: Vec<BigRational> =
                    (0..n).map(|_| r(rng.gen_range(0..=8), 8).clone()).collect();
                let expect = dnf_probability_shannon(&d, &probs);
                assert_eq!(
                    dnf_probability_bitslice(&d, &probs),
                    expect,
                    "n={n} trial={trial}"
                );
            }
        }
    }

    #[test]
    fn matches_shannon_on_non_dyadic_probs() {
        // Promotion path: thirds and sevenths never enter the dyadic rep.
        let mut rng = StdRng::seed_from_u64(65);
        for trial in 0..8 {
            let n = rng.gen_range(2..9usize);
            let nt = rng.gen_range(1..6);
            let d = random_dnf(&mut rng, n, nt, 3);
            let probs: Vec<BigRational> = (0..n)
                .map(|_| {
                    r(
                        rng.gen_range(0..=7),
                        [3, 5, 7, 12][rng.gen_range(0..4usize)],
                    )
                })
                .collect();
            let probs: Vec<BigRational> = probs
                .into_iter()
                .map(|p| if p.is_probability() { p } else { r(1, 3) })
                .collect();
            assert_eq!(
                dnf_probability_bitslice(&d, &probs),
                dnf_probability_shannon(&d, &probs),
                "trial={trial}"
            );
        }
    }

    #[test]
    fn ranges_partition_exactly() {
        let mut rng = StdRng::seed_from_u64(66);
        let n = 8usize;
        let d = random_dnf(&mut rng, n, 5, 3);
        let probs: Vec<BigRational> = (0..n).map(|_| r(rng.gen_range(0..=4), 4)).collect();
        let total = dnf_probability_bitslice(&d, &probs);
        // Cuts deliberately not multiples of 64 (mid-block).
        for cuts in [
            vec![0u64, 256],
            vec![0, 100, 256],
            vec![0, 7, 63, 64, 65, 200, 256],
        ] {
            let mut acc = BigRational::zero();
            for w in cuts.windows(2) {
                acc = acc.add_ref(&dnf_probability_bitslice_range(&d, &probs, w[0], w[1]));
            }
            assert_eq!(acc, total, "cuts={cuts:?}");
        }
    }

    #[test]
    fn sharded_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(67);
        for n in [4usize, 7, 11] {
            let d = random_dnf(&mut rng, n, 6, 3);
            let probs: Vec<BigRational> = (0..n).map(|_| r(rng.gen_range(0..=8), 8)).collect();
            let serial = dnf_probability_bitslice(&d, &probs);
            for shards in [1usize, 3, 16, 64] {
                for threads in [1usize, 4] {
                    assert_eq!(
                        dnf_probability_bitslice_sharded(&d, &probs, shards, threads),
                        serial,
                        "n={n} shards={shards} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn count_matches_brute_and_shannon() {
        let mut rng = StdRng::seed_from_u64(68);
        for _ in 0..10 {
            let n = rng.gen_range(1..11usize);
            let nt = rng.gen_range(1..6);
            let d = random_dnf(&mut rng, n, nt, 3);
            let bits = dnf_count_models_bitslice(&d, n);
            assert_eq!(bits.to_u64().unwrap(), d.count_models_brute(n));
            assert_eq!(bits, dnf_count_models(&d, n));
            // Padding with unused variables scales by powers of two.
            let padded = dnf_count_models_bitslice(&d, n + 3);
            assert_eq!(padded, bits.shl_bits(3));
        }
    }
}
