//! Exact propositional model counting (#SAT) by DPLL with unit
//! propagation.
//!
//! This is the independent oracle for Proposition 3.2: the reduction maps
//! #MONOTONE-2SAT instances to expected-error computations, and the test
//! suite checks the two sides agree exactly. Exponential worst case, by
//! necessity — the whole point of the paper is that these counts are
//! #P-hard.

use qrel_logic::mon2sat::Monotone2Sat;
use qrel_logic::prop::{Cnf, Lit, VarId};

/// Count satisfying assignments of `cnf` over variables `0..num_vars`.
///
/// Variables beyond those mentioned in the formula are free and multiply
/// the count by 2 each.
///
/// # Panics
/// Panics if the formula mentions a variable `≥ num_vars`.
pub fn count_models(cnf: &Cnf, num_vars: usize) -> u64 {
    assert!(
        cnf.var_bound() <= num_vars,
        "formula mentions variable beyond num_vars"
    );
    let clauses: Vec<Vec<Lit>> = cnf.clauses().to_vec();
    // assignment: None = unassigned.
    let mut assignment: Vec<Option<bool>> = vec![None; num_vars];
    dpll_count(&clauses, &mut assignment)
}

/// Count satisfying assignments of a monotone 2-CNF instance.
pub fn count_mon2sat(f: &Monotone2Sat) -> u64 {
    count_models(&f.to_cnf(), f.num_vars() as usize)
}

fn dpll_count(clauses: &[Vec<Lit>], assignment: &mut Vec<Option<bool>>) -> u64 {
    // Unit propagation loop. Track which variables we assigned here so we
    // can undo on exit.
    let mut trail: Vec<VarId> = Vec::new();
    loop {
        let mut unit: Option<Lit> = None;
        let mut conflict = false;
        for clause in clauses {
            let mut unassigned: Option<Lit> = None;
            let mut unassigned_count = 0;
            let mut satisfied = false;
            for &l in clause {
                match assignment[l.var as usize] {
                    Some(v) if v == l.positive => {
                        satisfied = true;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        unassigned = Some(l);
                        unassigned_count += 1;
                    }
                }
            }
            if satisfied {
                continue;
            }
            match unassigned_count {
                0 => {
                    conflict = true;
                    break;
                }
                1 => {
                    let l = unassigned.unwrap();
                    if unit.is_none() {
                        unit = Some(l);
                    }
                }
                _ => {}
            }
        }
        if conflict {
            for v in trail {
                assignment[v as usize] = None;
            }
            return 0;
        }
        match unit {
            Some(l) => {
                assignment[l.var as usize] = Some(l.positive);
                trail.push(l.var);
            }
            None => break,
        }
    }

    // Pick a branching variable among those occurring in an unsatisfied
    // clause; prefer the most frequent.
    let mut occurrence = std::collections::HashMap::new();
    let mut all_satisfied = true;
    for clause in clauses {
        let satisfied = clause
            .iter()
            .any(|l| assignment[l.var as usize] == Some(l.positive));
        if satisfied {
            continue;
        }
        all_satisfied = false;
        for &l in clause {
            if assignment[l.var as usize].is_none() {
                *occurrence.entry(l.var).or_insert(0u32) += 1;
            }
        }
    }

    let count = if all_satisfied {
        // Remaining unassigned variables are free.
        let free = assignment.iter().filter(|a| a.is_none()).count();
        1u64 << free
    } else {
        let (&branch_var, _) = occurrence
            .iter()
            .max_by_key(|(_, &c)| c)
            .expect("unsatisfied clause must have an unassigned literal");
        let mut total = 0u64;
        for value in [false, true] {
            assignment[branch_var as usize] = Some(value);
            total += dpll_count(clauses, assignment);
        }
        assignment[branch_var as usize] = None;
        total
    };

    for v in trail {
        assignment[v as usize] = None;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_logic::prop::Cnf;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_cnf_counts_all() {
        assert_eq!(count_models(&Cnf::new(), 5), 32);
        assert_eq!(count_models(&Cnf::new(), 0), 1);
    }

    #[test]
    fn contradiction_counts_zero() {
        let c = Cnf::from_clauses([vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        assert_eq!(count_models(&c, 3), 0);
    }

    #[test]
    fn single_clause() {
        // (x0 | x1) over 2 vars: 3 models.
        let c = Cnf::from_clauses([vec![Lit::pos(0), Lit::pos(1)]]);
        assert_eq!(count_models(&c, 2), 3);
        // Free variable multiplies.
        assert_eq!(count_models(&c, 4), 12);
    }

    #[test]
    fn matches_brute_force_on_random_cnf() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..30 {
            let n = rng.gen_range(3..10usize);
            let m = rng.gen_range(1..12usize);
            let mut cnf = Cnf::new();
            for _ in 0..m {
                let len = rng.gen_range(1..4usize);
                let clause: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = rng.gen_range(0..n) as u32;
                        if rng.gen() {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        }
                    })
                    .collect();
                cnf.push_clause(clause);
            }
            assert_eq!(
                count_models(&cnf, n),
                cnf.count_models_brute(n),
                "trial {trial}: {cnf}"
            );
        }
    }

    #[test]
    fn mon2sat_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            let f = Monotone2Sat::random(8, 10, &mut rng);
            assert_eq!(count_mon2sat(&f), f.count_models_brute());
        }
    }

    #[test]
    fn chain_formula_fibonacci_structure() {
        // (y0|y1)&(y1|y2)&...&(y_{k-1}|y_k): count follows a Fibonacci-like
        // recurrence; spot-check against brute force for several lengths.
        for k in 2..10u32 {
            let f = Monotone2Sat::new(k + 1, (0..k).map(|i| (i, i + 1)).collect());
            assert_eq!(count_mon2sat(&f), f.count_models_brute());
        }
    }

    #[test]
    #[should_panic(expected = "beyond num_vars")]
    fn var_bound_enforced() {
        let c = Cnf::from_clauses([vec![Lit::pos(9)]]);
        count_models(&c, 3);
    }

    #[test]
    fn larger_instance_smoke() {
        // 24 variables, beyond brute-force comfort: just check it runs and
        // result is within the trivially valid range.
        let mut rng = StdRng::seed_from_u64(17);
        let f = Monotone2Sat::random(24, 30, &mut rng);
        let c = count_mon2sat(&f);
        assert!(c <= 1 << 24);
        assert!(c > 0); // all-true always satisfies a monotone formula
    }
}
