//! Counting and estimation substrate.
//!
//! The paper's algorithmic results lean on three computational
//! primitives, all provided here:
//!
//! * **exact #SAT** ([`sharp_sat`]) — a DPLL model counter used as the
//!   independent oracle for the #MONOTONE-2SAT reduction of
//!   Proposition 3.2 (Valiant's #P-complete problem);
//! * **exact DNF probability** ([`exact_dnf`], [`bdd`]) — three
//!   independent exact algorithms (Shannon expansion,
//!   inclusion–exclusion, and ROBDD compilation) for `Prob-DNF`, the
//!   ground truth against which the randomized approximation schemes are
//!   validated;
//! * **Karp–Luby coverage sampling** ([`karp_luby`]) — the FPTRAS for
//!   #DNF (Theorem 5.2) and its weighted variant for Prob-DNF, plus the
//!   [`naive_mc`] baseline it dominates, and the sample-size
//!   [`bounds`] including Lemma 5.11's `t(ξ, ε, δ)`.

pub mod bdd;
pub mod bitslice;
pub mod bounds;
pub mod exact_dnf;
pub mod karp_luby;
pub mod naive_mc;
pub mod sharp_sat;

pub use bdd::{dnf_probability_bdd, Bdd};
pub use bitslice::{
    dnf_count_models_bitslice, dnf_probability_bitslice, dnf_probability_bitslice_range,
    dnf_probability_bitslice_sharded,
};
pub use exact_dnf::{dnf_probability_enum, dnf_probability_ie, dnf_probability_shannon};
pub use karp_luby::{KarpLuby, KarpLubyReport};
pub use naive_mc::{naive_mc_probability, naive_mc_probability_budgeted};
pub use sharp_sat::{count_models, count_mon2sat};
