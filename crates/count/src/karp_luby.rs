//! The Karp–Luby coverage algorithm: an FPTRAS for #DNF (Theorem 5.2)
//! and its weighted generalization for Prob-DNF.
//!
//! Given a DNF `φ = T₁ ∨ … ∨ T_m` over independently-random variables,
//! the union's probability is estimated by importance sampling on the
//! *coverage space* `{(i, x) : x ⊨ Tᵢ}`:
//!
//! 1. `U = Σᵢ w(Tᵢ)` where `w(Tᵢ) = Pr[x ⊨ Tᵢ]` is a product of literal
//!    probabilities (computable exactly);
//! 2. sample a term `i` with probability `w(Tᵢ)/U`, then sample `x`
//!    conditioned on `x ⊨ Tᵢ` (fix the term's literals, draw the rest);
//! 3. the indicator `Y = 1[i = min{ j : x ⊨ Tⱼ }]` has
//!    `E[Y] = Pr[φ]/U ≥ 1/m`,
//!
//! so `U · mean(Y)` is an unbiased estimator whose relative error is
//! controlled with only `O(m · ε⁻² · ln(1/δ))` samples — *independent of
//! how tiny `Pr[φ]` is*, which is exactly where naive Monte Carlo
//! collapses. Counting models of a DNF over `n` variables is the special
//! case `p ≡ 1/2` scaled by `2^n`.

use qrel_arith::BigRational;
use qrel_budget::{Budget, Exhausted, Resource};
use qrel_logic::prop::{Dnf, Lit, PackedDnf};
use qrel_par::{run_shards, run_shards_with, shard_counts, split_seed, DEFAULT_SHARDS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bounds::zero_one_estimator_samples;

/// A prepared Karp–Luby estimator for a fixed DNF and variable
/// distribution.
pub struct KarpLuby {
    /// Terms, each sorted by variable (the [`Dnf`] invariant).
    terms: Vec<Vec<Lit>>,
    /// The same terms compiled to bit masks: the first-satisfied-term
    /// scan runs over packed assignments (64 variables per word) instead
    /// of literal-by-literal branches.
    packed: PackedDnf,
    /// `Pr[x_v = 1]` per variable, as f64 (sampling precision).
    probs: Vec<f64>,
    /// Per term: packed `(set, clear)` masks over the assignment words —
    /// forcing term `i`'s literals is `w = (w & !clear) | set` per word
    /// instead of a branchy per-literal bit write.
    term_masks: Vec<(Vec<u64>, Vec<u64>)>,
    /// Exact term weights `w(Tᵢ)` and their exact sum `U`.
    weights: Vec<BigRational>,
    total_weight: BigRational,
    /// Cumulative weights (f64) for term sampling.
    cumulative: Vec<f64>,
}

/// Outcome of a Karp–Luby run.
#[derive(Debug, Clone)]
pub struct KarpLubyReport {
    /// The estimate of `Pr[φ]`.
    pub estimate: f64,
    /// Number of samples drawn.
    pub samples: u64,
    /// Fraction of samples with `Y = 1` (diagnostic; `≥ 1/m` in
    /// expectation).
    pub hit_rate: f64,
}

impl KarpLuby {
    /// Prepare for the given DNF and per-variable probabilities.
    ///
    /// # Panics
    /// Panics if the probability vector does not cover all variables or
    /// contains values outside `[0,1]`.
    pub fn new(dnf: &Dnf, probs: &[BigRational]) -> Self {
        assert!(
            dnf.var_bound() <= probs.len(),
            "probability vector does not cover all variables"
        );
        for p in probs {
            assert!(p.is_probability(), "probability out of range");
        }
        // Terms with weight zero (a literal that is false with
        // probability 1 under `probs`) contribute nothing to `Pr[φ]` but
        // would poison the coverage sampler: their cumulative-weight
        // interval is a point, yet f64 ties can still select them, and
        // every sample conditioned on one lands on a measure-zero event.
        // Drop them up front; if nothing survives, `Pr[φ] = 0` exactly
        // and `run` short-circuits on the empty term list.
        let mut terms: Vec<Vec<Lit>> = Vec::with_capacity(dnf.num_terms());
        let mut weights = Vec::with_capacity(dnf.num_terms());
        let mut total_weight = BigRational::zero();
        for t in dnf.terms() {
            let mut w = BigRational::one();
            for l in t {
                let pv = &probs[l.var as usize];
                w = w.mul_ref(&if l.positive {
                    pv.clone()
                } else {
                    pv.one_minus()
                });
                if w.is_zero() {
                    break;
                }
            }
            if w.is_zero() {
                continue;
            }
            total_weight = total_weight.add_ref(&w);
            weights.push(w);
            terms.push(t.clone());
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0f64;
        for w in &weights {
            acc += w.to_f64();
            cumulative.push(acc);
        }
        let packed = PackedDnf::from_terms(&terms, probs.len());
        let term_masks = terms
            .iter()
            .map(|t| {
                let mut set = vec![0u64; packed.num_words()];
                let mut clear = vec![0u64; packed.num_words()];
                for l in t {
                    let (word, bit) = (l.var as usize / 64, 1u64 << (l.var % 64));
                    if l.positive {
                        set[word] |= bit;
                    } else {
                        clear[word] |= bit;
                    }
                }
                (set, clear)
            })
            .collect();
        KarpLuby {
            terms,
            packed,
            term_masks,
            probs: probs.iter().map(|p| p.to_f64()).collect(),
            weights,
            total_weight,
            cumulative,
        }
    }

    /// Uniform variable distribution `p ≡ 1/2` (the #DNF case).
    pub fn for_counting(dnf: &Dnf, num_vars: usize) -> Self {
        let half = BigRational::from_ratio(1, 2);
        let probs = vec![half; num_vars.max(dnf.var_bound())];
        Self::new(dnf, &probs)
    }

    /// The exact total term weight `U = Σ w(Tᵢ)` (an upper bound on
    /// `Pr[φ]`, and the scaling constant of the estimator).
    pub fn total_weight(&self) -> &BigRational {
        &self.total_weight
    }

    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Number of samples sufficient for relative error `ε` with failure
    /// probability `δ` (zero-one estimator theorem with `E[Y] ≥ 1/m`).
    pub fn samples_for(&self, eps: f64, delta: f64) -> u64 {
        zero_one_estimator_samples(self.terms.len().max(1) as f64, eps, delta)
    }

    /// Run the estimator with an explicit sample count.
    ///
    /// # Panics
    /// Panics if `samples == 0` (the mean of zero samples is undefined);
    /// trivial formulas short-circuit before the check.
    pub fn run_with_samples<R: Rng>(&self, samples: u64, rng: &mut R) -> KarpLubyReport {
        if self.terms.is_empty() {
            return KarpLubyReport {
                estimate: 0.0,
                samples: 0,
                hit_rate: 0.0,
            };
        }
        if self.terms.iter().any(|t| t.is_empty()) {
            // A tautological term: Pr[φ] = 1 exactly.
            return KarpLubyReport {
                estimate: 1.0,
                samples: 0,
                hit_rate: 1.0,
            };
        }
        assert!(samples > 0, "Karp-Luby needs at least one sample");
        let u = *self.cumulative.last().unwrap();
        let mut hits = 0u64;
        let mut assignment = vec![0u64; self.packed.num_words()];
        for _ in 0..samples {
            if self.sample_once(u, &mut assignment, rng) {
                hits += 1;
            }
        }
        let hit_rate = hits as f64 / samples as f64;
        KarpLubyReport {
            estimate: self.total_weight.to_f64() * hit_rate,
            samples,
            hit_rate,
        }
    }

    /// One coverage-space sample; returns the indicator `Y`. The
    /// assignment buffer is packed (`PackedDnf` layout, one bit per
    /// variable); the RNG draw sequence is identical to the historical
    /// `Vec<bool>` implementation, so estimates are bit-for-bit stable
    /// across the representation change.
    fn sample_once<R: Rng>(&self, u: f64, assignment: &mut [u64], rng: &mut R) -> bool {
        // Sample a term ∝ weight. The exact weights are nonzero by
        // construction, but their f64 images can underflow to a flat
        // cumulative vector — fall back to a uniform term choice rather
        // than piling every sample onto term 0.
        let ti = if u.is_finite() && u > 0.0 {
            let x = rng.gen::<f64>() * u;
            match self.cumulative.binary_search_by(|c| c.total_cmp(&x)) {
                Ok(i) => (i + 1).min(self.terms.len() - 1),
                Err(i) => i.min(self.terms.len() - 1),
            }
        } else {
            rng.gen_range(0..self.terms.len())
        };
        // Sample an assignment conditioned on satisfying term ti. The
        // draws happen per variable in index order — the exact sequence
        // the scalar implementation used, pinned by the determinism
        // suites — but the bits accumulate branchlessly in a local word
        // flushed once per 64 variables, and the term's literals are
        // forced wordwise from its precomputed masks.
        let mut word = 0u64;
        let mut wi = 0usize;
        for (v, p) in self.probs.iter().enumerate() {
            word |= u64::from(rng.gen::<f64>() < *p) << (v % 64);
            if v % 64 == 63 {
                assignment[wi] = word;
                wi += 1;
                word = 0;
            }
        }
        if !self.probs.len().is_multiple_of(64) {
            assignment[wi] = word;
        }
        let (set, clear) = &self.term_masks[ti];
        for ((w, s), c) in assignment.iter_mut().zip(set).zip(clear) {
            *w = (*w & !c) | s;
        }
        // Y = 1 iff ti is the first term satisfied. The forced literals
        // make ti itself satisfied, so the search always succeeds.
        let first = self
            .packed
            .first_satisfied(assignment)
            .expect("sampled assignment satisfies term ti");
        first == ti
    }

    /// Run under a cooperative [`Budget`], charging one
    /// [`Resource::Samples`] per draw. Never panics on exhaustion:
    /// returns the report over the samples actually drawn together with
    /// the trip cause, letting callers use the partial estimate (which
    /// carries no `(ε, δ)` guarantee) as a degraded answer. A run cut
    /// off before any sample reports `estimate = 0, samples = 0`.
    pub fn run_budgeted<R: Rng>(
        &self,
        samples: u64,
        budget: &Budget,
        rng: &mut R,
    ) -> (KarpLubyReport, Option<Exhausted>) {
        if self.terms.is_empty() {
            return (
                KarpLubyReport {
                    estimate: 0.0,
                    samples: 0,
                    hit_rate: 0.0,
                },
                None,
            );
        }
        if self.terms.iter().any(|t| t.is_empty()) {
            return (
                KarpLubyReport {
                    estimate: 1.0,
                    samples: 0,
                    hit_rate: 1.0,
                },
                None,
            );
        }
        let u = *self.cumulative.last().unwrap();
        let mut hits = 0u64;
        let mut drawn = 0u64;
        let mut exhausted = None;
        let mut assignment = vec![0u64; self.packed.num_words()];
        for _ in 0..samples {
            if let Err(e) = budget.charge(Resource::Samples, 1) {
                exhausted = Some(e);
                break;
            }
            if self.sample_once(u, &mut assignment, rng) {
                hits += 1;
            }
            drawn += 1;
        }
        let hit_rate = hits as f64 / drawn.max(1) as f64;
        (
            KarpLubyReport {
                estimate: self.total_weight.to_f64() * hit_rate,
                samples: drawn,
                hit_rate,
            },
            exhausted,
        )
    }

    /// Run with the sample count dictated by `(ε, δ)`.
    pub fn run<R: Rng>(&self, eps: f64, delta: f64, rng: &mut R) -> KarpLubyReport {
        let samples = self.samples_for(eps, delta);
        self.run_with_samples(samples, rng)
    }

    /// Sharded deterministic run: the sample budget is cut into `shards`
    /// fixed pieces, shard `s` draws its share on an independent
    /// `StdRng` seeded with [`split_seed`]`(seed, s)`, and the integer
    /// hit counts are merged exactly. The result depends on `(samples,
    /// seed, shards)` only — **never on `threads`** — so any thread
    /// count reproduces the `threads = 1` run bit for bit.
    ///
    /// # Panics
    /// Panics if `samples == 0` or `shards == 0` (trivial formulas
    /// short-circuit before the check).
    pub fn run_sharded(
        &self,
        samples: u64,
        seed: u64,
        shards: usize,
        threads: usize,
    ) -> KarpLubyReport {
        if self.terms.is_empty() {
            return KarpLubyReport {
                estimate: 0.0,
                samples: 0,
                hit_rate: 0.0,
            };
        }
        if self.terms.iter().any(|t| t.is_empty()) {
            return KarpLubyReport {
                estimate: 1.0,
                samples: 0,
                hit_rate: 1.0,
            };
        }
        assert!(samples > 0, "Karp-Luby needs at least one sample");
        let u = *self.cumulative.last().unwrap();
        let counts = shard_counts(samples, shards);
        let shard_hits = run_shards(shards, threads, |s| {
            let mut rng = StdRng::seed_from_u64(split_seed(seed, s as u64));
            let mut assignment = vec![0u64; self.packed.num_words()];
            let mut hits = 0u64;
            for _ in 0..counts[s] {
                if self.sample_once(u, &mut assignment, &mut rng) {
                    hits += 1;
                }
            }
            hits
        });
        let hits: u64 = shard_hits.iter().sum();
        let hit_rate = hits as f64 / samples as f64;
        KarpLubyReport {
            estimate: self.total_weight.to_f64() * hit_rate,
            samples,
            hit_rate,
        }
    }

    /// [`Self::run`] with the work spread over `threads` workers at the
    /// fixed [`DEFAULT_SHARDS`] shard count.
    pub fn run_parallel(&self, eps: f64, delta: f64, seed: u64, threads: usize) -> KarpLubyReport {
        self.run_sharded(self.samples_for(eps, delta), seed, DEFAULT_SHARDS, threads)
    }

    /// Sharded [`Self::run_budgeted`]: the parent budget is
    /// [`Budget::split`] into one child per shard, each shard charges
    /// its own child (so the total spend is conserved exactly and
    /// independent of scheduling), and the children are settled back in
    /// shard order. Counter-capped runs are as deterministic as the
    /// unbudgeted sharded run; only wall-clock deadlines and external
    /// cancellation introduce scheduling-dependent trip points, exactly
    /// as they do serially. The reported cause is the first tripped
    /// shard's, by shard index.
    pub fn run_budgeted_sharded(
        &self,
        samples: u64,
        budget: &Budget,
        seed: u64,
        shards: usize,
        threads: usize,
    ) -> (KarpLubyReport, Option<Exhausted>) {
        if self.terms.is_empty() {
            return (
                KarpLubyReport {
                    estimate: 0.0,
                    samples: 0,
                    hit_rate: 0.0,
                },
                None,
            );
        }
        if self.terms.iter().any(|t| t.is_empty()) {
            return (
                KarpLubyReport {
                    estimate: 1.0,
                    samples: 0,
                    hit_rate: 1.0,
                },
                None,
            );
        }
        let u = *self.cumulative.last().unwrap();
        let counts = shard_counts(samples, shards);
        let results = run_shards_with(budget.split(shards), threads, |s, child: Budget| {
            let mut rng = StdRng::seed_from_u64(split_seed(seed, s as u64));
            let mut assignment = vec![0u64; self.packed.num_words()];
            let mut hits = 0u64;
            let mut drawn = 0u64;
            let mut exhausted = None;
            for _ in 0..counts[s] {
                if let Err(e) = child.charge(Resource::Samples, 1) {
                    exhausted = Some(e);
                    break;
                }
                if self.sample_once(u, &mut assignment, &mut rng) {
                    hits += 1;
                }
                drawn += 1;
            }
            (hits, drawn, exhausted, child)
        });
        let mut hits = 0u64;
        let mut drawn = 0u64;
        let mut exhausted = None;
        for (h, d, e, child) in results {
            budget.settle(&child);
            hits += h;
            drawn += d;
            if exhausted.is_none() {
                exhausted = e;
            }
        }
        let hit_rate = hits as f64 / drawn.max(1) as f64;
        (
            KarpLubyReport {
                estimate: self.total_weight.to_f64() * hit_rate,
                samples: drawn,
                hit_rate,
            },
            exhausted,
        )
    }

    /// Estimate the model count of a DNF over `num_vars` variables:
    /// `2^n · estimate` under `p ≡ 1/2`.
    pub fn estimate_count<R: Rng>(
        dnf: &Dnf,
        num_vars: usize,
        eps: f64,
        delta: f64,
        rng: &mut R,
    ) -> f64 {
        let kl = Self::for_counting(dnf, num_vars);
        let report = kl.run(eps, delta, rng);
        report.estimate * (num_vars as f64).exp2()
    }

    /// Exact term weights (diagnostics; aligned with the DNF's terms).
    pub fn weights(&self) -> &[BigRational] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_dnf::dnf_probability_shannon;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    #[test]
    fn trivial_formulas() {
        let mut rng = StdRng::seed_from_u64(1);
        let probs = vec![r(1, 2); 2];
        let empty = KarpLuby::new(&Dnf::new(), &probs);
        assert_eq!(empty.run(0.1, 0.1, &mut rng).estimate, 0.0);

        let mut top = Dnf::new();
        top.push_term_checked(vec![]);
        let taut = KarpLuby::new(&top, &probs);
        assert_eq!(taut.run(0.1, 0.1, &mut rng).estimate, 1.0);
    }

    #[test]
    fn matches_exact_on_small_formulas() {
        let mut rng = StdRng::seed_from_u64(2);
        for trial in 0..10 {
            let n = 6usize;
            let mut d = Dnf::new();
            for _ in 0..4 {
                let len = rng.gen_range(1..4usize);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = rng.gen_range(0..n) as u32;
                        if rng.gen() {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        }
                    })
                    .collect();
                d.push_term_checked(lits);
            }
            if d.num_terms() == 0 {
                continue;
            }
            let probs: Vec<BigRational> = (0..n).map(|i| r(1 + (i as i64 % 3), 4)).collect();
            let exact = dnf_probability_shannon(&d, &probs).to_f64();
            let kl = KarpLuby::new(&d, &probs);
            let est = kl.run(0.05, 0.02, &mut rng).estimate;
            let tol = 0.05 * exact.max(0.01) + 0.01;
            assert!(
                (est - exact).abs() <= tol,
                "trial {trial}: estimate {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn low_probability_instance_still_accurate_relative() {
        // A conjunction-like DNF with tiny probability: single term of 12
        // positive literals at p = 1/4 → (1/4)^12 ≈ 6e-8. Karp–Luby is
        // exact here (one term ⇒ Y ≡ 1 ⇒ estimate = U = true probability).
        let term: Vec<Lit> = (0..12).map(Lit::pos).collect();
        let d = Dnf::from_terms([term]);
        let probs = vec![r(1, 4); 12];
        let exact = dnf_probability_shannon(&d, &probs);
        let kl = KarpLuby::new(&d, &probs);
        let mut rng = StdRng::seed_from_u64(3);
        let report = kl.run_with_samples(100, &mut rng);
        assert_eq!(report.hit_rate, 1.0);
        let rel = (report.estimate - exact.to_f64()).abs() / exact.to_f64();
        assert!(rel < 1e-9, "relative error {rel}");
    }

    #[test]
    fn low_probability_multi_term() {
        // Two disjoint low-probability terms; relative accuracy must hold
        // with modest samples (this is the regime where naive MC needs
        // ~1/p ≈ 10^5 samples just to see one hit).
        let d = Dnf::from_terms([
            (0..8).map(Lit::pos).collect::<Vec<_>>(),
            (8..16).map(Lit::pos).collect::<Vec<_>>(),
        ]);
        let probs = vec![r(1, 4); 16];
        let exact = dnf_probability_shannon(&d, &probs).to_f64();
        let kl = KarpLuby::new(&d, &probs);
        let mut rng = StdRng::seed_from_u64(4);
        let est = kl.run(0.05, 0.01, &mut rng).estimate;
        let rel = (est - exact).abs() / exact;
        assert!(
            rel < 0.1,
            "relative error {rel}: est {est} vs exact {exact}"
        );
    }

    #[test]
    fn counting_matches_exact() {
        let d = Dnf::from_terms([
            vec![Lit::pos(0), Lit::pos(1)],
            vec![Lit::neg(2)],
            vec![Lit::pos(3), Lit::neg(0)],
        ]);
        let n = 4;
        let exact = d.count_models_brute(n) as f64;
        let mut rng = StdRng::seed_from_u64(5);
        let est = KarpLuby::estimate_count(&d, n, 0.03, 0.01, &mut rng);
        assert!(
            (est - exact).abs() / exact < 0.05,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn unbiasedness_via_exact_weights() {
        // U must equal the exact sum of term probabilities.
        let d = Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::pos(1), Lit::neg(0)]]);
        let probs = vec![r(1, 3), r(1, 5)];
        let kl = KarpLuby::new(&d, &probs);
        assert_eq!(kl.total_weight(), &r(1, 3).add_ref(&r(2, 15)));
        assert_eq!(kl.weights().len(), 2);
    }

    #[test]
    fn zero_weight_terms_filtered_out() {
        // Term x0 has ν(x0) = 0: it can never hold, so it must not be
        // sampled (regression: a flat stretch of the f64 cumulative
        // vector could select it and skew the hit rate).
        let d = Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::pos(1)]]);
        let probs = vec![r(0, 1), r(1, 2)];
        let kl = KarpLuby::new(&d, &probs);
        assert_eq!(kl.num_terms(), 1);
        assert_eq!(kl.total_weight(), &r(1, 2));
        let mut rng = StdRng::seed_from_u64(31);
        let rep = kl.run(0.05, 0.05, &mut rng);
        assert!((rep.estimate - 0.5).abs() <= 0.05);
    }

    #[test]
    fn negated_certain_literal_is_zero_weight() {
        // ¬x0 with ν(x0) = 1 is the dual zero-weight shape.
        let d = Dnf::from_terms([vec![Lit::neg(0)]]);
        let probs = vec![r(1, 1)];
        let kl = KarpLuby::new(&d, &probs);
        assert_eq!(kl.num_terms(), 0);
        let mut rng = StdRng::seed_from_u64(32);
        let rep = kl.run(0.1, 0.1, &mut rng);
        assert_eq!(rep.estimate, 0.0);
        assert_eq!(rep.hit_rate, 0.0);
    }

    #[test]
    fn all_zero_weight_dnf_reports_probability_zero() {
        // Regression: Pr[φ] = 0 structurally; the run must not divide by
        // a zero total weight, sample degenerate terms, or report a
        // misleading nonzero hit rate.
        let d = Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::pos(1), Lit::neg(2)]]);
        let probs = vec![r(0, 1), r(0, 1), r(1, 2)];
        let kl = KarpLuby::new(&d, &probs);
        assert!(kl.total_weight().is_zero());
        let mut rng = StdRng::seed_from_u64(33);
        let rep = kl.run(0.1, 0.1, &mut rng);
        assert_eq!(rep.estimate, 0.0);
        assert_eq!(rep.hit_rate, 0.0);
        assert_eq!(rep.samples, 0);
    }

    #[test]
    fn budgeted_run_stops_at_sample_cap_with_partial_estimate() {
        use qrel_budget::{Budget, Resource};
        let d = Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::pos(1)]]);
        let probs = vec![r(1, 3), r(1, 3)];
        let kl = KarpLuby::new(&d, &probs);
        let budget = Budget::unlimited().with_max_samples(50);
        let mut rng = StdRng::seed_from_u64(34);
        let (rep, exhausted) = kl.run_budgeted(1_000_000, &budget, &mut rng);
        let e = exhausted.expect("sample budget must trip");
        assert_eq!(e.resource, Resource::Samples);
        assert_eq!(rep.samples, 50);
        // The partial estimate is still a bounded, plausible number.
        assert!(rep.estimate >= 0.0 && rep.estimate <= kl.total_weight().to_f64());
    }

    #[test]
    fn budgeted_run_without_limits_matches_plain_run() {
        use qrel_budget::Budget;
        let d = Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::pos(1), Lit::neg(0)]]);
        let probs = vec![r(1, 3), r(1, 5)];
        let kl = KarpLuby::new(&d, &probs);
        let mut rng1 = StdRng::seed_from_u64(35);
        let mut rng2 = StdRng::seed_from_u64(35);
        let plain = kl.run_with_samples(500, &mut rng1);
        let (budgeted, exhausted) = kl.run_budgeted(500, &Budget::unlimited(), &mut rng2);
        assert!(exhausted.is_none());
        assert_eq!(plain.estimate, budgeted.estimate);
        assert_eq!(plain.samples, budgeted.samples);
    }

    #[test]
    fn sharded_run_is_thread_count_invariant() {
        let d = Dnf::from_terms([
            vec![Lit::pos(0), Lit::neg(1)],
            vec![Lit::pos(2)],
            vec![Lit::neg(0), Lit::pos(3)],
        ]);
        let probs = vec![r(1, 3), r(1, 2), r(1, 5), r(2, 7)];
        let kl = KarpLuby::new(&d, &probs);
        let serial = kl.run_sharded(10_000, 0xC0FFEE, 16, 1);
        for threads in [2usize, 4, 8, 16] {
            let par = kl.run_sharded(10_000, 0xC0FFEE, 16, threads);
            assert_eq!(par.estimate.to_bits(), serial.estimate.to_bits());
            assert_eq!(par.hit_rate.to_bits(), serial.hit_rate.to_bits());
            assert_eq!(par.samples, serial.samples);
        }
    }

    #[test]
    fn sharded_run_matches_exact_probability() {
        let d = Dnf::from_terms([
            vec![Lit::pos(0), Lit::pos(1)],
            vec![Lit::neg(2)],
            vec![Lit::pos(3), Lit::neg(0)],
        ]);
        let probs: Vec<BigRational> = (0..4).map(|i| r(1 + (i as i64 % 3), 4)).collect();
        let exact = dnf_probability_shannon(&d, &probs).to_f64();
        let kl = KarpLuby::new(&d, &probs);
        let est = kl.run_parallel(0.05, 0.02, 99, 4).estimate;
        assert!(
            (est - exact).abs() <= 0.05 * exact + 0.01,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn budgeted_sharded_conserves_the_sample_cap() {
        use qrel_budget::{Budget, Resource};
        let d = Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::pos(1)]]);
        let probs = vec![r(1, 3), r(1, 3)];
        let kl = KarpLuby::new(&d, &probs);
        for threads in [1usize, 4] {
            let budget = Budget::unlimited().with_max_samples(50);
            let (rep, exhausted) = kl.run_budgeted_sharded(1_000_000, &budget, 7, 16, threads);
            let e = exhausted.expect("sample budget must trip");
            assert_eq!(e.resource, Resource::Samples);
            // Split-and-settle accounting: exactly the cap was spent.
            assert_eq!(rep.samples, 50);
            assert_eq!(budget.spent(Resource::Samples), 50);
        }
    }

    #[test]
    fn budgeted_sharded_without_limits_matches_sharded() {
        use qrel_budget::Budget;
        let d = Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::pos(1), Lit::neg(0)]]);
        let probs = vec![r(1, 3), r(1, 5)];
        let kl = KarpLuby::new(&d, &probs);
        let plain = kl.run_sharded(500, 11, 16, 4);
        let budget = Budget::unlimited();
        let (budgeted, exhausted) = kl.run_budgeted_sharded(500, &budget, 11, 16, 4);
        assert!(exhausted.is_none());
        assert_eq!(plain.estimate.to_bits(), budgeted.estimate.to_bits());
        assert_eq!(plain.samples, budgeted.samples);
        assert_eq!(budget.spent(qrel_budget::Resource::Samples), 500);
    }

    #[test]
    fn vectorized_sampling_matches_scalar_reference_bit_for_bit() {
        // The wordwise draw/force path must consume the RNG in the same
        // per-variable order and produce the same indicator as the
        // historical scalar loop (per-bit `set_bit`, per-literal force).
        // Any divergence shifts every later draw and breaks the pinned
        // determinism suites.
        let d = Dnf::from_terms([
            vec![Lit::pos(0), Lit::neg(65)],
            vec![Lit::pos(64), Lit::pos(1)],
            vec![Lit::neg(3), Lit::pos(130)],
        ]);
        // 131 variables: three words, a ragged tail, cross-word terms.
        let probs: Vec<BigRational> = (0..131).map(|i| r(1 + (i as i64 % 3), 4)).collect();
        let kl = KarpLuby::new(&d, &probs);
        let u = *kl.cumulative.last().unwrap();
        let probs_f64: Vec<f64> = probs.iter().map(|p| p.to_f64()).collect();
        let mut fast_rng = StdRng::seed_from_u64(77);
        let mut ref_rng = StdRng::seed_from_u64(77);
        let mut fast_buf = vec![0u64; kl.packed.num_words()];
        let mut ref_buf = vec![0u64; kl.packed.num_words()];
        for round in 0..2_000 {
            let fast = kl.sample_once(u, &mut fast_buf, &mut fast_rng);
            // Scalar reference: identical draw sequence, bit-by-bit.
            let reference = {
                let rng = &mut ref_rng;
                let x = rng.gen::<f64>() * u;
                let ti = match kl.cumulative.binary_search_by(|c| c.total_cmp(&x)) {
                    Ok(i) => (i + 1).min(kl.terms.len() - 1),
                    Err(i) => i.min(kl.terms.len() - 1),
                };
                for (v, p) in probs_f64.iter().enumerate() {
                    PackedDnf::set_bit(&mut ref_buf, v, rng.gen::<f64>() < *p);
                }
                for l in &kl.terms[ti] {
                    PackedDnf::set_bit(&mut ref_buf, l.var as usize, l.positive);
                }
                kl.packed.first_satisfied(&ref_buf).unwrap() == ti
            };
            assert_eq!(fast, reference, "round {round} diverged");
            assert_eq!(fast_buf, ref_buf, "round {round} assignment diverged");
        }
    }

    #[test]
    fn sample_bound_scales_with_terms() {
        let probs = vec![r(1, 2); 4];
        let d1 = Dnf::from_terms([vec![Lit::pos(0)]]);
        let d8 = Dnf::from_terms(
            (0..4)
                .map(|i| vec![Lit::pos(i)])
                .chain((0..4).map(|i| vec![Lit::neg(i)])),
        );
        let k1 = KarpLuby::new(&d1, &probs);
        let k8 = KarpLuby::new(&d8, &probs);
        assert!(k8.samples_for(0.1, 0.1) > k1.samples_for(0.1, 0.1));
    }
}
