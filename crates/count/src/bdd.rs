//! Reduced ordered binary decision diagrams (ROBDDs) for exact weighted
//! model counting.
//!
//! Shannon expansion (in `exact_dnf`) recomputes shared subproblems;
//! compiling the formula into an ROBDD shares them structurally:
//! probability evaluation is then a single linear pass over the DAG
//!
//! ```text
//! P(node) = (1 − p_var)·P(low) + p_var·P(high)
//! ```
//!
//! with skipped variables integrating out to 1. This is the
//! knowledge-compilation approach used by modern probabilistic database
//! engines; here it serves as a third independent exact Prob-DNF oracle
//! (besides Shannon expansion and inclusion–exclusion) and as the "exact
//! but smarter" contender in the estimator-crossover ablation (E10).
//!
//! Implementation: hash-consed node store with the terminals at ids 0/1,
//! memoized `apply` for ∧/∨ and memoized negation, natural variable
//! order `0 < 1 < …` (inputs here are machine-generated groundings, so
//! we do not fight variable-order pathologies).

use qrel_arith::{BigRational, BigUint};
use qrel_logic::prop::{Dnf, Lit, VarId};
use std::collections::HashMap;

/// Node identifier; `0` is ⊥, `1` is ⊤.
pub type NodeId = u32;

/// The ⊥ terminal.
pub const FALSE: NodeId = 0;
/// The ⊤ terminal.
pub const TRUE: NodeId = 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: VarId,
    low: NodeId,
    high: NodeId,
}

/// An ROBDD manager: owns the shared node store.
#[derive(Debug, Default)]
pub struct Bdd {
    nodes: Vec<Node>,
    unique: HashMap<Node, NodeId>,
    and_memo: HashMap<(NodeId, NodeId), NodeId>,
    or_memo: HashMap<(NodeId, NodeId), NodeId>,
    not_memo: HashMap<NodeId, NodeId>,
}

impl Bdd {
    pub fn new() -> Self {
        // Two placeholder records so ids line up; terminals are special-
        // cased everywhere and never dereferenced.
        let sentinel = Node {
            var: VarId::MAX,
            low: 0,
            high: 0,
        };
        Bdd {
            nodes: vec![sentinel, sentinel],
            unique: HashMap::new(),
            and_memo: HashMap::new(),
            or_memo: HashMap::new(),
            not_memo: HashMap::new(),
        }
    }

    fn is_terminal(id: NodeId) -> bool {
        id <= 1
    }

    fn var_of(&self, id: NodeId) -> VarId {
        if Self::is_terminal(id) {
            VarId::MAX // terminals sort after every variable
        } else {
            self.nodes[id as usize].var
        }
    }

    /// Hash-consed, reduced constructor.
    fn mk(&mut self, var: VarId, low: NodeId, high: NodeId) -> NodeId {
        if low == high {
            return low;
        }
        let node = Node { var, low, high };
        if let Some(&id) = self.unique.get(&node) {
            return id;
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(node);
        self.unique.insert(node, id);
        id
    }

    /// The single-variable BDD `x_v`.
    pub fn var(&mut self, v: VarId) -> NodeId {
        self.mk(v, FALSE, TRUE)
    }

    /// The literal `x_v` or `¬x_v`.
    pub fn literal(&mut self, l: Lit) -> NodeId {
        if l.positive {
            self.mk(l.var, FALSE, TRUE)
        } else {
            self.mk(l.var, TRUE, FALSE)
        }
    }

    /// Negation.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        match f {
            FALSE => TRUE,
            TRUE => FALSE,
            _ => {
                if let Some(&r) = self.not_memo.get(&f) {
                    return r;
                }
                let n = self.nodes[f as usize];
                let low = self.not(n.low);
                let high = self.not(n.high);
                let r = self.mk(n.var, low, high);
                self.not_memo.insert(f, r);
                r
            }
        }
    }

    /// Conjunction.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        match (f, g) {
            (FALSE, _) | (_, FALSE) => return FALSE,
            (TRUE, x) | (x, TRUE) => return x,
            _ if f == g => return f,
            _ => {}
        }
        let key = (f.min(g), f.max(g));
        if let Some(&r) = self.and_memo.get(&key) {
            return r;
        }
        let r = self.apply_binary(f, g, true);
        self.and_memo.insert(key, r);
        r
    }

    /// Disjunction.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        match (f, g) {
            (TRUE, _) | (_, TRUE) => return TRUE,
            (FALSE, x) | (x, FALSE) => return x,
            _ if f == g => return f,
            _ => {}
        }
        let key = (f.min(g), f.max(g));
        if let Some(&r) = self.or_memo.get(&key) {
            return r;
        }
        let r = self.apply_binary(f, g, false);
        self.or_memo.insert(key, r);
        r
    }

    fn apply_binary(&mut self, f: NodeId, g: NodeId, is_and: bool) -> NodeId {
        let vf = self.var_of(f);
        let vg = self.var_of(g);
        let var = vf.min(vg);
        let (f_low, f_high) = if vf == var {
            let n = self.nodes[f as usize];
            (n.low, n.high)
        } else {
            (f, f)
        };
        let (g_low, g_high) = if vg == var {
            let n = self.nodes[g as usize];
            (n.low, n.high)
        } else {
            (g, g)
        };
        let low = if is_and {
            self.and(f_low, g_low)
        } else {
            self.or(f_low, g_low)
        };
        let high = if is_and {
            self.and(f_high, g_high)
        } else {
            self.or(f_high, g_high)
        };
        self.mk(var, low, high)
    }

    /// Compile a DNF into the manager, returning its root.
    pub fn from_dnf(&mut self, dnf: &Dnf) -> NodeId {
        let mut root = FALSE;
        for term in dnf.terms() {
            let mut t = TRUE;
            // Build conjunctions from the highest variable down so each
            // `and` is with a literal above the current root — linear.
            for l in term.iter().rev() {
                let lit = self.literal(*l);
                t = self.and(lit, t);
            }
            root = self.or(root, t);
        }
        root
    }

    /// Number of DAG nodes reachable from `f` (excluding terminals).
    pub fn size(&self, f: NodeId) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(id) = stack.pop() {
            if Self::is_terminal(id) || !seen.insert(id) {
                continue;
            }
            let n = self.nodes[id as usize];
            stack.push(n.low);
            stack.push(n.high);
        }
        seen.len()
    }

    /// Exact probability that the function is true when `x_v` is
    /// independently true with probability `probs[v]`.
    pub fn probability(&self, f: NodeId, probs: &[BigRational]) -> BigRational {
        let mut memo: HashMap<NodeId, BigRational> = HashMap::new();
        self.prob_rec(f, probs, &mut memo)
    }

    fn prob_rec(
        &self,
        f: NodeId,
        probs: &[BigRational],
        memo: &mut HashMap<NodeId, BigRational>,
    ) -> BigRational {
        match f {
            FALSE => BigRational::zero(),
            TRUE => BigRational::one(),
            _ => {
                if let Some(p) = memo.get(&f) {
                    return p.clone();
                }
                let n = self.nodes[f as usize];
                let pv = &probs[n.var as usize];
                let low = self.prob_rec(n.low, probs, memo);
                let high = self.prob_rec(n.high, probs, memo);
                let p = pv.one_minus().mul_ref(&low).add_ref(&pv.mul_ref(&high));
                memo.insert(f, p.clone());
                p
            }
        }
    }

    /// Exact model count over `num_vars` variables.
    pub fn count_models(&self, f: NodeId, num_vars: usize) -> BigUint {
        let half = BigRational::from_ratio(1, 2);
        let probs = vec![half; num_vars];
        let p = self.probability(f, &probs);
        let scaled = p.mul_ref(&BigRational::new(
            qrel_arith::BigInt::from_biguint(BigUint::one().shl_bits(num_vars as u64)),
            qrel_arith::BigInt::one(),
        ));
        assert!(scaled.is_integer(), "count must be integral");
        scaled.numer().magnitude().clone()
    }

    /// Evaluate under a total assignment.
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> bool {
        let mut id = f;
        while !Self::is_terminal(id) {
            let n = self.nodes[id as usize];
            id = if assignment[n.var as usize] {
                n.high
            } else {
                n.low
            };
        }
        id == TRUE
    }

    /// Total nodes allocated in the manager (diagnostic).
    pub fn allocated(&self) -> usize {
        self.nodes.len() - 2
    }
}

/// Exact Prob-DNF via BDD compilation — the third independent oracle.
pub fn dnf_probability_bdd(dnf: &Dnf, probs: &[BigRational]) -> BigRational {
    assert!(
        dnf.var_bound() <= probs.len(),
        "probability vector does not cover all variables"
    );
    let mut bdd = Bdd::new();
    let root = bdd.from_dnf(dnf);
    bdd.probability(root, probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_dnf::dnf_probability_shannon;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    #[test]
    fn terminals_and_literals() {
        let mut b = Bdd::new();
        let x = b.var(0);
        assert_ne!(x, FALSE);
        assert!(b.eval(x, &[true]));
        assert!(!b.eval(x, &[false]));
        let nx = b.not(x);
        assert!(b.eval(nx, &[false]));
        // Reduction: ¬¬x = x (hash-consed to the same node).
        assert_eq!(b.not(nx), x);
    }

    #[test]
    fn contradiction_and_tautology_collapse() {
        let mut b = Bdd::new();
        let x = b.var(0);
        let nx = b.not(x);
        assert_eq!(b.and(x, nx), FALSE);
        assert_eq!(b.or(x, nx), TRUE);
    }

    #[test]
    fn sharing_across_terms() {
        // (x0∧x2) ∨ (x1∧x2) shares the x2 subgraph.
        let mut b = Bdd::new();
        let d = Dnf::from_terms([
            vec![Lit::pos(0), Lit::pos(2)],
            vec![Lit::pos(1), Lit::pos(2)],
        ]);
        let root = b.from_dnf(&d);
        assert!(b.size(root) <= 3, "size {}", b.size(root));
    }

    #[test]
    fn probability_simple() {
        let mut b = Bdd::new();
        let d = Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::pos(1)]]);
        let root = b.from_dnf(&d);
        // P(x0 ∨ x1) with p = 1/2: 3/4.
        assert_eq!(b.probability(root, &[r(1, 2), r(1, 2)]), r(3, 4));
    }

    #[test]
    fn agrees_with_shannon_on_random_dnf() {
        let mut rng = StdRng::seed_from_u64(71);
        for trial in 0..30 {
            let n = rng.gen_range(2..9usize);
            let mut d = Dnf::new();
            for _ in 0..rng.gen_range(1..7) {
                let len = rng.gen_range(1..4usize);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = rng.gen_range(0..n) as u32;
                        if rng.gen() {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        }
                    })
                    .collect();
                d.push_term_checked(lits);
            }
            let probs: Vec<BigRational> = (0..n).map(|_| r(rng.gen_range(0..=5), 5)).collect();
            assert_eq!(
                dnf_probability_bdd(&d, &probs),
                dnf_probability_shannon(&d, &probs),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn model_counting_matches_brute_force() {
        let mut rng = StdRng::seed_from_u64(72);
        for _ in 0..15 {
            let n = rng.gen_range(2..10usize);
            let mut d = Dnf::new();
            for _ in 0..rng.gen_range(1..6) {
                let len = rng.gen_range(1..4usize);
                let lits: Vec<Lit> = (0..len)
                    .map(|_| {
                        let v = rng.gen_range(0..n) as u32;
                        if rng.gen() {
                            Lit::pos(v)
                        } else {
                            Lit::neg(v)
                        }
                    })
                    .collect();
                d.push_term_checked(lits);
            }
            let mut b = Bdd::new();
            let root = b.from_dnf(&d);
            assert_eq!(
                b.count_models(root, n).to_u64(),
                Some(d.count_models_brute(n))
            );
        }
    }

    #[test]
    fn eval_agrees_with_dnf_eval() {
        let d = Dnf::from_terms([vec![Lit::pos(0), Lit::neg(1)], vec![Lit::pos(2)]]);
        let mut b = Bdd::new();
        let root = b.from_dnf(&d);
        for mask in 0u8..8 {
            let a = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
            assert_eq!(b.eval(root, &a), d.eval(&a), "mask {mask}");
        }
    }

    #[test]
    fn canonical_equal_functions_same_node() {
        // (x0 ∨ x1) built two ways lands on the same node id.
        let mut b = Bdd::new();
        let x0 = b.var(0);
        let x1 = b.var(1);
        let a = b.or(x0, x1);
        let d = Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::pos(1)]]);
        let c = b.from_dnf(&d);
        assert_eq!(a, c);
        // De Morgan: ¬(¬x0 ∧ ¬x1) == x0 ∨ x1.
        let nx0 = b.not(x0);
        let nx1 = b.not(x1);
        let conj = b.and(nx0, nx1);
        let dm = b.not(conj);
        assert_eq!(dm, a);
    }

    #[test]
    fn linear_sized_for_disjoint_terms() {
        // k disjoint positive terms: BDD size linear in total literals.
        let k = 10;
        let terms: Vec<Vec<Lit>> = (0..k)
            .map(|i| vec![Lit::pos(2 * i), Lit::pos(2 * i + 1)])
            .collect();
        let d = Dnf::from_terms(terms);
        let mut b = Bdd::new();
        let root = b.from_dnf(&d);
        assert!(b.size(root) <= 3 * k as usize, "size {}", b.size(root));
    }
}
