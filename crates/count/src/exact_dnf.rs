//! Exact `Prob-DNF`: the probability that a DNF formula is true when each
//! variable is independently true with a given probability.
//!
//! Two independent exact algorithms are provided so each can serve as an
//! oracle for the other (and both for the randomized schemes):
//!
//! * [`dnf_probability_shannon`] — Shannon expansion on variables with
//!   restriction simplification; worst-case exponential in the variable
//!   count but fast when terms collapse early;
//! * [`dnf_probability_ie`] — inclusion–exclusion over terms; exponential
//!   in the *term* count (use ≤ ~20 terms).
//!
//! Model counting for #DNF is the special case `p ≡ 1/2` times `2^n`.

use qrel_arith::{BigInt, BigRational, BigUint};
use qrel_logic::prop::{Dnf, Lit, VarId};

/// Exact probability by Shannon expansion.
///
/// `probs[v]` is `Pr[x_v = true]`; every variable of the formula must be
/// covered.
pub fn dnf_probability_shannon(dnf: &Dnf, probs: &[BigRational]) -> BigRational {
    assert!(
        dnf.var_bound() <= probs.len(),
        "probability vector does not cover all variables"
    );
    for p in probs {
        assert!(p.is_probability(), "probability out of range");
    }
    let terms: Vec<Vec<Lit>> = dnf.terms().to_vec();
    shannon(&terms, probs)
}

fn shannon(terms: &[Vec<Lit>], probs: &[BigRational]) -> BigRational {
    if terms.is_empty() {
        return BigRational::zero();
    }
    if terms.iter().any(|t| t.is_empty()) {
        return BigRational::one();
    }
    // Branch on the most frequent variable.
    let mut occurrence = std::collections::HashMap::new();
    for t in terms {
        for l in t {
            *occurrence.entry(l.var).or_insert(0u32) += 1;
        }
    }
    let (&var, _) = occurrence.iter().max_by_key(|(_, &c)| c).unwrap();
    let p = &probs[var as usize];

    let mut total = BigRational::zero();
    for value in [true, false] {
        let weight = if value { p.clone() } else { p.one_minus() };
        if weight.is_zero() {
            continue;
        }
        let restricted = restrict(terms, var, value);
        let sub = shannon(&restricted, probs);
        total = total.add_ref(&weight.mul_ref(&sub));
    }
    total
}

/// Restrict a term list by `x_var := value`, dropping falsified terms and
/// satisfied literals.
fn restrict(terms: &[Vec<Lit>], var: VarId, value: bool) -> Vec<Vec<Lit>> {
    let mut out = Vec::with_capacity(terms.len());
    'terms: for t in terms {
        let mut nt = Vec::with_capacity(t.len());
        for &l in t {
            if l.var == var {
                if l.positive != value {
                    continue 'terms; // literal falsified → term dead
                }
                // literal satisfied → drop it
            } else {
                nt.push(l);
            }
        }
        if nt.is_empty() {
            return vec![vec![]]; // a satisfied term → whole DNF true
        }
        out.push(nt);
    }
    out
}

/// Exact probability by inclusion–exclusion over terms:
/// `Pr[⋁ Tᵢ] = Σ_{∅≠S} (−1)^{|S|+1} Pr[⋀_{i∈S} Tᵢ]`.
///
/// # Panics
/// Panics if the formula has more than 25 terms (2^m subsets).
pub fn dnf_probability_ie(dnf: &Dnf, probs: &[BigRational]) -> BigRational {
    assert!(
        dnf.var_bound() <= probs.len(),
        "probability vector does not cover all variables"
    );
    let m = dnf.num_terms();
    assert!(m <= 25, "inclusion-exclusion limited to 25 terms");
    let terms = dnf.terms();
    let mut total = BigRational::zero();
    for mask in 1u32..(1 << m) {
        // Conjunction of the selected terms: consistent merge or zero.
        let mut lits: Vec<Lit> = Vec::new();
        for (i, t) in terms.iter().enumerate() {
            if (mask >> i) & 1 == 1 {
                lits.extend_from_slice(t);
            }
        }
        lits.sort();
        lits.dedup();
        let mut consistent = true;
        for w in lits.windows(2) {
            if w[0].var == w[1].var {
                consistent = false;
                break;
            }
        }
        if !consistent {
            continue;
        }
        let mut p = BigRational::one();
        for l in &lits {
            let pv = &probs[l.var as usize];
            p = p.mul_ref(&if l.positive {
                pv.clone()
            } else {
                pv.one_minus()
            });
        }
        if mask.count_ones() % 2 == 1 {
            total = total.add_ref(&p);
        } else {
            total = total.sub_ref(&p);
        }
    }
    total
}

/// Exact probability by serial per-world enumeration: walk all
/// `2^var_bound` worlds in Gray-code order, maintaining the world weight
/// with one rational multiply and one divide per step, and add the
/// weight of every satisfying world.
///
/// This is the honest serial baseline the bit-sliced kernel
/// (`crate::bitslice`) is measured against in E3/E5: same asymptotics
/// (`O(2^n)` worlds), one world per iteration instead of 64 per lane
/// word. Variables with probability 0 or 1 are pinned to their forced
/// value (so the incremental `p/(1−p)` weight updates never divide by
/// zero) and only the remaining free variables are enumerated.
pub fn dnf_probability_enum(dnf: &Dnf, probs: &[BigRational]) -> BigRational {
    assert!(
        dnf.var_bound() <= probs.len(),
        "probability vector does not cover all variables"
    );
    for p in probs {
        assert!(p.is_probability(), "probability out of range");
    }
    if dnf.is_false() {
        return BigRational::zero();
    }
    let n = dnf.var_bound();
    assert!(n < 64, "per-world enumeration limited to 63 variables");

    let mut assignment = vec![false; n];
    let mut free: Vec<usize> = Vec::with_capacity(n);
    let mut weight = BigRational::one(); // weight of the all-false start
    for (v, p) in probs.iter().enumerate().take(n) {
        if p.is_one() {
            assignment[v] = true;
        } else if !p.is_zero() {
            free.push(v);
            weight = weight.mul_ref(&p.one_minus());
        }
    }
    // Flip ratios for free vars: ×p/(1−p) when turning on, inverse off.
    let ratios: Vec<(BigRational, BigRational)> = free
        .iter()
        .map(|&v| {
            let p = &probs[v];
            let q = p.one_minus();
            (p.div_ref(&q), q.div_ref(p))
        })
        .collect();

    let mut total = BigRational::zero();
    if dnf.eval(&assignment) {
        total = total.add_ref(&weight);
    }
    for i in 1u64..(1u64 << free.len()) {
        // Gray-code step: exactly one free variable flips per world.
        let j = i.trailing_zeros() as usize;
        let v = free[j];
        assignment[v] = !assignment[v];
        weight = weight.mul_ref(if assignment[v] {
            &ratios[j].0
        } else {
            &ratios[j].1
        });
        if dnf.eval(&assignment) {
            total = total.add_ref(&weight);
        }
    }
    total
}

/// Exact model count of a DNF over `num_vars` variables, via Shannon
/// expansion with `p ≡ 1/2`: `#models = 2^n · Pr_{1/2}[φ]`.
pub fn dnf_count_models(dnf: &Dnf, num_vars: usize) -> BigUint {
    let half = BigRational::from_ratio(1, 2);
    let probs = vec![half; num_vars];
    let p = dnf_probability_shannon(dnf, &probs);
    let scaled = p.mul_ref(&BigRational::new(
        BigInt::from_biguint(BigUint::from_u64(1).shl_bits(num_vars as u64)),
        BigInt::one(),
    ));
    assert!(scaled.is_integer(), "count must be integral");
    scaled.numer().magnitude().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_logic::prop::Dnf;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn random_dnf(rng: &mut StdRng, num_vars: usize, num_terms: usize, k: usize) -> Dnf {
        let mut d = Dnf::new();
        for _ in 0..num_terms {
            let len = rng.gen_range(1..=k);
            let lits: Vec<Lit> = (0..len)
                .map(|_| {
                    let v = rng.gen_range(0..num_vars) as u32;
                    if rng.gen() {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    }
                })
                .collect();
            d.push_term_checked(lits);
        }
        d
    }

    /// Brute-force probability oracle.
    fn brute(dnf: &Dnf, probs: &[BigRational]) -> BigRational {
        let n = probs.len();
        let mut total = BigRational::zero();
        for mask in 0u64..(1 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| (mask >> i) & 1 == 1).collect();
            if dnf.eval(&assignment) {
                let mut p = BigRational::one();
                for (i, &b) in assignment.iter().enumerate() {
                    p = p.mul_ref(&if b {
                        probs[i].clone()
                    } else {
                        probs[i].one_minus()
                    });
                }
                total = total.add_ref(&p);
            }
        }
        total
    }

    #[test]
    fn trivial_cases() {
        let probs = vec![r(1, 3); 3];
        assert_eq!(
            dnf_probability_shannon(&Dnf::new(), &probs),
            BigRational::zero()
        );
        let mut top = Dnf::new();
        top.push_term_checked(vec![]);
        assert_eq!(dnf_probability_shannon(&top, &probs), BigRational::one());
        assert_eq!(dnf_probability_ie(&top, &probs), BigRational::one());
    }

    #[test]
    fn single_term() {
        // x0 & !x1 with p0=1/3, p1=1/4 → 1/3 · 3/4 = 1/4.
        let d = Dnf::from_terms([vec![Lit::pos(0), Lit::neg(1)]]);
        let probs = vec![r(1, 3), r(1, 4)];
        assert_eq!(dnf_probability_shannon(&d, &probs), r(1, 4));
        assert_eq!(dnf_probability_ie(&d, &probs), r(1, 4));
    }

    #[test]
    fn overlapping_terms() {
        // x0 | x1 with p=1/2 each → 3/4.
        let d = Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::pos(1)]]);
        let probs = vec![r(1, 2), r(1, 2)];
        assert_eq!(dnf_probability_shannon(&d, &probs), r(3, 4));
        assert_eq!(dnf_probability_ie(&d, &probs), r(3, 4));
    }

    #[test]
    fn shannon_ie_and_brute_agree_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(5);
        for trial in 0..25 {
            let n = rng.gen_range(2..8usize);
            let nt = rng.gen_range(1..6);
            let d = random_dnf(&mut rng, n, nt, 3);
            let probs: Vec<BigRational> =
                (0..n).map(|_| r(rng.gen_range(0..=6), 6).clone()).collect();
            let s = dnf_probability_shannon(&d, &probs);
            let ie = dnf_probability_ie(&d, &probs);
            let b = brute(&d, &probs);
            assert_eq!(s, b, "shannon vs brute, trial {trial}");
            assert_eq!(ie, b, "ie vs brute, trial {trial}");
        }
    }

    #[test]
    fn extreme_probabilities() {
        let d = Dnf::from_terms([vec![Lit::pos(0), Lit::pos(1)]]);
        assert_eq!(
            dnf_probability_shannon(&d, &[r(1, 1), r(1, 1)]),
            BigRational::one()
        );
        assert_eq!(
            dnf_probability_shannon(&d, &[r(0, 1), r(1, 1)]),
            BigRational::zero()
        );
    }

    #[test]
    fn model_counting_special_case() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..15 {
            let n = rng.gen_range(2..10usize);
            let nt = rng.gen_range(1..6);
            let d = random_dnf(&mut rng, n, nt, 3);
            assert_eq!(
                dnf_count_models(&d, n).to_u64().unwrap(),
                d.count_models_brute(n)
            );
        }
    }

    #[test]
    fn enum_matches_brute_including_pinned_vars() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let n = rng.gen_range(2..9usize);
            let nt = rng.gen_range(1..6);
            let d = random_dnf(&mut rng, n, nt, 3);
            // Denominator 6 gives a mix of 0, 1, and interior values, so
            // the pinning path is exercised regularly.
            let probs: Vec<BigRational> = (0..n).map(|_| r(rng.gen_range(0..=6), 6)).collect();
            assert_eq!(
                dnf_probability_enum(&d, &probs),
                brute(&d, &probs),
                "trial {trial}"
            );
        }
        assert_eq!(
            dnf_probability_enum(&Dnf::new(), &[r(1, 2)]),
            BigRational::zero()
        );
        let mut top = Dnf::new();
        top.push_term_checked(vec![]);
        assert_eq!(dnf_probability_enum(&top, &[]), BigRational::one());
    }

    #[test]
    fn probability_vector_coverage_enforced() {
        let d = Dnf::from_terms([vec![Lit::pos(5)]]);
        let probs = vec![r(1, 2); 3];
        let result = std::panic::catch_unwind(|| dnf_probability_shannon(&d, &probs));
        assert!(result.is_err());
    }
}
