//! Naive Monte-Carlo estimation of formula probabilities — the baseline
//! Karp–Luby dominates.
//!
//! Sampling assignments from the product distribution and averaging the
//! indicator gives an *additive* (ε, δ) guarantee with Hoeffding's
//! `t = ⌈ln(2/δ)/(2ε²)⌉` samples, but its *relative* accuracy collapses
//! when `Pr[φ]` is small: detecting `p ≈ 0` at relative error ε needs on
//! the order of `1/p` samples. Experiment E10 measures this crossover.

use qrel_arith::BigRational;
use qrel_budget::{Budget, Exhausted, Resource};
use qrel_logic::prop::{Dnf, PackedDnf};
use qrel_par::{run_shards, shard_counts, split_seed};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::bounds::hoeffding_samples;

/// Estimate `Pr[φ]` by naive sampling with an explicit sample count.
///
/// # Panics
/// Panics if `samples == 0`: the mean of zero samples is undefined, and
/// silently reporting `0.0` would be indistinguishable from a genuine
/// all-miss run (callers that may legitimately run out of samples use
/// [`naive_mc_probability_budgeted`], which reports the shortfall as an
/// explicit [`Exhausted`] cause instead).
pub fn naive_mc_probability_with_samples<R: Rng>(
    dnf: &Dnf,
    probs: &[BigRational],
    samples: u64,
    rng: &mut R,
) -> f64 {
    assert!(
        dnf.var_bound() <= probs.len(),
        "probability vector does not cover all variables"
    );
    assert!(samples > 0, "naive MC needs at least one sample");
    let pf: Vec<f64> = probs.iter().map(|p| p.to_f64()).collect();
    // Packed assignments: the term scan is lane-masked (64 vars per
    // word); the per-variable RNG draw order is unchanged, so estimates
    // are bit-identical to the historical Vec<bool> path.
    let packed = PackedDnf::new(dnf, pf.len());
    let mut hits = 0u64;
    let mut assignment = vec![0u64; packed.num_words()];
    for _ in 0..samples {
        for (v, p) in pf.iter().enumerate() {
            PackedDnf::set_bit(&mut assignment, v, rng.gen::<f64>() < *p);
        }
        if packed.eval_words(&assignment) {
            hits += 1;
        }
    }
    hits as f64 / samples as f64
}

/// Sharded deterministic naive MC: the sample budget is cut into
/// `shards` fixed pieces, each drawn on an independent seed-split
/// `StdRng`, and integer hit counts are merged exactly — the result
/// depends on `(samples, seed, shards)` but never on `threads`.
///
/// # Panics
/// Panics if `samples == 0` or `shards == 0`.
pub fn naive_mc_probability_sharded(
    dnf: &Dnf,
    probs: &[BigRational],
    samples: u64,
    seed: u64,
    shards: usize,
    threads: usize,
) -> f64 {
    assert!(
        dnf.var_bound() <= probs.len(),
        "probability vector does not cover all variables"
    );
    assert!(samples > 0, "naive MC needs at least one sample");
    let pf: Vec<f64> = probs.iter().map(|p| p.to_f64()).collect();
    let packed = PackedDnf::new(dnf, pf.len());
    let counts = shard_counts(samples, shards);
    let shard_hits = run_shards(shards, threads, |s| {
        let mut rng = StdRng::seed_from_u64(split_seed(seed, s as u64));
        let mut assignment = vec![0u64; packed.num_words()];
        let mut hits = 0u64;
        for _ in 0..counts[s] {
            for (v, p) in pf.iter().enumerate() {
                PackedDnf::set_bit(&mut assignment, v, rng.gen::<f64>() < *p);
            }
            if packed.eval_words(&assignment) {
                hits += 1;
            }
        }
        hits
    });
    shard_hits.iter().sum::<u64>() as f64 / samples as f64
}

/// Budgeted naive sampling: charges one [`Resource::Samples`] per draw
/// and stops early when the budget trips, returning the mean over the
/// samples actually drawn (guarantee-free once exhausted) plus the trip
/// cause and the draw count.
pub fn naive_mc_probability_budgeted<R: Rng>(
    dnf: &Dnf,
    probs: &[BigRational],
    samples: u64,
    budget: &Budget,
    rng: &mut R,
) -> (f64, u64, Option<Exhausted>) {
    assert!(
        dnf.var_bound() <= probs.len(),
        "probability vector does not cover all variables"
    );
    let pf: Vec<f64> = probs.iter().map(|p| p.to_f64()).collect();
    let packed = PackedDnf::new(dnf, pf.len());
    let mut hits = 0u64;
    let mut drawn = 0u64;
    let mut exhausted = None;
    let mut assignment = vec![0u64; packed.num_words()];
    for _ in 0..samples {
        if let Err(e) = budget.charge(Resource::Samples, 1) {
            exhausted = Some(e);
            break;
        }
        for (v, p) in pf.iter().enumerate() {
            PackedDnf::set_bit(&mut assignment, v, rng.gen::<f64>() < *p);
        }
        if packed.eval_words(&assignment) {
            hits += 1;
        }
        drawn += 1;
    }
    (hits as f64 / drawn.max(1) as f64, drawn, exhausted)
}

/// Estimate `Pr[φ]` with the additive-(ε, δ) Hoeffding sample count.
pub fn naive_mc_probability<R: Rng>(
    dnf: &Dnf,
    probs: &[BigRational],
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> f64 {
    let samples = hoeffding_samples(eps, delta);
    naive_mc_probability_with_samples(dnf, probs, samples, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_dnf::dnf_probability_shannon;
    use qrel_logic::prop::Lit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    #[test]
    fn additive_accuracy_on_moderate_probability() {
        let d = Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::pos(1), Lit::neg(2)]]);
        let probs = vec![r(1, 3), r(1, 2), r(1, 4)];
        let exact = dnf_probability_shannon(&d, &probs).to_f64();
        let mut rng = StdRng::seed_from_u64(21);
        let est = naive_mc_probability(&d, &probs, 0.02, 0.01, &mut rng);
        assert!((est - exact).abs() < 0.02, "est {est} vs exact {exact}");
    }

    #[test]
    fn misses_tiny_probability_with_few_samples() {
        // Pr[φ] = (1/4)^10 ≈ 1e-6: a few thousand naive samples will
        // essentially always report exactly 0 — the failure mode that
        // motivates Karp–Luby.
        let d = Dnf::from_terms([(0..10).map(Lit::pos).collect::<Vec<_>>()]);
        let probs = vec![r(1, 4); 10];
        let mut rng = StdRng::seed_from_u64(22);
        let est = naive_mc_probability_with_samples(&d, &probs, 2000, &mut rng);
        assert_eq!(est, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_is_an_error_not_a_fake_zero() {
        // Regression: this used to return 0.0 via `samples.max(1)`,
        // indistinguishable from a genuine all-miss estimate.
        let d = Dnf::from_terms([vec![Lit::pos(0)]]);
        let probs = vec![r(1, 2)];
        let mut rng = StdRng::seed_from_u64(24);
        naive_mc_probability_with_samples(&d, &probs, 0, &mut rng);
    }

    #[test]
    fn budgeted_zero_draws_reports_exhaustion_not_an_estimate() {
        // The budgeted path is the sanctioned way to end up with zero
        // samples: the cause says so explicitly.
        let d = Dnf::from_terms([vec![Lit::pos(0)]]);
        let probs = vec![r(1, 2)];
        let budget = Budget::unlimited().with_max_samples(0);
        let mut rng = StdRng::seed_from_u64(25);
        let (_, drawn, exhausted) =
            naive_mc_probability_budgeted(&d, &probs, 100, &budget, &mut rng);
        assert_eq!(drawn, 0);
        assert_eq!(exhausted.unwrap().resource, Resource::Samples);
    }

    #[test]
    fn sharded_is_thread_count_invariant_and_accurate() {
        let d = Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::pos(1), Lit::neg(2)]]);
        let probs = vec![r(1, 3), r(1, 2), r(1, 4)];
        let exact = dnf_probability_shannon(&d, &probs).to_f64();
        let serial = naive_mc_probability_sharded(&d, &probs, 40_000, 26, 16, 1);
        for threads in [2usize, 4, 8] {
            let par = naive_mc_probability_sharded(&d, &probs, 40_000, 26, 16, threads);
            assert_eq!(par.to_bits(), serial.to_bits());
        }
        assert!((serial - exact).abs() < 0.02, "est {serial} vs {exact}");
    }

    #[test]
    fn zero_and_one_formulas() {
        let probs = vec![r(1, 2); 2];
        let mut rng = StdRng::seed_from_u64(23);
        assert_eq!(
            naive_mc_probability_with_samples(&Dnf::new(), &probs, 100, &mut rng),
            0.0
        );
        let mut top = Dnf::new();
        top.push_term_checked(vec![]);
        assert_eq!(
            naive_mc_probability_with_samples(&top, &probs, 100, &mut rng),
            1.0
        );
    }
}
