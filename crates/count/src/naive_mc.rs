//! Naive Monte-Carlo estimation of formula probabilities — the baseline
//! Karp–Luby dominates.
//!
//! Sampling assignments from the product distribution and averaging the
//! indicator gives an *additive* (ε, δ) guarantee with Hoeffding's
//! `t = ⌈ln(2/δ)/(2ε²)⌉` samples, but its *relative* accuracy collapses
//! when `Pr[φ]` is small: detecting `p ≈ 0` at relative error ε needs on
//! the order of `1/p` samples. Experiment E10 measures this crossover.

use qrel_arith::BigRational;
use qrel_budget::{Budget, Exhausted, Resource};
use qrel_logic::prop::Dnf;
use rand::Rng;

use crate::bounds::hoeffding_samples;

/// Estimate `Pr[φ]` by naive sampling with an explicit sample count.
pub fn naive_mc_probability_with_samples<R: Rng>(
    dnf: &Dnf,
    probs: &[BigRational],
    samples: u64,
    rng: &mut R,
) -> f64 {
    assert!(
        dnf.var_bound() <= probs.len(),
        "probability vector does not cover all variables"
    );
    let pf: Vec<f64> = probs.iter().map(|p| p.to_f64()).collect();
    let mut hits = 0u64;
    let mut assignment = vec![false; pf.len()];
    for _ in 0..samples {
        for (v, slot) in assignment.iter_mut().enumerate() {
            *slot = rng.gen::<f64>() < pf[v];
        }
        if dnf.eval(&assignment) {
            hits += 1;
        }
    }
    hits as f64 / samples.max(1) as f64
}

/// Budgeted naive sampling: charges one [`Resource::Samples`] per draw
/// and stops early when the budget trips, returning the mean over the
/// samples actually drawn (guarantee-free once exhausted) plus the trip
/// cause and the draw count.
pub fn naive_mc_probability_budgeted<R: Rng>(
    dnf: &Dnf,
    probs: &[BigRational],
    samples: u64,
    budget: &Budget,
    rng: &mut R,
) -> (f64, u64, Option<Exhausted>) {
    assert!(
        dnf.var_bound() <= probs.len(),
        "probability vector does not cover all variables"
    );
    let pf: Vec<f64> = probs.iter().map(|p| p.to_f64()).collect();
    let mut hits = 0u64;
    let mut drawn = 0u64;
    let mut exhausted = None;
    let mut assignment = vec![false; pf.len()];
    for _ in 0..samples {
        if let Err(e) = budget.charge(Resource::Samples, 1) {
            exhausted = Some(e);
            break;
        }
        for (v, slot) in assignment.iter_mut().enumerate() {
            *slot = rng.gen::<f64>() < pf[v];
        }
        if dnf.eval(&assignment) {
            hits += 1;
        }
        drawn += 1;
    }
    (hits as f64 / drawn.max(1) as f64, drawn, exhausted)
}

/// Estimate `Pr[φ]` with the additive-(ε, δ) Hoeffding sample count.
pub fn naive_mc_probability<R: Rng>(
    dnf: &Dnf,
    probs: &[BigRational],
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> f64 {
    let samples = hoeffding_samples(eps, delta);
    naive_mc_probability_with_samples(dnf, probs, samples, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_dnf::dnf_probability_shannon;
    use qrel_logic::prop::Lit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    #[test]
    fn additive_accuracy_on_moderate_probability() {
        let d = Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::pos(1), Lit::neg(2)]]);
        let probs = vec![r(1, 3), r(1, 2), r(1, 4)];
        let exact = dnf_probability_shannon(&d, &probs).to_f64();
        let mut rng = StdRng::seed_from_u64(21);
        let est = naive_mc_probability(&d, &probs, 0.02, 0.01, &mut rng);
        assert!((est - exact).abs() < 0.02, "est {est} vs exact {exact}");
    }

    #[test]
    fn misses_tiny_probability_with_few_samples() {
        // Pr[φ] = (1/4)^10 ≈ 1e-6: a few thousand naive samples will
        // essentially always report exactly 0 — the failure mode that
        // motivates Karp–Luby.
        let d = Dnf::from_terms([(0..10).map(Lit::pos).collect::<Vec<_>>()]);
        let probs = vec![r(1, 4); 10];
        let mut rng = StdRng::seed_from_u64(22);
        let est = naive_mc_probability_with_samples(&d, &probs, 2000, &mut rng);
        assert_eq!(est, 0.0);
    }

    #[test]
    fn zero_and_one_formulas() {
        let probs = vec![r(1, 2); 2];
        let mut rng = StdRng::seed_from_u64(23);
        assert_eq!(
            naive_mc_probability_with_samples(&Dnf::new(), &probs, 100, &mut rng),
            0.0
        );
        let mut top = Dnf::new();
        top.push_term_checked(vec![]);
        assert_eq!(
            naive_mc_probability_with_samples(&top, &probs, 100, &mut rng),
            1.0
        );
    }
}
