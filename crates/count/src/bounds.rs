//! Sample-size bounds for the randomized estimators.
//!
//! * [`karp_luby_t`] — the paper's Lemma 5.11 bound
//!   `t(ξ, ε, δ) = ⌈9/(2ξε²) · ln(1/δ)⌉` used by the Theorem 5.12
//!   estimator (the `ξ` is the padding parameter that keeps the
//!   expectation in `[ξ², ξ]`);
//! * [`hoeffding_samples`] — additive two-sided Hoeffding bound for
//!   `[0,1]`-valued means, `t = ⌈ln(2/δ)/(2ε²)⌉`;
//! * [`zero_one_estimator_samples`] — the zero-one estimator theorem
//!   bound `t = ⌈4m · ln(2/δ)/ε²⌉` for the Karp–Luby coverage estimator
//!   whose indicator has mean `≥ 1/m`.

/// Lemma 5.11 / Theorem 5.12: samples for relative error `ε` at mean
/// `p ≥ ξ²` after the padding construction.
///
/// # Panics
/// Panics unless `0 < ξ < 1/2`, `ε > 0`, `0 < δ < 1`.
pub fn karp_luby_t(xi: f64, eps: f64, delta: f64) -> u64 {
    assert!(xi > 0.0 && xi < 0.5, "ξ must be in (0, 1/2)");
    assert!(eps > 0.0, "ε must be positive");
    assert!(delta > 0.0 && delta < 1.0, "δ must be in (0, 1)");
    let t = 9.0 / (2.0 * xi * eps * eps) * (1.0 / delta).ln();
    t.ceil() as u64
}

/// Two-sided Hoeffding: `Pr[|X̄ − p| > ε] < δ` for i.i.d. `[0,1]` samples.
pub fn hoeffding_samples(eps: f64, delta: f64) -> u64 {
    assert!(eps > 0.0, "ε must be positive");
    assert!(delta > 0.0 && delta < 1.0, "δ must be in (0, 1)");
    ((2.0 / delta).ln() / (2.0 * eps * eps)).ceil() as u64
}

/// Zero-one estimator theorem (Karp–Luby): samples for relative error `ε`
/// with confidence `1 − δ` when the indicator mean is at least `1/m`.
pub fn zero_one_estimator_samples(m: f64, eps: f64, delta: f64) -> u64 {
    assert!(m >= 1.0, "m must be at least 1");
    assert!(eps > 0.0, "ε must be positive");
    assert!(delta > 0.0 && delta < 1.0, "δ must be in (0, 1)");
    (4.0 * m * (2.0 / delta).ln() / (eps * eps)).ceil() as u64
}

/// The Lemma 5.11 tail bound itself: for i.i.d. `[0,1]` variables with
/// mean `p < 1/2`, `Pr[|X̄ − p| > εp] < 2·exp(−2ε²tp / (9(1−p)))`.
/// Returns the right-hand side (useful for plotting the envelope in the
/// experiments).
pub fn karp_luby_tail(p: f64, eps: f64, t: u64) -> f64 {
    assert!((0.0..0.5).contains(&p), "p must be in [0, 1/2)");
    2.0 * (-2.0 * eps * eps * t as f64 * p / (9.0 * (1.0 - p))).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn karp_luby_t_matches_formula() {
        // ξ = 1/4, ε = 0.1, δ = 0.05: 9/(2·0.25·0.01)·ln(20) = 1800·ln 20.
        let t = karp_luby_t(0.25, 0.1, 0.05);
        let expected = (1800.0 * 20f64.ln()).ceil() as u64;
        assert_eq!(t, expected);
    }

    #[test]
    fn monotonicity() {
        // Stricter ε, δ, or smaller ξ all require more samples.
        assert!(karp_luby_t(0.25, 0.05, 0.05) > karp_luby_t(0.25, 0.1, 0.05));
        assert!(karp_luby_t(0.25, 0.1, 0.01) > karp_luby_t(0.25, 0.1, 0.05));
        assert!(karp_luby_t(0.125, 0.1, 0.05) > karp_luby_t(0.25, 0.1, 0.05));
        assert!(hoeffding_samples(0.01, 0.05) > hoeffding_samples(0.02, 0.05));
        assert!(
            zero_one_estimator_samples(8.0, 0.1, 0.1) > zero_one_estimator_samples(2.0, 0.1, 0.1)
        );
    }

    #[test]
    fn polynomial_in_inverse_eps_delta() {
        // t is polynomial in 1/ε (quadratic) and logarithmic in 1/δ.
        let t1 = karp_luby_t(0.25, 0.1, 0.1);
        let t2 = karp_luby_t(0.25, 0.05, 0.1);
        assert!((t2 as f64 / t1 as f64 - 4.0).abs() < 0.01);
        let d1 = karp_luby_t(0.25, 0.1, 0.1);
        let d2 = karp_luby_t(0.25, 0.1, 0.01);
        assert!((d2 as f64 / d1 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn tail_bound_decreases_with_t() {
        let a = karp_luby_tail(0.1, 0.5, 100);
        let b = karp_luby_tail(0.1, 0.5, 1000);
        assert!(b < a);
        // With t from the lemma, the tail is below δ: plug t(ξ,ε,δ) with
        // p = ξ² (worst case allowed by the construction)… the lemma is
        // stated with εp relative accuracy; here just sanity-check decay.
        assert!(karp_luby_tail(0.25, 0.5, 10_000) < 1e-50);
    }

    #[test]
    #[should_panic(expected = "ξ must be in")]
    fn xi_range_enforced() {
        karp_luby_t(0.6, 0.1, 0.1);
    }

    #[test]
    #[should_panic(expected = "δ must be in")]
    fn delta_range_enforced() {
        hoeffding_samples(0.1, 1.5);
    }
}
