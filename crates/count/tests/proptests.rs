//! Property-based tests for the counting substrate: the exact oracles
//! agree with each other and with brute force; the estimators land in
//! their envelopes.

use proptest::prelude::*;
use qrel_arith::BigRational;
use qrel_count::exact_dnf::{dnf_count_models, dnf_probability_ie, dnf_probability_shannon};
use qrel_count::sharp_sat::count_models;
use qrel_count::KarpLuby;
use qrel_logic::prop::{Cnf, Dnf, Lit};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn lit_strategy(num_vars: u32) -> impl Strategy<Value = Lit> {
    (0..num_vars, any::<bool>()).prop_map(|(v, pos)| Lit {
        var: v,
        positive: pos,
    })
}

fn dnf_strategy(num_vars: u32) -> impl Strategy<Value = Dnf> {
    proptest::collection::vec(
        proptest::collection::vec(lit_strategy(num_vars), 1..4),
        0..6,
    )
    .prop_map(Dnf::from_terms)
}

fn cnf_strategy(num_vars: u32) -> impl Strategy<Value = Cnf> {
    proptest::collection::vec(
        proptest::collection::vec(lit_strategy(num_vars), 1..4),
        0..8,
    )
    .prop_map(Cnf::from_clauses)
}

fn probs_strategy(n: usize) -> impl Strategy<Value = Vec<BigRational>> {
    proptest::collection::vec((0i64..=8, 1u64..=4), n).prop_map(|ps| {
        ps.into_iter()
            .map(|(num, scale)| {
                let den = 8 * scale;
                BigRational::from_ratio(num.min(den as i64), den)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shannon_equals_inclusion_exclusion(
        d in dnf_strategy(6),
        probs in probs_strategy(6),
    ) {
        let s = dnf_probability_shannon(&d, &probs);
        let ie = dnf_probability_ie(&d, &probs);
        prop_assert_eq!(s, ie);
    }

    #[test]
    fn shannon_equals_brute_force_counting(d in dnf_strategy(6)) {
        prop_assert_eq!(
            dnf_count_models(&d, 6).to_u64(),
            Some(d.count_models_brute(6))
        );
    }

    #[test]
    fn dpll_equals_brute_force(c in cnf_strategy(7)) {
        prop_assert_eq!(count_models(&c, 7), c.count_models_brute(7));
    }

    #[test]
    fn probability_in_unit_interval(
        d in dnf_strategy(6),
        probs in probs_strategy(6),
    ) {
        let p = dnf_probability_shannon(&d, &probs);
        prop_assert!(p >= BigRational::zero());
        prop_assert!(p <= BigRational::one());
    }

    #[test]
    fn karp_luby_total_weight_bounds_probability(
        d in dnf_strategy(6),
        probs in probs_strategy(6),
    ) {
        // U = Σ w(Tᵢ) ≥ Pr[φ] (union bound), with equality iff disjoint.
        let kl = KarpLuby::new(&d, &probs);
        let exact = dnf_probability_shannon(&d, &probs);
        prop_assert!(kl.total_weight() >= &exact);
    }

    #[test]
    fn karp_luby_estimate_in_envelope(
        d in dnf_strategy(5),
        probs in probs_strategy(5),
        seed in 0u64..1000,
    ) {
        // Statistical but tightly controlled: ε = 0.1, δ = 0.01, plus
        // generous absolute slack; failures would indicate a real bug
        // (bias), not bad luck.
        let exact = dnf_probability_shannon(&d, &probs).to_f64();
        let kl = KarpLuby::new(&d, &probs);
        let mut rng = StdRng::seed_from_u64(seed);
        let est = kl.run(0.1, 0.01, &mut rng).estimate;
        prop_assert!(
            (est - exact).abs() <= 0.1 * exact + 0.02,
            "estimate {} vs exact {}", est, exact
        );
    }

    #[test]
    fn monotone_in_probabilities(d in dnf_strategy(5)) {
        // If every literal in the DNF is positive, raising variable
        // probabilities cannot lower Pr[φ].
        let all_pos = d.terms().iter().flatten().all(|l| l.positive);
        prop_assume!(all_pos && d.num_terms() > 0);
        let low = vec![BigRational::from_ratio(1, 4); 5];
        let high = vec![BigRational::from_ratio(3, 4); 5];
        prop_assert!(
            dnf_probability_shannon(&d, &low) <= dnf_probability_shannon(&d, &high)
        );
    }
}
