//! Absolute reliability `AR_ψ` (Definition 5.6, Lemmas 5.7–5.8).
//!
//! `𝔇 ∈ AR_ψ` iff `R_ψ(𝔇) = 1`, i.e. the query's answer is immune to
//! every possible error pattern. For quantifier-free queries this is
//! polynomial-time decidable (Lemma 5.7, via Prop 3.1's exact
//! reliability); for arbitrary polynomial-time queries it is in co-NP
//! (Lemma 5.8: a counterexample is a world on which the answer differs),
//! and Lemma 5.9 (see `reductions::four_col`) shows co-NP-hardness
//! already for existential queries.

use qrel_eval::{EvalError, Query};
use qrel_prob::UnreliableDatabase;

/// Decide `𝔇 ∈ AR_ψ` by searching the possible worlds for a
/// counterexample (the Lemma 5.8 certificate), short-circuiting on the
/// first world whose answer differs from the observed one.
///
/// Exponential in the number of uncertain facts — the problem is
/// co-NP-hard (Lemma 5.9), so this is expected.
pub fn is_absolutely_reliable(
    ud: &UnreliableDatabase,
    query: &dyn Query,
) -> Result<bool, EvalError> {
    let observed_answers = query.answers(ud.observed())?;
    for (world, _prob) in ud.worlds() {
        if query.answers(&world)? != observed_answers {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Lemma 5.7: for quantifier-free queries, `AR_ψ` is decidable in
/// polynomial time — `R_ψ = 1` exactly when the Prop 3.1 exact
/// reliability computation returns 1.
pub fn is_absolutely_reliable_qf(
    ud: &UnreliableDatabase,
    formula: &qrel_logic::Formula,
    free_vars: &[String],
) -> Result<bool, EvalError> {
    let report = crate::quantifier_free::qf_reliability(ud, formula, free_vars)?;
    Ok(report.expected_error.is_zero())
}

/// Find a witnessing world where the answer differs (a co-AR_ψ
/// certificate), if any.
pub fn find_unreliability_witness(
    ud: &UnreliableDatabase,
    query: &dyn Query,
) -> Result<Option<qrel_db::Database>, EvalError> {
    let observed_answers = query.answers(ud.observed())?;
    for (world, _prob) in ud.worlds() {
        if query.answers(&world)? != observed_answers {
            return Ok(Some(world));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_arith::BigRational;
    use qrel_db::{DatabaseBuilder, Fact};
    use qrel_eval::FoQuery;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    #[test]
    fn fully_reliable_database_is_absolutely_reliable() {
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .tuples("S", [vec![0]])
            .build();
        let ud = UnreliableDatabase::reliable(db);
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        assert!(is_absolutely_reliable(&ud, &q).unwrap());
        assert!(find_unreliability_witness(&ud, &q).unwrap().is_none());
    }

    #[test]
    fn uncertainty_on_relevant_fact_breaks_it() {
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .tuples("S", [vec![0]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(1, 100)).unwrap();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        assert!(!is_absolutely_reliable(&ud, &q).unwrap());
        let w = find_unreliability_witness(&ud, &q).unwrap().unwrap();
        assert!(!w.holds(&Fact::new(0, vec![0])));
    }

    #[test]
    fn uncertainty_on_irrelevant_fact_is_fine() {
        // ψ = ∃x S(x); T-facts are uncertain but ψ ignores them.
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .relation("T", 1)
            .tuples("S", [vec![0]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_relation_error("T", r(1, 2)).unwrap();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        assert!(is_absolutely_reliable(&ud, &q).unwrap());
    }

    #[test]
    fn redundant_witnesses_absorb_errors() {
        // ψ = ∃x S(x) with two observed S-facts, only one uncertain:
        // the certain one keeps ψ true in every world.
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .tuples("S", [vec![0], vec![1]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![1]), r(1, 2)).unwrap();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        // Boolean ∃xS(x) stays true, so it is absolutely reliable…
        assert!(is_absolutely_reliable(&ud, &q).unwrap());
        // …but the unary version ψ(x) = S(x) is not (tuple 1 flips).
        let q1 = FoQuery::parse("S(x)").unwrap();
        assert!(!is_absolutely_reliable(&ud, &q1).unwrap());
    }

    #[test]
    fn qf_fast_path_agrees_with_world_search() {
        use qrel_logic::parser::parse_formula;
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("E", 2)
            .relation("S", 1)
            .tuples("E", [vec![0, 1]])
            .tuples("S", [vec![0], vec![1]])
            .build();
        for (fact, mu) in [
            (Fact::new(0, vec![0, 1]), r(1, 4)),
            (Fact::new(1, vec![2]), r(1, 2)),
        ] {
            let mut ud = UnreliableDatabase::reliable(db.clone());
            ud.set_error(&fact, mu).unwrap();
            for src in ["S(x)", "E(x,y) & S(x)", "S(x) | !S(x)"] {
                let f = parse_formula(src).unwrap();
                let free = f.free_vars();
                let fast = is_absolutely_reliable_qf(&ud, &f, &free).unwrap();
                let q = FoQuery::with_free_order(f, free);
                let slow = is_absolutely_reliable(&ud, &q).unwrap();
                assert_eq!(fast, slow, "query {src}");
            }
        }
    }

    #[test]
    fn mu_one_flips_are_deterministic_not_unreliable() {
        // μ = 1 pins the actual value to the flip: if the flip does not
        // change the query answer, the database is still absolutely
        // reliable (ν has a single support world).
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .relation("T", 1)
            .tuples("S", [vec![0]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(1, vec![0]), r(1, 1)).unwrap(); // T flips on
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        assert!(is_absolutely_reliable(&ud, &q).unwrap());
        // A query that sees T is *not* absolutely reliable: the single
        // actual world answers differently from the observed database.
        let qt = FoQuery::parse("exists x. T(x)").unwrap();
        assert!(!is_absolutely_reliable(&ud, &qt).unwrap());
    }
}
