//! Absolute-error approximation of reliability for existential and
//! universal queries (Corollary 5.5).
//!
//! For a Boolean existential `ψ`: `H_ψ = ν(ψ)` or `1 − ν(ψ)` depending on
//! whether the observed database satisfies `ψ`, so the Theorem 5.4 FPTRAS
//! for `ν(ψ)` directly yields an absolute-(ε, δ) estimate of `R_ψ`
//! (relative error on a `[0,1]` quantity implies absolute error).
//! Universal queries go through their existential negation:
//! `ν(ψ) = 1 − ν(¬ψ)`.
//!
//! For k-ary queries the corollary splits the budget: estimate each
//! per-tuple error `H_{ψ(ā)}` to within `ε/n^k` at confidence
//! `1 − δ/n^k`, sum, and a union bound gives `|R̂ − R_ψ| ≤ ε` with
//! probability `≥ 1 − δ`.

use crate::existential::{
    estimate_grounding, ground_with_probabilities, ground_with_probabilities_budgeted, Route,
    DEFAULT_MAX_TERMS,
};
use qrel_budget::{Budget, Exhausted, QrelError};
use qrel_count::KarpLuby;
use qrel_eval::eval_formula;
use qrel_logic::{Formula, Fragment};
use qrel_par::{split_seed, DEFAULT_SHARDS};
use qrel_prob::UnreliableDatabase;
use rand::Rng;
use std::collections::HashMap;

/// Result of the Corollary 5.5 estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxReport {
    /// Estimated expected error `Ĥ_ψ`.
    pub expected_error: f64,
    /// Estimated reliability `R̂_ψ = 1 − Ĥ_ψ/n^k`.
    pub reliability: f64,
    /// Number of per-tuple estimations performed (`n^k`).
    pub tuples: usize,
}

/// Estimate the reliability of an existential **or universal** query with
/// absolute error `ε` at confidence `1 − δ`.
///
/// `free_vars` fixes the tuple order for k-ary queries (pass `&[]` for
/// sentences).
pub fn approximate_reliability<R: Rng>(
    ud: &UnreliableDatabase,
    formula: &Formula,
    free_vars: &[String],
    eps: f64,
    delta: f64,
    route: Route,
    rng: &mut R,
) -> Result<ApproxReport, QrelError> {
    {
        let mut sorted = free_vars.to_vec();
        sorted.sort();
        assert_eq!(sorted, formula.free_vars(), "free-variable order mismatch");
    }
    // Universal queries: estimate via the existential negation.
    let (work_formula, flipped) = match formula.fragment() {
        Fragment::Universal => (Formula::not(formula.clone()).to_nnf(), true),
        _ => (formula.clone(), false),
    };

    let db = ud.observed();
    let k = free_vars.len();
    let tuples: Vec<Vec<u32>> = db.universe().tuples(k).collect();
    let nk = tuples.len().max(1);
    let per_eps = eps / nk as f64;
    let per_delta = (delta / nk as f64).min(0.5);

    let mut h = 0.0f64;
    for tuple in &tuples {
        let bindings: HashMap<String, u32> = free_vars
            .iter()
            .cloned()
            .zip(tuple.iter().copied())
            .collect();
        // ν̂(ψ(ā)) for the (possibly negated) existential formula.
        let (grounding, probs) =
            ground_with_probabilities(ud, &work_formula, &bindings, DEFAULT_MAX_TERMS)?;
        let nu_hat =
            estimate_grounding(&grounding, &probs, per_eps.max(1e-9), per_delta, route, rng)?;
        // Truth on the observed database, for the H = ν vs 1−ν split.
        let observed = eval_formula(db, formula, &bindings)?;
        // ν̂ refers to work_formula; convert to ν(ψ(ā)).
        let nu_psi = if flipped { 1.0 - nu_hat } else { nu_hat };
        let h_tuple = if observed { 1.0 - nu_psi } else { nu_psi };
        h += h_tuple.clamp(0.0, 1.0);
    }

    let reliability = 1.0 - h / nk as f64;
    Ok(ApproxReport {
        expected_error: h,
        reliability,
        tuples: nk,
    })
}

/// Outcome of a budgeted Corollary 5.5 estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum ApproxOutcome {
    Complete(ApproxReport),
    /// The budget tripped mid-run. `partial_expected_error` sums the
    /// fully-estimated tuples plus a guarantee-free partial estimate for
    /// the tuple in flight; each of the remaining
    /// `tuples_total − tuples_done − 1` tuples contributes at most 1.
    Exhausted {
        partial_expected_error: f64,
        tuples_done: usize,
        tuples_total: usize,
        cause: Exhausted,
    },
}

/// [`approximate_reliability`] under a cooperative [`Budget`], always
/// via the direct Karp–Luby route. Grounding charges
/// [`qrel_budget::Resource::Terms`], sampling charges
/// [`qrel_budget::Resource::Samples`]; on a trip the tuples estimated so
/// far are returned instead of being discarded.
pub fn approximate_reliability_budgeted<R: Rng>(
    ud: &UnreliableDatabase,
    formula: &Formula,
    free_vars: &[String],
    eps: f64,
    delta: f64,
    budget: &Budget,
    rng: &mut R,
) -> Result<ApproxOutcome, QrelError> {
    {
        let mut sorted = free_vars.to_vec();
        sorted.sort();
        assert_eq!(sorted, formula.free_vars(), "free-variable order mismatch");
    }
    let (work_formula, flipped) = match formula.fragment() {
        Fragment::Universal => (Formula::not(formula.clone()).to_nnf(), true),
        _ => (formula.clone(), false),
    };

    let db = ud.observed();
    let k = free_vars.len();
    let tuples: Vec<Vec<u32>> = db.universe().tuples(k).collect();
    let nk = tuples.len().max(1);
    let per_eps = (eps / nk as f64).max(1e-9);
    let per_delta = (delta / nk as f64).min(0.5);

    let mut h = 0.0f64;
    for (done, tuple) in tuples.iter().enumerate() {
        let bindings: HashMap<String, u32> = free_vars
            .iter()
            .cloned()
            .zip(tuple.iter().copied())
            .collect();
        let observed = eval_formula(db, formula, &bindings)?;
        let (grounding, probs) = match ground_with_probabilities_budgeted(
            ud,
            &work_formula,
            &bindings,
            DEFAULT_MAX_TERMS,
            budget,
        ) {
            Ok(x) => x,
            Err(
                QrelError::BudgetExhausted(cause)
                | QrelError::Timeout(cause)
                | QrelError::Cancelled(cause),
            ) => {
                return Ok(ApproxOutcome::Exhausted {
                    partial_expected_error: h,
                    tuples_done: done,
                    tuples_total: nk,
                    cause,
                });
            }
            Err(e) => return Err(e),
        };
        let kl = KarpLuby::new(&grounding.dnf, &probs);
        let (rep, exhausted) = kl.run_budgeted(kl.samples_for(per_eps, per_delta), budget, rng);
        let nu_hat = rep.estimate.clamp(0.0, 1.0);
        let nu_psi = if flipped { 1.0 - nu_hat } else { nu_hat };
        let h_tuple = if observed { 1.0 - nu_psi } else { nu_psi };
        h += h_tuple.clamp(0.0, 1.0);
        if let Some(cause) = exhausted {
            return Ok(ApproxOutcome::Exhausted {
                partial_expected_error: h,
                tuples_done: done,
                tuples_total: nk,
                cause,
            });
        }
    }

    Ok(ApproxOutcome::Complete(ApproxReport {
        expected_error: h,
        reliability: 1.0 - h / nk as f64,
        tuples: nk,
    }))
}

/// Parallel [`approximate_reliability_budgeted`]: grounding and the
/// per-tuple loop stay serial (they are cheap relative to sampling), but
/// each tuple's Karp–Luby run is sharded across `threads` workers via
/// [`KarpLuby::run_budgeted_sharded`], with the tuple's sampling seed
/// derived as `split_seed(seed, tuple_index)`. The result therefore
/// depends only on `(eps, delta, seed)` and the budget's counter caps —
/// never on the thread count.
#[allow(clippy::too_many_arguments)]
pub fn approximate_reliability_budgeted_parallel(
    ud: &UnreliableDatabase,
    formula: &Formula,
    free_vars: &[String],
    eps: f64,
    delta: f64,
    budget: &Budget,
    seed: u64,
    threads: usize,
) -> Result<ApproxOutcome, QrelError> {
    {
        let mut sorted = free_vars.to_vec();
        sorted.sort();
        assert_eq!(sorted, formula.free_vars(), "free-variable order mismatch");
    }
    let (work_formula, flipped) = match formula.fragment() {
        Fragment::Universal => (Formula::not(formula.clone()).to_nnf(), true),
        _ => (formula.clone(), false),
    };

    let db = ud.observed();
    let k = free_vars.len();
    let tuples: Vec<Vec<u32>> = db.universe().tuples(k).collect();
    let nk = tuples.len().max(1);
    let per_eps = (eps / nk as f64).max(1e-9);
    let per_delta = (delta / nk as f64).min(0.5);

    let mut h = 0.0f64;
    for (done, tuple) in tuples.iter().enumerate() {
        let bindings: HashMap<String, u32> = free_vars
            .iter()
            .cloned()
            .zip(tuple.iter().copied())
            .collect();
        let observed = eval_formula(db, formula, &bindings)?;
        let (grounding, probs) = match ground_with_probabilities_budgeted(
            ud,
            &work_formula,
            &bindings,
            DEFAULT_MAX_TERMS,
            budget,
        ) {
            Ok(x) => x,
            Err(
                QrelError::BudgetExhausted(cause)
                | QrelError::Timeout(cause)
                | QrelError::Cancelled(cause),
            ) => {
                return Ok(ApproxOutcome::Exhausted {
                    partial_expected_error: h,
                    tuples_done: done,
                    tuples_total: nk,
                    cause,
                });
            }
            Err(e) => return Err(e),
        };
        let kl = KarpLuby::new(&grounding.dnf, &probs);
        let (rep, exhausted) = kl.run_budgeted_sharded(
            kl.samples_for(per_eps, per_delta),
            budget,
            split_seed(seed, done as u64),
            DEFAULT_SHARDS,
            threads,
        );
        let nu_hat = rep.estimate.clamp(0.0, 1.0);
        let nu_psi = if flipped { 1.0 - nu_hat } else { nu_hat };
        let h_tuple = if observed { 1.0 - nu_psi } else { nu_psi };
        h += h_tuple.clamp(0.0, 1.0);
        if let Some(cause) = exhausted {
            return Ok(ApproxOutcome::Exhausted {
                partial_expected_error: h,
                tuples_done: done,
                tuples_total: nk,
                cause,
            });
        }
    }

    Ok(ApproxOutcome::Complete(ApproxReport {
        expected_error: h,
        reliability: 1.0 - h / nk as f64,
        tuples: nk,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_reliability;
    use qrel_arith::BigRational;
    use qrel_db::DatabaseBuilder;
    use qrel_eval::FoQuery;
    use qrel_logic::parser::parse_formula;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn setup() -> UnreliableDatabase {
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("E", 2)
            .relation("S", 1)
            .tuples("E", [vec![0, 1], vec![1, 2]])
            .tuples("S", [vec![0], vec![2]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_relation_error("S", r(1, 5)).unwrap();
        ud.set_relation_error("E", r(1, 10)).unwrap();
        ud
    }

    fn check(src: &str, free: &[&str]) {
        let ud = setup();
        let f = parse_formula(src).unwrap();
        let free: Vec<String> = free.iter().map(|s| s.to_string()).collect();
        let exact =
            exact_reliability(&ud, &FoQuery::with_free_order(f.clone(), free.clone())).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let approx =
            approximate_reliability(&ud, &f, &free, 0.05, 0.05, Route::Direct, &mut rng).unwrap();
        let exact_rel = exact.reliability.to_f64();
        assert!(
            (approx.reliability - exact_rel).abs() <= 0.05,
            "{src}: approx {} vs exact {exact_rel}",
            approx.reliability
        );
    }

    #[test]
    fn boolean_existential() {
        check("exists x y. E(x,y) & S(x)", &[]);
    }

    #[test]
    fn boolean_universal() {
        check("forall x y. E(x,y) -> (S(x) | S(y))", &[]);
        check("forall x y. E(x,y) -> x != y", &[]);
    }

    #[test]
    fn mixed_quantifiers_rejected() {
        // ∀x (S(x) ∨ ∃y E(x,y)) is neither existential nor universal —
        // the corollary does not apply and the pipeline must say so.
        let ud = setup();
        let f = parse_formula("forall x. S(x) | exists y. E(x,y)").unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(approximate_reliability(&ud, &f, &[], 0.1, 0.1, Route::Direct, &mut rng).is_err());
    }

    #[test]
    fn unary_existential_query() {
        check("exists y. E(x,y) & S(y)", &["x"]);
    }

    #[test]
    fn binary_query_budget_split() {
        let ud = setup();
        let f = parse_formula("exists z. E(x,z) & E(z,y)").unwrap();
        let free = vec!["x".to_string(), "y".to_string()];
        let mut rng = StdRng::seed_from_u64(3);
        let rep =
            approximate_reliability(&ud, &f, &free, 0.1, 0.1, Route::Direct, &mut rng).unwrap();
        assert_eq!(rep.tuples, 9);
        let exact = exact_reliability(&ud, &FoQuery::with_free_order(f, free)).unwrap();
        assert!((rep.reliability - exact.reliability.to_f64()).abs() <= 0.1);
    }

    #[test]
    fn deterministic_database_gives_exact_answer() {
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .tuples("S", [vec![0]])
            .build();
        let ud = UnreliableDatabase::reliable(db);
        let f = parse_formula("exists x. S(x)").unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let rep =
            approximate_reliability(&ud, &f, &[], 0.01, 0.01, Route::Direct, &mut rng).unwrap();
        assert_eq!(rep.reliability, 1.0);
        assert_eq!(rep.expected_error, 0.0);
    }

    #[test]
    fn budgeted_approx_degrades_gracefully() {
        let ud = setup();
        let f = parse_formula("exists y. E(x,y) & S(y)").unwrap();
        let free = vec!["x".to_string()];
        // The per-tuple (ε/n, δ/n) split needs thousands of samples; a
        // 100-sample budget must trip partway with partial sums intact.
        let budget = Budget::unlimited().with_max_samples(100);
        let mut rng = StdRng::seed_from_u64(55);
        match approximate_reliability_budgeted(&ud, &f, &free, 0.05, 0.05, &budget, &mut rng)
            .unwrap()
        {
            ApproxOutcome::Exhausted {
                partial_expected_error,
                tuples_done,
                tuples_total,
                ..
            } => {
                assert!(tuples_done < tuples_total);
                assert_eq!(tuples_total, 3);
                assert!((0.0..=tuples_total as f64).contains(&partial_expected_error));
            }
            ApproxOutcome::Complete(_) => panic!("sample cap should have tripped"),
        }
        // With no caps the budgeted path completes like the plain one.
        let mut rng = StdRng::seed_from_u64(56);
        match approximate_reliability_budgeted(
            &ud,
            &f,
            &free,
            0.1,
            0.1,
            &Budget::unlimited(),
            &mut rng,
        )
        .unwrap()
        {
            ApproxOutcome::Complete(rep) => {
                assert!((0.0..=1.0).contains(&rep.reliability));
                assert_eq!(rep.tuples, 3);
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn parallel_budgeted_is_thread_count_invariant() {
        let ud = setup();
        let f = parse_formula("exists y. E(x,y) & S(y)").unwrap();
        let free = vec!["x".to_string()];
        let run = |threads: usize| {
            approximate_reliability_budgeted_parallel(
                &ud,
                &f,
                &free,
                0.1,
                0.1,
                &Budget::unlimited(),
                77,
                threads,
            )
            .unwrap()
        };
        let base = run(1);
        match &base {
            ApproxOutcome::Complete(rep) => {
                assert_eq!(rep.tuples, 3);
                assert!((0.0..=1.0).contains(&rep.reliability));
            }
            other => panic!("expected completion, got {other:?}"),
        }
        for threads in [2usize, 4] {
            assert_eq!(run(threads), base);
        }
    }

    #[test]
    fn parallel_budgeted_sample_cap_trips_deterministically() {
        let ud = setup();
        let f = parse_formula("exists y. E(x,y) & S(y)").unwrap();
        let free = vec!["x".to_string()];
        let run = |threads: usize| {
            let budget = Budget::unlimited().with_max_samples(100);
            approximate_reliability_budgeted_parallel(
                &ud, &f, &free, 0.05, 0.05, &budget, 78, threads,
            )
            .unwrap()
        };
        let base = run(1);
        match &base {
            ApproxOutcome::Exhausted {
                tuples_done,
                tuples_total,
                cause,
                ..
            } => {
                assert!(tuples_done < tuples_total);
                assert_eq!(cause.resource, qrel_budget::Resource::Samples);
            }
            other => panic!("sample cap should have tripped, got {other:?}"),
        }
        for threads in [2usize, 4] {
            assert_eq!(run(threads), base);
        }
    }

    #[test]
    #[should_panic(expected = "free-variable order mismatch")]
    fn free_var_validation() {
        let ud = setup();
        let f = parse_formula("exists y. E(x,y)").unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let _ = approximate_reliability(&ud, &f, &[], 0.1, 0.1, Route::Direct, &mut rng);
    }
}
