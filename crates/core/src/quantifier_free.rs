//! Exact polynomial-time reliability for quantifier-free queries
//! (Proposition 3.1, due to de Rougemont).
//!
//! For a k-ary quantifier-free `ψ`, linearity of expectation gives
//! `H_ψ = Σ_ā H_{ψ(ā)}`. Each instantiated `ψ(ā)` mentions only a fixed
//! number `n(ψ)` of atomic statements (independent of the database), so
//! `H_{ψ(ā)}` is computed exactly by enumerating the `2^{n(ψ)}` truth
//! assignments to those atoms, weighting each by its probability under
//! `ν` — constant work per tuple, `O(n^k)` overall.

use qrel_arith::BigRational;
use qrel_budget::{Budget, Exhausted, Resource};
use qrel_db::{Element, Fact};
use qrel_eval::EvalError;
use qrel_logic::{Formula, Term};
use qrel_prob::UnreliableDatabase;
use std::collections::HashMap;

/// Exact expected error and reliability of a quantifier-free query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QfReport {
    /// `H_ψ(𝔇)` — expected Hamming distance between `ψ^𝔄` and `ψ^𝔅`.
    pub expected_error: BigRational,
    /// `R_ψ(𝔇) = 1 − H_ψ/n^k`.
    pub reliability: BigRational,
    /// Arity of the query.
    pub arity: usize,
    /// Distinct atomic statements per instantiated tuple, maximized over
    /// tuples (the `n(ψ)` of the proof; drives the `2^{n(ψ)}` constant).
    pub max_atoms_per_tuple: usize,
}

/// Outcome of a budgeted quantifier-free computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QfOutcome {
    Complete(QfReport),
    /// The budget tripped mid-run. `partial_expected_error` is the exact
    /// error mass over the `tuples_done` fully-processed tuples — a
    /// lower bound on `H_ψ`, with each unprocessed tuple contributing at
    /// most 1.
    Exhausted {
        partial_expected_error: BigRational,
        tuples_done: usize,
        tuples_total: usize,
        cause: Exhausted,
    },
}

/// Compute the exact reliability of a quantifier-free query (free
/// variables in the given order).
///
/// ```
/// use qrel_core::quantifier_free::qf_reliability;
/// use qrel_arith::BigRational;
/// use qrel_db::{DatabaseBuilder, Fact};
/// use qrel_logic::parser::parse_formula;
/// use qrel_prob::UnreliableDatabase;
///
/// let db = DatabaseBuilder::new()
///     .universe_size(2)
///     .relation("S", 1)
///     .tuples("S", [vec![0]])
///     .build();
/// let mut ud = UnreliableDatabase::reliable(db);
/// ud.set_error(&Fact::new(0, vec![0]), BigRational::from_ratio(1, 4)).unwrap();
///
/// // ψ(x) = S(x): the expected error is Σ μ = 1/4, over n = 2 tuples.
/// let f = parse_formula("S(x)").unwrap();
/// let report = qf_reliability(&ud, &f, &["x".to_string()]).unwrap();
/// assert_eq!(report.expected_error, BigRational::from_ratio(1, 4));
/// assert_eq!(report.reliability, BigRational::from_ratio(7, 8));
/// ```
///
/// # Errors
/// Returns an error for unknown relations/constants or arity mismatches.
///
/// # Panics
/// Panics if `formula` is not quantifier-free or `free_vars` does not
/// cover its free variables.
pub fn qf_reliability(
    ud: &UnreliableDatabase,
    formula: &Formula,
    free_vars: &[String],
) -> Result<QfReport, EvalError> {
    match qf_reliability_budgeted(ud, formula, free_vars, &Budget::unlimited())? {
        QfOutcome::Complete(report) => Ok(report),
        QfOutcome::Exhausted { .. } => unreachable!("unlimited budget cannot trip"),
    }
}

/// [`qf_reliability`] under a cooperative [`Budget`]: each of the
/// `2^{n(ψ)}` per-tuple atom assignments charges one
/// [`Resource::Worlds`] (they are the local possible worlds of the
/// Proposition 3.1 proof), and the loop stops at the first trip with
/// exact partial sums.
pub fn qf_reliability_budgeted(
    ud: &UnreliableDatabase,
    formula: &Formula,
    free_vars: &[String],
    budget: &Budget,
) -> Result<QfOutcome, EvalError> {
    assert!(formula.is_quantifier_free(), "query is not quantifier-free");
    {
        let mut sorted = free_vars.to_vec();
        sorted.sort();
        assert_eq!(sorted, formula.free_vars(), "free-variable order mismatch");
    }
    let db = ud.observed();
    let k = free_vars.len();
    let tuples_total = db.universe().tuple_count(k);
    let mut tuples_done = 0usize;
    let mut h = BigRational::zero();
    let mut max_atoms = 0usize;

    for tuple in db.universe().tuples(k) {
        let bindings: HashMap<String, Element> = free_vars
            .iter()
            .cloned()
            .zip(tuple.iter().copied())
            .collect();
        // Collect the distinct ground atomic statements of ψ(ā).
        let mut facts: Vec<Fact> = Vec::new();
        collect_facts(ud, formula, &bindings, &mut facts)?;
        max_atoms = max_atoms.max(facts.len());

        // Truth value on the observed database.
        let observed: Vec<bool> = facts.iter().map(|f| db.holds(f)).collect();
        let value_observed = eval_qf(ud, formula, &bindings, &facts, &observed)?;

        // Enumerate the 2^{n(ψ)} assignments to the atoms of ψ(ā).
        let nu: Vec<BigRational> = facts.iter().map(|f| ud.nu(f)).collect();
        let mut err_prob = BigRational::zero();
        let mut assignment = vec![false; facts.len()];
        for mask in 0u64..(1u64 << facts.len()) {
            if let Err(cause) = budget.charge(Resource::Worlds, 1) {
                return Ok(QfOutcome::Exhausted {
                    partial_expected_error: h,
                    tuples_done,
                    tuples_total,
                    cause,
                });
            }
            let mut weight = BigRational::one();
            for (i, slot) in assignment.iter_mut().enumerate() {
                let bit = (mask >> i) & 1 == 1;
                *slot = bit;
                let p = if bit {
                    nu[i].clone()
                } else {
                    nu[i].one_minus()
                };
                if p.is_zero() {
                    weight = BigRational::zero();
                    break;
                }
                weight = weight.mul_ref(&p);
            }
            if weight.is_zero() {
                continue;
            }
            let value_actual = eval_qf(ud, formula, &bindings, &facts, &assignment)?;
            if value_actual != value_observed {
                err_prob = err_prob.add_ref(&weight);
            }
        }
        h = h.add_ref(&err_prob);
        tuples_done += 1;
    }

    let total_tuples = BigRational::from_int(tuples_total as i64);
    let reliability = if total_tuples.is_zero() {
        BigRational::one()
    } else {
        h.div_ref(&total_tuples).one_minus()
    };
    Ok(QfOutcome::Complete(QfReport {
        expected_error: h,
        reliability,
        arity: k,
        max_atoms_per_tuple: max_atoms,
    }))
}

/// Collect the distinct ground facts mentioned by a QF formula under the
/// bindings.
fn collect_facts(
    ud: &UnreliableDatabase,
    f: &Formula,
    bindings: &HashMap<String, Element>,
    out: &mut Vec<Fact>,
) -> Result<(), EvalError> {
    match f {
        Formula::True | Formula::False | Formula::Eq(..) => Ok(()),
        Formula::Atom { rel, args } => {
            let fact = resolve_atom(ud, rel, args, bindings)?;
            if !out.contains(&fact) {
                out.push(fact);
            }
            Ok(())
        }
        Formula::Not(g) => collect_facts(ud, g, bindings, out),
        Formula::And(gs) | Formula::Or(gs) => {
            for g in gs {
                collect_facts(ud, g, bindings, out)?;
            }
            Ok(())
        }
        _ => unreachable!("quantifier-free checked by caller"),
    }
}

fn resolve_term(
    ud: &UnreliableDatabase,
    t: &Term,
    bindings: &HashMap<String, Element>,
) -> Result<Element, EvalError> {
    match t {
        Term::Var(v) => bindings
            .get(v)
            .copied()
            .ok_or_else(|| EvalError::UnboundVariable(v.clone())),
        Term::Const(c) => {
            let db = ud.observed();
            if let Some(e) = db.universe().lookup(c) {
                return Ok(e);
            }
            if let Ok(i) = c.parse::<u32>() {
                if (i as usize) < db.size() {
                    return Ok(i);
                }
            }
            Err(EvalError::UnknownConstant(c.clone()))
        }
    }
}

fn resolve_atom(
    ud: &UnreliableDatabase,
    rel: &str,
    args: &[Term],
    bindings: &HashMap<String, Element>,
) -> Result<Fact, EvalError> {
    let vocab = ud.observed().vocabulary();
    let rel_ix = vocab
        .index_of(rel)
        .ok_or_else(|| EvalError::UnknownRelation(rel.to_string()))?;
    let expected = vocab.symbols()[rel_ix].arity();
    if expected != args.len() {
        return Err(EvalError::ArityMismatch {
            rel: rel.to_string(),
            expected,
            got: args.len(),
        });
    }
    let tuple = args
        .iter()
        .map(|t| resolve_term(ud, t, bindings))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Fact::new(rel_ix, tuple))
}

/// Evaluate a ground QF formula under a truth assignment to its facts.
fn eval_qf(
    ud: &UnreliableDatabase,
    f: &Formula,
    bindings: &HashMap<String, Element>,
    facts: &[Fact],
    assignment: &[bool],
) -> Result<bool, EvalError> {
    match f {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Eq(a, b) => Ok(resolve_term(ud, a, bindings)? == resolve_term(ud, b, bindings)?),
        Formula::Atom { rel, args } => {
            let fact = resolve_atom(ud, rel, args, bindings)?;
            let i = facts.iter().position(|g| g == &fact).expect("collected");
            Ok(assignment[i])
        }
        Formula::Not(g) => Ok(!eval_qf(ud, g, bindings, facts, assignment)?),
        Formula::And(gs) => {
            for g in gs {
                if !eval_qf(ud, g, bindings, facts, assignment)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(gs) => {
            for g in gs {
                if eval_qf(ud, g, bindings, facts, assignment)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        _ => unreachable!("quantifier-free checked by caller"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_db::DatabaseBuilder;
    use qrel_logic::parser::parse_formula;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn simple_ud() -> UnreliableDatabase {
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .relation("T", 1)
            .tuples("S", [vec![0]])
            .build();
        UnreliableDatabase::reliable(db)
    }

    #[test]
    fn fully_reliable_database_has_reliability_one() {
        let ud = simple_ud();
        let f = parse_formula("S(x) & !T(x)").unwrap();
        let rep = qf_reliability(&ud, &f, &["x".to_string()]).unwrap();
        assert_eq!(rep.expected_error, BigRational::zero());
        assert_eq!(rep.reliability, BigRational::one());
        assert_eq!(rep.max_atoms_per_tuple, 2);
    }

    #[test]
    fn single_atom_error_is_mu() {
        // ψ(x) = S(x): H_{ψ(a)} = μ(S(a)), so H = Σ μ.
        let mut ud = simple_ud();
        ud.set_error(&Fact::new(0, vec![0]), r(1, 4)).unwrap();
        ud.set_error(&Fact::new(0, vec![1]), r(1, 8)).unwrap();
        let f = parse_formula("S(x)").unwrap();
        let rep = qf_reliability(&ud, &f, &["x".to_string()]).unwrap();
        assert_eq!(rep.expected_error, r(3, 8));
        assert_eq!(rep.reliability, r(3, 8).div_ref(&r(2, 1)).one_minus()); // 1 - (3/8)/2
    }

    #[test]
    fn conjunction_of_independent_atoms() {
        // ψ(x) = S(x) & T(x) at tuple 0: observed S=1,T=0 → ψ^𝔄 = false.
        // Error iff actual S ∧ T: ν(S0)·ν(T0) = (3/4)(1/3) = 1/4.
        let mut ud = simple_ud();
        ud.set_error(&Fact::new(0, vec![0]), r(1, 4)).unwrap(); // S(0): ν = 3/4
        ud.set_error(&Fact::new(1, vec![0]), r(1, 3)).unwrap(); // T(0): ν = 1/3
        let f = parse_formula("S(x) & T(x)").unwrap();
        let rep = qf_reliability(&ud, &f, &["x".to_string()]).unwrap();
        assert_eq!(rep.expected_error, r(1, 4));
    }

    #[test]
    fn boolean_qf_query() {
        // Nullary relation P with μ = 1/3: ψ = P(), H = 1/3.
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("P", 0)
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![]), r(1, 3)).unwrap();
        let f = parse_formula("P()").unwrap();
        let rep = qf_reliability(&ud, &f, &[]).unwrap();
        assert_eq!(rep.expected_error, r(1, 3));
        assert_eq!(rep.reliability, r(2, 3));
    }

    #[test]
    fn repeated_atom_not_double_counted() {
        // ψ(x) = S(x) & S(x): same single atom, H = μ.
        let mut ud = simple_ud();
        ud.set_error(&Fact::new(0, vec![0]), r(1, 4)).unwrap();
        let f = parse_formula("S(x) & S(x)").unwrap();
        let rep = qf_reliability(&ud, &f, &["x".to_string()]).unwrap();
        assert_eq!(rep.max_atoms_per_tuple, 1);
        assert_eq!(rep.expected_error, r(1, 4));
    }

    #[test]
    fn tautology_and_contradiction_are_perfectly_reliable() {
        let mut ud = simple_ud();
        ud.set_uniform_error(r(1, 2)).unwrap();
        for src in ["S(x) | !S(x)", "S(x) & !S(x)", "x = x", "true", "false"] {
            let f = parse_formula(src).unwrap();
            let rep = qf_reliability(&ud, &f, &f.free_vars()).unwrap();
            assert_eq!(rep.reliability, BigRational::one(), "query {src}");
        }
    }

    #[test]
    fn binary_query_with_equality() {
        // ψ(x,y) = E(x,y) & x != y on a 2-element db.
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("E", 2)
            .tuples("E", [vec![0, 1]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_uniform_error(r(1, 10)).unwrap();
        let f = parse_formula("E(x,y) & x != y").unwrap();
        let rep = qf_reliability(&ud, &f, &["x".to_string(), "y".to_string()]).unwrap();
        // Diagonal tuples: equality false → ψ constant false → no error.
        // Off-diagonal: error iff the E-fact flips: μ = 1/10 each, 2 tuples.
        assert_eq!(rep.expected_error, r(2, 10));
        assert_eq!(rep.reliability, r(1, 5).div_ref(&r(4, 1)).one_minus());
    }

    #[test]
    fn agrees_with_world_enumeration() {
        // Cross-check against the exact Ω(𝔇) enumeration on a small case.
        let mut ud = simple_ud();
        ud.set_uniform_error(r(1, 3)).unwrap();
        let f = parse_formula("S(x) | T(x)").unwrap();
        let rep = qf_reliability(&ud, &f, &["x".to_string()]).unwrap();

        // Direct enumeration: H = Σ_worlds ν(B) · |ψ^𝔄 Δ ψ^𝔅|.
        let q = qrel_eval::FoQuery::with_free_order(f, vec!["x".into()]);
        use qrel_eval::Query as _;
        let observed_ans = q.answers(ud.observed()).unwrap();
        let mut h = BigRational::zero();
        for (world, p) in ud.worlds() {
            let ans = q.answers(&world).unwrap();
            let diff = ans.difference(&observed_ans).len() + observed_ans.difference(&ans).len();
            h = h.add_ref(&p.mul_ref(&BigRational::from_int(diff as i64)));
        }
        assert_eq!(rep.expected_error, h);
    }

    #[test]
    fn budgeted_qf_trips_and_reports_partial() {
        let mut ud = simple_ud();
        ud.set_uniform_error(r(1, 3)).unwrap();
        let f = parse_formula("S(x) | T(x)").unwrap();
        // Each tuple enumerates 2² = 4 assignments; cap at 3 so the
        // budget trips inside the first tuple.
        let budget = Budget::unlimited().with_max_worlds(3);
        match qf_reliability_budgeted(&ud, &f, &["x".to_string()], &budget).unwrap() {
            QfOutcome::Exhausted {
                tuples_done,
                tuples_total,
                cause,
                partial_expected_error,
            } => {
                assert_eq!(tuples_done, 0);
                assert_eq!(tuples_total, 2);
                assert_eq!(cause.resource, Resource::Worlds);
                assert_eq!(partial_expected_error, BigRational::zero());
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        // And with room to spare, Complete matches the plain entry point.
        let roomy = Budget::unlimited().with_max_worlds(100);
        let full = qf_reliability(&ud, &f, &["x".to_string()]).unwrap();
        assert_eq!(
            qf_reliability_budgeted(&ud, &f, &["x".to_string()], &roomy).unwrap(),
            QfOutcome::Complete(full)
        );
    }

    #[test]
    #[should_panic(expected = "not quantifier-free")]
    fn rejects_quantified_query() {
        let ud = simple_ud();
        let f = parse_formula("exists x. S(x)").unwrap();
        let _ = qf_reliability(&ud, &f, &[]);
    }

    #[test]
    fn unknown_relation_error() {
        let ud = simple_ud();
        let f = parse_formula("Z(x)").unwrap();
        assert!(matches!(
            qf_reliability(&ud, &f, &["x".to_string()]),
            Err(EvalError::UnknownRelation(_))
        ));
    }
}
