//! Absolute-error Monte-Carlo reliability estimation for *all*
//! polynomial-time evaluable queries (Theorem 5.12).
//!
//! Direct sampling of the indicator `X = ψ^𝔅` estimates `ν(ψ)` with
//! additive error, but the paper routes through Lemma 5.11 — a
//! *relative*-error bound that degenerates as `E[X] → 0`. The fix is the
//! padding construction: add a fresh unary relation `R` (empty in the
//! observed database) and two fresh constants `c ≠ d`, set
//! `μ'(Rc) = μ'(Rd) = ξ` for a fixed rational `ξ ∈ (0, 1/2)`, and
//! estimate the modified query
//!
//! ```text
//! ψ' = (ψ ∨ Rc) ∧ Rd,       ν(ψ') = ξ² + (ξ − ξ²)·ν(ψ),
//! ```
//!
//! whose expectation is trapped in `[ξ², ξ] ⊂ (0, 1/2)`. With
//! `t = ⌈9/(2ξε²)·ln(1/δ)⌉` samples (Lemma 5.11) the de-biased estimate
//! `α = (X̃ − ξ²)/(ξ − ξ²)` satisfies `Pr[|α − ν(ψ)| > 2ε] < δ`; the
//! public API takes the target `ε` and internally runs at `ε/2`, exactly
//! as the proof does.
//!
//! [`direct_probability`] (plain Hoeffding sampling) is also provided —
//! the ablation experiment compares the two samplers' budgets.

use qrel_arith::BigRational;
use qrel_budget::{Budget, Exhausted, Resource};
use qrel_count::bounds::{hoeffding_samples, karp_luby_t};
use qrel_eval::{EvalError, Query};
use qrel_par::{run_shards, run_shards_with, shard_counts, split_seed};
use qrel_prob::sampler::bernoulli;
use qrel_prob::{UnreliableDatabase, WorldSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a Theorem 5.12 estimation.
#[derive(Debug, Clone, PartialEq)]
pub struct PtimeEstimate {
    /// The de-biased estimate (of `ν(ψ)`, or of `R_ψ` for the reliability
    /// wrappers).
    pub estimate: f64,
    /// Total samples drawn.
    pub samples: u64,
    /// The raw padded-query mean `X̃` (diagnostic; in `[ξ², ξ]` in
    /// expectation).
    pub padded_mean: f64,
}

/// The Theorem 5.12 estimator with a fixed padding parameter `ξ`.
///
/// `ξ` is chosen *before* seeing the database or the accuracy targets
/// (footnote 3 of the paper); `1/4` is a reasonable default.
///
/// ```
/// use qrel_core::ptime_estimator::PaddingEstimator;
/// use qrel_arith::BigRational;
/// use qrel_db::{DatabaseBuilder, Fact};
/// use qrel_eval::FoQuery;
/// use qrel_prob::UnreliableDatabase;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let db = DatabaseBuilder::new().universe_size(1).relation("S", 1).build();
/// let mut ud = UnreliableDatabase::reliable(db);
/// ud.set_error(&Fact::new(0, vec![0]), BigRational::from_ratio(1, 2)).unwrap();
///
/// let q = FoQuery::parse("exists x. S(x)").unwrap(); // true w.p. 1/2
/// let est = PaddingEstimator::default_xi();
/// let mut rng = StdRng::seed_from_u64(1);
/// let rep = est.estimate_probability(&ud, &q, 0.1, 0.05, &mut rng).unwrap();
/// assert!((rep.estimate - 0.5).abs() <= 0.1);
/// assert_eq!(rep.samples, est.samples_for(0.1, 0.05));
/// ```
#[derive(Debug, Clone)]
pub struct PaddingEstimator {
    xi: BigRational,
}

impl PaddingEstimator {
    /// # Panics
    /// Panics unless `0 < ξ < 1/2`.
    pub fn new(xi: BigRational) -> Self {
        assert!(
            xi > BigRational::zero() && xi < BigRational::from_ratio(1, 2),
            "ξ must be in (0, 1/2)"
        );
        PaddingEstimator { xi }
    }

    /// The default `ξ = 1/4`.
    pub fn default_xi() -> Self {
        Self::new(BigRational::from_ratio(1, 4))
    }

    pub fn xi(&self) -> &BigRational {
        &self.xi
    }

    /// Lemma 5.11 sample count for target absolute error `ε` (run at
    /// `ε/2` as in the proof) and confidence `1 − δ`.
    pub fn samples_for(&self, eps: f64, delta: f64) -> u64 {
        karp_luby_t(self.xi.to_f64(), eps / 2.0, delta)
    }

    /// The exact padded expectation `ν(ψ') = ξ² + (ξ−ξ²)·ν(ψ)` — the
    /// algebraic identity the de-biasing inverts (exposed for the
    /// verification tests and experiments).
    pub fn padded_expectation(&self, nu_psi: &BigRational) -> BigRational {
        let xi2 = self.xi.mul_ref(&self.xi);
        xi2.add_ref(&self.xi.sub_ref(&xi2).mul_ref(nu_psi))
    }

    /// Estimate `ν(ψ)` for a Boolean query with `Pr[|α − ν(ψ)| > ε] < δ`.
    ///
    /// Each sample draws a world `𝔅 ~ ν` plus two independent
    /// `ξ`-Bernoullis for the padding facts `Rc`, `Rd`, and evaluates
    /// `X = (ψ^𝔅 ∨ Rc) ∧ Rd` — the padded query on the extended
    /// database, with `ψ` relativized to the original universe (the fresh
    /// constants are, by construction, irrelevant to `ψ`).
    pub fn estimate_probability<R: Rng>(
        &self,
        ud: &UnreliableDatabase,
        query: &dyn Query,
        eps: f64,
        delta: f64,
        rng: &mut R,
    ) -> Result<PtimeEstimate, EvalError> {
        assert_eq!(
            query.arity(),
            0,
            "estimate_probability requires a Boolean query"
        );
        let t = self.samples_for(eps, delta);
        let sampler = WorldSampler::new(ud);
        let mut hits = 0u64;
        for _ in 0..t {
            let rc = bernoulli(&self.xi, rng);
            let rd = bernoulli(&self.xi, rng);
            // Lazy evaluation: ψ only matters when Rd ∧ ¬Rc.
            let x = rd && (rc || query.eval(&sampler.sample(rng), &[])?);
            if x {
                hits += 1;
            }
        }
        let padded_mean = hits as f64 / t as f64;
        let xi = self.xi.to_f64();
        let estimate = ((padded_mean - xi * xi) / (xi - xi * xi)).clamp(0.0, 1.0);
        Ok(PtimeEstimate {
            estimate,
            samples: t,
            padded_mean,
        })
    }

    /// Sharded deterministic [`Self::estimate_probability`]: the Lemma
    /// 5.11 sample count is cut into `shards` fixed pieces, each drawn on
    /// an independent seed-split `StdRng` with its own [`WorldSampler`],
    /// and the integer hit counts are merged exactly — the result depends
    /// on `(eps, delta, seed, shards)` but never on `threads`.
    #[allow(clippy::too_many_arguments)]
    pub fn estimate_probability_sharded(
        &self,
        ud: &UnreliableDatabase,
        query: &(dyn Query + Sync),
        eps: f64,
        delta: f64,
        seed: u64,
        shards: usize,
        threads: usize,
    ) -> Result<PtimeEstimate, EvalError> {
        assert_eq!(
            query.arity(),
            0,
            "estimate_probability requires a Boolean query"
        );
        let t = self.samples_for(eps, delta);
        let counts = shard_counts(t, shards);
        let parts = run_shards(shards, threads, |s| {
            let mut rng = StdRng::seed_from_u64(split_seed(seed, s as u64));
            let sampler = WorldSampler::new(ud);
            let mut hits = 0u64;
            for _ in 0..counts[s] {
                let rc = bernoulli(&self.xi, &mut rng);
                let rd = bernoulli(&self.xi, &mut rng);
                let x = rd && (rc || query.eval(&sampler.sample(&mut rng), &[])?);
                if x {
                    hits += 1;
                }
            }
            Ok::<u64, EvalError>(hits)
        });
        let mut hits = 0u64;
        for part in parts {
            hits += part?;
        }
        let padded_mean = hits as f64 / t as f64;
        let xi = self.xi.to_f64();
        let estimate = ((padded_mean - xi * xi) / (xi - xi * xi)).clamp(0.0, 1.0);
        Ok(PtimeEstimate {
            estimate,
            samples: t,
            padded_mean,
        })
    }

    /// Estimate the reliability of a k-ary polynomial-time query with
    /// absolute error `ε` at confidence `1 − δ`, by the per-tuple budget
    /// split of the theorem's k-ary clause.
    pub fn estimate_reliability<R: Rng>(
        &self,
        ud: &UnreliableDatabase,
        query: &dyn Query,
        eps: f64,
        delta: f64,
        rng: &mut R,
    ) -> Result<PtimeEstimate, EvalError> {
        let k = query.arity();
        let db = ud.observed();
        let tuples: Vec<Vec<u32>> = db.universe().tuples(k).collect();
        let nk = tuples.len().max(1);
        let per_eps = (eps / nk as f64).max(1e-9);
        let per_delta = (delta / nk as f64).min(0.5);
        let sampler = WorldSampler::new(ud);
        let t = self.samples_for(per_eps, per_delta);

        let mut h = 0.0f64;
        let mut total_samples = 0u64;
        let xi = self.xi.to_f64();
        for tuple in &tuples {
            let observed = query.eval(db, tuple)?;
            // Padded query for ψ(ā) if observed is false, for ¬ψ(ā) if
            // observed true — either way the padded mean estimates
            // ν(error at ā).
            let mut hits = 0u64;
            for _ in 0..t {
                let rc = bernoulli(&self.xi, rng);
                let rd = bernoulli(&self.xi, rng);
                let x = rd
                    && (rc || {
                        let actual = query.eval(&sampler.sample(rng), tuple)?;
                        actual != observed
                    });
                if x {
                    hits += 1;
                }
            }
            total_samples += t;
            let mean = hits as f64 / t as f64;
            let h_tuple = ((mean - xi * xi) / (xi - xi * xi)).clamp(0.0, 1.0);
            h += h_tuple;
        }
        let reliability = 1.0 - h / nk as f64;
        Ok(PtimeEstimate {
            estimate: reliability,
            samples: total_samples,
            padded_mean: f64::NAN,
        })
    }
}

/// Outcome of a budgeted padding estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum PaddingOutcome {
    Complete(PtimeEstimate),
    /// The budget tripped mid-sampling; `partial_estimate` is the
    /// de-biased reliability over the worlds drawn so far (guarantee-free
    /// but bounded in `[0, 1]`).
    Exhausted {
        partial_estimate: f64,
        samples: u64,
        cause: Exhausted,
    },
}

impl PaddingEstimator {
    /// [`Self::estimate_reliability_shared_worlds`] under a cooperative
    /// [`Budget`]: each sampled world charges one [`Resource::Samples`],
    /// and on a trip the partial per-tuple means are de-biased and
    /// returned instead of being discarded.
    pub fn estimate_reliability_budgeted<R: Rng>(
        &self,
        ud: &UnreliableDatabase,
        query: &dyn Query,
        eps: f64,
        delta: f64,
        budget: &Budget,
        rng: &mut R,
    ) -> Result<PaddingOutcome, EvalError> {
        let k = query.arity();
        let db = ud.observed();
        let tuples: Vec<Vec<u32>> = db.universe().tuples(k).collect();
        let nk = tuples.len().max(1);
        let per_eps = (eps / nk as f64).max(1e-9);
        let per_delta = (delta / nk as f64).min(0.5);
        let sampler = WorldSampler::new(ud);
        let t = self.samples_for(per_eps, per_delta);

        let observed = query.answers(db)?;
        let mut hits = vec![0u64; nk];
        let mut drawn = 0u64;
        let mut cause = None;
        for _ in 0..t {
            if let Err(e) = budget.charge(Resource::Samples, 1) {
                cause = Some(e);
                break;
            }
            let answers = query.answers(&sampler.sample(rng))?;
            for (i, tuple) in tuples.iter().enumerate() {
                let rc = bernoulli(&self.xi, rng);
                let rd = bernoulli(&self.xi, rng);
                let wrong = answers.contains(tuple) != observed.contains(tuple);
                if rd && (rc || wrong) {
                    hits[i] += 1;
                }
            }
            drawn += 1;
        }
        let xi = self.xi.to_f64();
        let mut h = 0.0f64;
        for &count in &hits {
            let mean = count as f64 / drawn.max(1) as f64;
            h += ((mean - xi * xi) / (xi - xi * xi)).clamp(0.0, 1.0);
        }
        let reliability = (1.0 - h / nk as f64).clamp(0.0, 1.0);
        match cause {
            Some(cause) => Ok(PaddingOutcome::Exhausted {
                partial_estimate: reliability,
                samples: drawn,
                cause,
            }),
            None => Ok(PaddingOutcome::Complete(PtimeEstimate {
                estimate: reliability,
                samples: drawn,
                padded_mean: f64::NAN,
            })),
        }
    }

    /// Batched variant of [`Self::estimate_reliability`]: each sampled
    /// world is evaluated *once* via [`Query::answers`] and reused for
    /// every tuple, instead of drawing fresh worlds per tuple. The
    /// per-tuple error estimators become correlated across tuples, but
    /// each remains marginally a valid Lemma 5.11 estimator and the
    /// union bound over per-tuple deviations does not require
    /// independence — so the `(ε, δ)` guarantee is preserved while the
    /// number of query evaluations drops from `n^k · t` to `t`.
    pub fn estimate_reliability_shared_worlds<R: Rng>(
        &self,
        ud: &UnreliableDatabase,
        query: &dyn Query,
        eps: f64,
        delta: f64,
        rng: &mut R,
    ) -> Result<PtimeEstimate, EvalError> {
        let k = query.arity();
        let db = ud.observed();
        let tuples: Vec<Vec<u32>> = db.universe().tuples(k).collect();
        let nk = tuples.len().max(1);
        let per_eps = (eps / nk as f64).max(1e-9);
        let per_delta = (delta / nk as f64).min(0.5);
        let sampler = WorldSampler::new(ud);
        let t = self.samples_for(per_eps, per_delta);

        let observed = query.answers(db)?;
        let mut hits = vec![0u64; nk];
        for _ in 0..t {
            // Padding coins are drawn independently per tuple (they are
            // cheap); only the world — the expensive part — is shared.
            let answers = query.answers(&sampler.sample(rng))?;
            for (i, tuple) in tuples.iter().enumerate() {
                let rc = bernoulli(&self.xi, rng);
                let rd = bernoulli(&self.xi, rng);
                let wrong = answers.contains(tuple) != observed.contains(tuple);
                if rd && (rc || wrong) {
                    hits[i] += 1;
                }
            }
        }
        let xi = self.xi.to_f64();
        let mut h = 0.0f64;
        for &count in &hits {
            let mean = count as f64 / t as f64;
            h += ((mean - xi * xi) / (xi - xi * xi)).clamp(0.0, 1.0);
        }
        Ok(PtimeEstimate {
            estimate: 1.0 - h / nk as f64,
            samples: t,
            padded_mean: f64::NAN,
        })
    }

    /// Sharded deterministic [`Self::estimate_reliability_shared_worlds`]:
    /// each shard draws its fixed slice of the sample count on an
    /// independent seed-split RNG, accumulating per-tuple integer hit
    /// vectors that are merged element-wise — the de-biased reliability
    /// depends on `(eps, delta, seed, shards)` but never on `threads`.
    #[allow(clippy::too_many_arguments)]
    pub fn estimate_reliability_sharded(
        &self,
        ud: &UnreliableDatabase,
        query: &(dyn Query + Sync),
        eps: f64,
        delta: f64,
        seed: u64,
        shards: usize,
        threads: usize,
    ) -> Result<PtimeEstimate, EvalError> {
        let k = query.arity();
        let db = ud.observed();
        let tuples: Vec<Vec<u32>> = db.universe().tuples(k).collect();
        let nk = tuples.len().max(1);
        let per_eps = (eps / nk as f64).max(1e-9);
        let per_delta = (delta / nk as f64).min(0.5);
        let t = self.samples_for(per_eps, per_delta);
        let counts = shard_counts(t, shards);

        let observed = query.answers(db)?;
        let parts = run_shards(shards, threads, |s| {
            let mut rng = StdRng::seed_from_u64(split_seed(seed, s as u64));
            let sampler = WorldSampler::new(ud);
            let mut hits = vec![0u64; nk];
            for _ in 0..counts[s] {
                let answers = query.answers(&sampler.sample(&mut rng))?;
                for (i, tuple) in tuples.iter().enumerate() {
                    let rc = bernoulli(&self.xi, &mut rng);
                    let rd = bernoulli(&self.xi, &mut rng);
                    let wrong = answers.contains(tuple) != observed.contains(tuple);
                    if rd && (rc || wrong) {
                        hits[i] += 1;
                    }
                }
            }
            Ok::<Vec<u64>, EvalError>(hits)
        });
        let mut hits = vec![0u64; nk];
        for part in parts {
            for (slot, shard_hits) in hits.iter_mut().zip(part?) {
                *slot += shard_hits;
            }
        }
        let xi = self.xi.to_f64();
        let mut h = 0.0f64;
        for &count in &hits {
            let mean = count as f64 / t as f64;
            h += ((mean - xi * xi) / (xi - xi * xi)).clamp(0.0, 1.0);
        }
        Ok(PtimeEstimate {
            estimate: 1.0 - h / nk as f64,
            samples: t,
            padded_mean: f64::NAN,
        })
    }

    /// Sharded [`Self::estimate_reliability_budgeted`]: the parent budget
    /// is [`Budget::split`] across the shards and settled back in shard
    /// order, so a sample-capped run draws exactly the capped number of
    /// worlds and returns a bit-identical partial estimate for every
    /// thread count (wall-clock and cancellation trips remain
    /// scheduling-dependent, as in the serial engine). The first trip
    /// cause *in shard order* is reported.
    #[allow(clippy::too_many_arguments)]
    pub fn estimate_reliability_budgeted_sharded(
        &self,
        ud: &UnreliableDatabase,
        query: &(dyn Query + Sync),
        eps: f64,
        delta: f64,
        budget: &Budget,
        seed: u64,
        shards: usize,
        threads: usize,
    ) -> Result<PaddingOutcome, EvalError> {
        let k = query.arity();
        let db = ud.observed();
        let tuples: Vec<Vec<u32>> = db.universe().tuples(k).collect();
        let nk = tuples.len().max(1);
        let per_eps = (eps / nk as f64).max(1e-9);
        let per_delta = (delta / nk as f64).min(0.5);
        let t = self.samples_for(per_eps, per_delta);
        let counts = shard_counts(t, shards);

        let observed = query.answers(db)?;
        let children = budget.split(shards);
        let parts = run_shards_with(children, threads, |s, child: Budget| {
            let mut rng = StdRng::seed_from_u64(split_seed(seed, s as u64));
            let sampler = WorldSampler::new(ud);
            let mut hits = vec![0u64; nk];
            let mut drawn = 0u64;
            let mut cause = None;
            for _ in 0..counts[s] {
                if let Err(e) = child.charge(Resource::Samples, 1) {
                    cause = Some(e);
                    break;
                }
                let answers = match query.answers(&sampler.sample(&mut rng)) {
                    Ok(a) => a,
                    Err(e) => return (hits, drawn, cause, Some(e), child),
                };
                for (i, tuple) in tuples.iter().enumerate() {
                    let rc = bernoulli(&self.xi, &mut rng);
                    let rd = bernoulli(&self.xi, &mut rng);
                    let wrong = answers.contains(tuple) != observed.contains(tuple);
                    if rd && (rc || wrong) {
                        hits[i] += 1;
                    }
                }
                drawn += 1;
            }
            (hits, drawn, cause, None, child)
        });
        let mut hits = vec![0u64; nk];
        let mut drawn = 0u64;
        let mut first_cause: Option<Exhausted> = None;
        let mut first_failure: Option<EvalError> = None;
        for (part_hits, part_drawn, cause, failure, child) in parts {
            budget.settle(&child);
            for (slot, shard_hits) in hits.iter_mut().zip(part_hits) {
                *slot += shard_hits;
            }
            drawn += part_drawn;
            if first_cause.is_none() {
                first_cause = cause;
            }
            if first_failure.is_none() {
                first_failure = failure;
            }
        }
        if let Some(e) = first_failure {
            return Err(e);
        }
        let xi = self.xi.to_f64();
        let mut h = 0.0f64;
        for &count in &hits {
            let mean = count as f64 / drawn.max(1) as f64;
            h += ((mean - xi * xi) / (xi - xi * xi)).clamp(0.0, 1.0);
        }
        let reliability = (1.0 - h / nk as f64).clamp(0.0, 1.0);
        match first_cause {
            Some(cause) => Ok(PaddingOutcome::Exhausted {
                partial_estimate: reliability,
                samples: drawn,
                cause,
            }),
            None => Ok(PaddingOutcome::Complete(PtimeEstimate {
                estimate: reliability,
                samples: drawn,
                padded_mean: f64::NAN,
            })),
        }
    }
}

/// Baseline: estimate `ν(ψ)` by direct world sampling with the Hoeffding
/// additive bound (no padding). Same guarantee as the theorem's
/// construction, usually with far fewer samples — the experiments
/// quantify the gap.
pub fn direct_probability<R: Rng>(
    ud: &UnreliableDatabase,
    query: &dyn Query,
    eps: f64,
    delta: f64,
    rng: &mut R,
) -> Result<PtimeEstimate, EvalError> {
    assert_eq!(
        query.arity(),
        0,
        "direct_probability requires a Boolean query"
    );
    let t = hoeffding_samples(eps, delta);
    let sampler = WorldSampler::new(ud);
    let mut hits = 0u64;
    for _ in 0..t {
        if query.eval(&sampler.sample(rng), &[])? {
            hits += 1;
        }
    }
    let mean = hits as f64 / t as f64;
    Ok(PtimeEstimate {
        estimate: mean,
        samples: t,
        padded_mean: mean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_probability, exact_reliability};
    use qrel_db::{DatabaseBuilder, Fact};
    use qrel_eval::{DatalogQuery, FoQuery};
    use qrel_par::DEFAULT_SHARDS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn setup() -> UnreliableDatabase {
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("E", 2)
            .tuples("E", [vec![0, 1], vec![1, 2]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_relation_error("E", r(1, 6)).unwrap();
        ud
    }

    #[test]
    fn padded_expectation_identity() {
        // ν(ψ') = ξ² + (ξ−ξ²)ν(ψ) exactly, for several ξ and ν.
        for xi in [r(1, 8), r(1, 4), r(3, 8)] {
            let est = PaddingEstimator::new(xi.clone());
            for nu in [r(0, 1), r(1, 3), r(1, 2), r(1, 1)] {
                let padded = est.padded_expectation(&nu);
                // Independent hand computation: ξ·(ν + ξ(1−ν)).
                let expect = xi.mul_ref(&nu.add_ref(&xi.mul_ref(&nu.one_minus())));
                assert_eq!(padded, expect);
                // Bounds ξ² ≤ ν(ψ') ≤ ξ of the proof.
                assert!(padded >= xi.mul_ref(&xi) && padded <= xi);
            }
        }
    }

    #[test]
    fn estimates_fo_probability_within_bounds() {
        let ud = setup();
        let q = FoQuery::parse("exists x y z. E(x,y) & E(y,z)").unwrap();
        let exact = exact_probability(&ud, &q).unwrap().to_f64();
        let est = PaddingEstimator::default_xi();
        let mut rng = StdRng::seed_from_u64(7);
        let rep = est
            .estimate_probability(&ud, &q, 0.08, 0.05, &mut rng)
            .unwrap();
        assert!(
            (rep.estimate - exact).abs() <= 0.08,
            "estimate {} vs exact {exact}",
            rep.estimate
        );
        assert_eq!(rep.samples, est.samples_for(0.08, 0.05));
    }

    #[test]
    fn estimates_datalog_reliability() {
        // Reachability reliability — a genuinely non-first-order PTIME
        // query, the case that motivates Theorem 5.12.
        let ud = setup();
        let q = DatalogQuery::parse("T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).", "T").unwrap();
        let exact = exact_reliability(&ud, &q).unwrap().reliability.to_f64();
        let est = PaddingEstimator::default_xi();
        let mut rng = StdRng::seed_from_u64(8);
        let rep = est
            .estimate_reliability(&ud, &q, 0.15, 0.1, &mut rng)
            .unwrap();
        assert!(
            (rep.estimate - exact).abs() <= 0.15,
            "estimate {} vs exact {exact}",
            rep.estimate
        );
    }

    #[test]
    fn shared_worlds_variant_agrees_with_exact() {
        let ud = setup();
        let q = DatalogQuery::parse("T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).", "T").unwrap();
        let exact = exact_reliability(&ud, &q).unwrap().reliability.to_f64();
        let est = PaddingEstimator::default_xi();
        let mut rng = StdRng::seed_from_u64(18);
        let rep = est
            .estimate_reliability_shared_worlds(&ud, &q, 0.15, 0.1, &mut rng)
            .unwrap();
        assert!(
            (rep.estimate - exact).abs() <= 0.15,
            "estimate {} vs exact {exact}",
            rep.estimate
        );
        // The shared variant evaluates the query t times total, not n^k·t.
        let per_tuple = est
            .estimate_reliability(&ud, &q, 0.15, 0.1, &mut rng)
            .unwrap();
        assert!(rep.samples < per_tuple.samples);
    }

    #[test]
    fn direct_estimator_agrees() {
        let ud = setup();
        let q = FoQuery::parse("exists x y. E(x,y)").unwrap();
        let exact = exact_probability(&ud, &q).unwrap().to_f64();
        let mut rng = StdRng::seed_from_u64(9);
        let rep = direct_probability(&ud, &q, 0.03, 0.02, &mut rng).unwrap();
        assert!((rep.estimate - exact).abs() <= 0.03);
    }

    #[test]
    fn padding_needs_more_samples_than_hoeffding() {
        // The quantified ablation claim: the paper's construction pays a
        // constant-factor sample premium over direct Hoeffding sampling.
        let est = PaddingEstimator::default_xi();
        assert!(est.samples_for(0.1, 0.05) > hoeffding_samples(0.1, 0.05));
    }

    #[test]
    fn extreme_probabilities_debiased_correctly() {
        // ψ ≡ false and ψ ≡ true: sampling noise only enters through the
        // padding coins; the de-bias map must stay in [0,1].
        let db = DatabaseBuilder::new()
            .universe_size(1)
            .relation("S", 1)
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(1, 2)).unwrap();
        let est = PaddingEstimator::default_xi();
        let mut rng = StdRng::seed_from_u64(10);
        let f = FoQuery::parse("exists x. S(x) & !S(x)").unwrap();
        let rep = est
            .estimate_probability(&ud, &f, 0.1, 0.05, &mut rng)
            .unwrap();
        assert!(
            rep.estimate <= 0.12,
            "false query estimated {}",
            rep.estimate
        );
        let t = FoQuery::parse("exists x. S(x) | !S(x)").unwrap();
        let rep = est
            .estimate_probability(&ud, &t, 0.1, 0.05, &mut rng)
            .unwrap();
        assert!(
            rep.estimate >= 0.88,
            "true query estimated {}",
            rep.estimate
        );
    }

    #[test]
    fn budgeted_padding_complete_matches_shared_worlds() {
        let ud = setup();
        let q = FoQuery::parse("exists x y. E(x,y)").unwrap();
        let est = PaddingEstimator::default_xi();
        let mut rng = StdRng::seed_from_u64(21);
        let plain = est
            .estimate_reliability_shared_worlds(&ud, &q, 0.15, 0.1, &mut rng)
            .unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let budget = Budget::unlimited();
        match est
            .estimate_reliability_budgeted(&ud, &q, 0.15, 0.1, &budget, &mut rng)
            .unwrap()
        {
            // Field-wise: `padded_mean` is the NaN sentinel on both sides
            // (multi-tuple variants have no single padded mean).
            PaddingOutcome::Complete(rep) => {
                assert_eq!(rep.estimate, plain.estimate);
                assert_eq!(rep.samples, plain.samples);
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn budgeted_padding_trips_with_partial_estimate() {
        let ud = setup();
        let q = FoQuery::parse("exists x y. E(x,y)").unwrap();
        let est = PaddingEstimator::default_xi();
        let budget = Budget::unlimited().with_max_samples(50);
        let mut rng = StdRng::seed_from_u64(22);
        match est
            .estimate_reliability_budgeted(&ud, &q, 0.05, 0.05, &budget, &mut rng)
            .unwrap()
        {
            PaddingOutcome::Exhausted {
                partial_estimate,
                samples,
                cause,
            } => {
                assert_eq!(samples, 50);
                assert_eq!(cause.resource, Resource::Samples);
                assert!((0.0..=1.0).contains(&partial_estimate));
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
    }

    #[test]
    fn sharded_probability_is_thread_count_invariant_and_accurate() {
        let ud = setup();
        let q = FoQuery::parse("exists x y. E(x,y)").unwrap();
        let exact = exact_probability(&ud, &q).unwrap().to_f64();
        let est = PaddingEstimator::default_xi();
        let serial = est
            .estimate_probability_sharded(&ud, &q, 0.08, 0.05, 31, DEFAULT_SHARDS, 1)
            .unwrap();
        for threads in [2usize, 4, 8] {
            let par = est
                .estimate_probability_sharded(&ud, &q, 0.08, 0.05, 31, DEFAULT_SHARDS, threads)
                .unwrap();
            assert_eq!(par.estimate.to_bits(), serial.estimate.to_bits());
            assert_eq!(par.samples, serial.samples);
        }
        assert!(
            (serial.estimate - exact).abs() <= 0.08,
            "estimate {} vs exact {exact}",
            serial.estimate
        );
    }

    #[test]
    fn sharded_reliability_is_thread_count_invariant_and_accurate() {
        // A small k-ary query keeps the per-tuple sample count modest:
        // invariance is a structural property of the seed-split/merge, so
        // an expensive query would buy nothing here.
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("E", 2)
            .tuples("E", [vec![0, 1]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_relation_error("E", r(1, 6)).unwrap();
        let q = FoQuery::parse("E(x,y)").unwrap();
        let exact = exact_reliability(&ud, &q).unwrap().reliability.to_f64();
        let est = PaddingEstimator::default_xi();
        let serial = est
            .estimate_reliability_sharded(&ud, &q, 0.25, 0.2, 32, DEFAULT_SHARDS, 1)
            .unwrap();
        let par = est
            .estimate_reliability_sharded(&ud, &q, 0.25, 0.2, 32, DEFAULT_SHARDS, 4)
            .unwrap();
        assert_eq!(par.estimate.to_bits(), serial.estimate.to_bits());
        assert!(
            (serial.estimate - exact).abs() <= 0.25,
            "estimate {} vs exact {exact}",
            serial.estimate
        );
    }

    #[test]
    fn budgeted_sharded_conserves_the_sample_cap() {
        let ud = setup();
        let q = FoQuery::parse("exists x y. E(x,y)").unwrap();
        let est = PaddingEstimator::default_xi();
        let run = |threads: usize| {
            let budget = Budget::unlimited().with_max_samples(50);
            let outcome = est
                .estimate_reliability_budgeted_sharded(
                    &ud,
                    &q,
                    0.05,
                    0.05,
                    &budget,
                    33,
                    DEFAULT_SHARDS,
                    threads,
                )
                .unwrap();
            (outcome, budget.spent(Resource::Samples))
        };
        let (base, base_spent) = run(1);
        assert_eq!(base_spent, 50);
        match &base {
            PaddingOutcome::Exhausted { samples, cause, .. } => {
                assert_eq!(*samples, 50);
                assert_eq!(cause.resource, Resource::Samples);
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        for threads in [2usize, 4] {
            assert_eq!(run(threads), (base.clone(), base_spent));
        }
    }

    #[test]
    fn budgeted_sharded_without_limits_matches_sharded() {
        let ud = setup();
        let q = FoQuery::parse("exists x y. E(x,y)").unwrap();
        let est = PaddingEstimator::default_xi();
        let plain = est
            .estimate_reliability_sharded(&ud, &q, 0.15, 0.1, 34, DEFAULT_SHARDS, 4)
            .unwrap();
        let budget = Budget::unlimited();
        match est
            .estimate_reliability_budgeted_sharded(
                &ud,
                &q,
                0.15,
                0.1,
                &budget,
                34,
                DEFAULT_SHARDS,
                4,
            )
            .unwrap()
        {
            PaddingOutcome::Complete(rep) => {
                assert_eq!(rep.estimate.to_bits(), plain.estimate.to_bits());
                assert_eq!(rep.samples, plain.samples);
                assert_eq!(budget.spent(Resource::Samples), plain.samples);
            }
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "ξ must be in")]
    fn xi_validated() {
        PaddingEstimator::new(r(1, 2));
    }

    #[test]
    fn sample_count_matches_lemma() {
        let est = PaddingEstimator::new(r(1, 4));
        // t = ⌈9/(2·(1/4)·(ε/2)²)·ln(1/δ)⌉ with ε = 0.2, δ = 0.1.
        let expected = (9.0 / (2.0 * 0.25 * 0.01) * 10f64.ln()).ceil() as u64;
        assert_eq!(est.samples_for(0.2, 0.1), expected);
    }
}
