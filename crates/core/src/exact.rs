//! Exact reliability for arbitrary queries by weighted world enumeration
//! — the executable content of Theorem 4.2.
//!
//! The FP^#P algorithm of the theorem enumerates all truth assignments to
//! the atomic statements (the worlds `𝔅 ∈ Ω(𝔇)`), splits each leaf
//! `ν(𝔅)·g` times for the normalizer `g`, evaluates `ψ` at each leaf, and
//! reads `g · Pr[𝔅 ⊨ ψ]` off the accepting-path count. We execute exactly
//! this computation: worlds are enumerated with their exact probabilities,
//! the query is evaluated on each (any [`Query`] — first-order,
//! second-order via enumeration, Datalog, or a closure), and the
//! `g`-normalized integer certificate is produced alongside the rational
//! result. Exponential in the number of uncertain facts, as the theorem's
//! placement in FP^#P (and Prop 3.2's hardness) says it must be.

use qrel_arith::{BigInt, BigRational, BigUint};
use qrel_budget::{Budget, Exhausted, Resource};
use qrel_eval::{EvalError, Query};
use qrel_par::{run_shards, run_shards_with, shard_ranges, DEFAULT_SHARDS};
use qrel_prob::normalizer::sound_g;
use qrel_prob::UnreliableDatabase;

/// Exact reliability computation result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExactReport {
    /// `H_ψ(𝔇)` — the expected Hamming distance.
    pub expected_error: BigRational,
    /// `R_ψ(𝔇) = 1 − H_ψ/n^k`.
    pub reliability: BigRational,
    /// Number of worlds enumerated (`2^u`).
    pub worlds: u64,
}

/// Outcome of a budgeted exact computation: either the full answer or
/// the partial sums accumulated before the budget tripped.
///
/// In the `Exhausted` case `partial_expected_error` is an exact *lower*
/// bound on `H_ψ(𝔇)` (every unvisited world can only add error mass),
/// and `mass_visited` is the total probability of the worlds already
/// enumerated — so `H_ψ` is also bounded above by
/// `partial_expected_error + (1 − mass_visited) · n^k`, which the
/// runtime uses to report a bracketed degraded answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExactOutcome {
    Complete(ExactReport),
    Exhausted {
        /// Exact error mass over the worlds visited so far.
        partial_expected_error: BigRational,
        /// Total probability of the visited worlds (`≤ 1`).
        mass_visited: BigRational,
        /// Worlds enumerated before the trip.
        worlds: u64,
        /// What tripped.
        cause: Exhausted,
    },
}

/// The Theorem 4.2 counting certificate: a natural number `g` and the
/// accepting-path count `g · Pr[𝔅 ⊨ ψ]`, which is guaranteed integral.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountingCertificate {
    /// The (corrected — see `qrel_prob::normalizer`) normalizer.
    pub g: BigUint,
    /// `g · Pr[𝔅 ⊨ ψ] ∈ ℕ` — the number of accepting paths of the
    /// nondeterministic machine in the proof.
    pub accepting_paths: BigUint,
}

/// Exact `Pr[𝔅 ⊨ ψ]` for a Boolean query by full world enumeration.
pub fn exact_probability(
    ud: &UnreliableDatabase,
    query: &dyn Query,
) -> Result<BigRational, EvalError> {
    assert_eq!(
        query.arity(),
        0,
        "exact_probability requires a Boolean query"
    );
    let mut p = BigRational::zero();
    let mut failure: Option<EvalError> = None;
    // Gray-code traversal: one fact flip and one rational update per world.
    ud.visit_worlds(|world, prob| match query.eval(world, &[]) {
        Ok(true) => {
            p = p.add_ref(prob);
            true
        }
        Ok(false) => true,
        Err(e) => {
            failure = Some(e);
            false
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok(p),
    }
}

/// Parallel [`exact_probability`]: the Gray-code world sequence
/// `[0, 2^u)` is tiled into [`DEFAULT_SHARDS`] contiguous ranges, each
/// enumerated by [`UnreliableDatabase::visit_worlds_range`] on its own
/// worker, and the exact rational partial sums are merged in shard
/// order. Rational addition is associative and the merge order is
/// fixed, so the result is *identical* (not just bit-close) to the
/// serial sweep for every thread count.
pub fn exact_probability_parallel(
    ud: &UnreliableDatabase,
    query: &(dyn Query + Sync),
    threads: usize,
) -> Result<BigRational, EvalError> {
    assert_eq!(
        query.arity(),
        0,
        "exact_probability requires a Boolean query"
    );
    let total = 1u64 << ud.uncertain_facts().len();
    let ranges = shard_ranges(total, DEFAULT_SHARDS);
    let parts = run_shards(DEFAULT_SHARDS, threads, |s| {
        let (start, end) = ranges[s];
        let mut p = BigRational::zero();
        let mut failure: Option<EvalError> = None;
        ud.visit_worlds_range(start, end, |world, prob| match query.eval(world, &[]) {
            Ok(true) => {
                p = p.add_ref(prob);
                true
            }
            Ok(false) => true,
            Err(e) => {
                failure = Some(e);
                false
            }
        });
        (p, failure)
    });
    let mut p = BigRational::zero();
    for (part, failure) in parts {
        if let Some(e) = failure {
            return Err(e);
        }
        p = p.add_ref(&part);
    }
    Ok(p)
}

/// Exact expected error and reliability for an arbitrary k-ary query.
///
/// `H_ψ = Σ_𝔅 ν(𝔅) · |ψ^𝔄 Δ ψ^𝔅|`, evaluated with exact rationals.
///
/// ```
/// use qrel_core::exact::exact_reliability;
/// use qrel_arith::BigRational;
/// use qrel_db::{DatabaseBuilder, Fact};
/// use qrel_eval::FoQuery;
/// use qrel_prob::UnreliableDatabase;
///
/// let db = DatabaseBuilder::new()
///     .universe_size(2)
///     .relation("E", 2)
///     .tuples("E", [vec![0, 1]])
///     .build();
/// let mut ud = UnreliableDatabase::reliable(db);
/// ud.set_error(&Fact::new(0, vec![0, 1]), BigRational::from_ratio(1, 5)).unwrap();
///
/// let q = FoQuery::parse("exists x y. E(x, y)").unwrap();
/// let report = exact_reliability(&ud, &q).unwrap();
/// // The sentence flips exactly when the single uncertain edge flips.
/// assert_eq!(report.expected_error, BigRational::from_ratio(1, 5));
/// assert_eq!(report.worlds, 2);
/// ```
pub fn exact_reliability(
    ud: &UnreliableDatabase,
    query: &dyn Query,
) -> Result<ExactReport, EvalError> {
    let observed_answers = query.answers(ud.observed())?;
    let k = query.arity();
    let mut h = BigRational::zero();
    let mut worlds = 0u64;
    let mut failure: Option<EvalError> = None;
    ud.visit_worlds(|world, prob| {
        worlds += 1;
        match query.answers(world) {
            Ok(answers) => {
                let diff = answers.difference(&observed_answers).len()
                    + observed_answers.difference(&answers).len();
                if diff > 0 {
                    h = h.add_ref(&prob.mul_ref(&BigRational::from_int(diff as i64)));
                }
                true
            }
            Err(e) => {
                failure = Some(e);
                false
            }
        }
    });
    if let Some(e) = failure {
        return Err(e);
    }
    let total = BigRational::from_int(ud.observed().universe().tuple_count(k) as i64);
    let reliability = if total.is_zero() {
        BigRational::one()
    } else {
        h.div_ref(&total).one_minus()
    };
    Ok(ExactReport {
        expected_error: h,
        reliability,
        worlds,
    })
}

/// [`exact_reliability`] under a cooperative [`Budget`]: one
/// [`Resource::Worlds`] is charged per enumerated world, and the
/// Gray-code traversal stops at the first trip, returning the exact
/// partial sums instead of discarding the work done.
pub fn exact_reliability_budgeted(
    ud: &UnreliableDatabase,
    query: &dyn Query,
    budget: &Budget,
) -> Result<ExactOutcome, EvalError> {
    let observed_answers = query.answers(ud.observed())?;
    let k = query.arity();
    let mut h = BigRational::zero();
    let mut mass = BigRational::zero();
    let mut worlds = 0u64;
    let mut failure: Option<EvalError> = None;
    let mut cause: Option<Exhausted> = None;
    ud.visit_worlds(|world, prob| {
        if let Err(e) = budget.charge(Resource::Worlds, 1) {
            cause = Some(e);
            return false;
        }
        worlds += 1;
        match query.answers(world) {
            Ok(answers) => {
                let diff = answers.difference(&observed_answers).len()
                    + observed_answers.difference(&answers).len();
                if diff > 0 {
                    h = h.add_ref(&prob.mul_ref(&BigRational::from_int(diff as i64)));
                }
                mass = mass.add_ref(prob);
                true
            }
            Err(e) => {
                failure = Some(e);
                false
            }
        }
    });
    if let Some(e) = failure {
        return Err(e);
    }
    if let Some(cause) = cause {
        return Ok(ExactOutcome::Exhausted {
            partial_expected_error: h,
            mass_visited: mass,
            worlds,
            cause,
        });
    }
    let total = BigRational::from_int(ud.observed().universe().tuple_count(k) as i64);
    let reliability = if total.is_zero() {
        BigRational::one()
    } else {
        h.div_ref(&total).one_minus()
    };
    Ok(ExactOutcome::Complete(ExactReport {
        expected_error: h,
        reliability,
        worlds,
    }))
}

/// Parallel [`exact_reliability`]: shards the Gray-code sequence as
/// [`exact_probability_parallel`] does and merges the exact per-shard
/// error masses in shard order — identical to the serial result for
/// every thread count.
pub fn exact_reliability_parallel(
    ud: &UnreliableDatabase,
    query: &(dyn Query + Sync),
    threads: usize,
) -> Result<ExactReport, EvalError> {
    let observed_answers = query.answers(ud.observed())?;
    let k = query.arity();
    let total = 1u64 << ud.uncertain_facts().len();
    let ranges = shard_ranges(total, DEFAULT_SHARDS);
    let parts = run_shards(DEFAULT_SHARDS, threads, |s| {
        let (start, end) = ranges[s];
        let mut h = BigRational::zero();
        let mut worlds = 0u64;
        let mut failure: Option<EvalError> = None;
        ud.visit_worlds_range(start, end, |world, prob| {
            worlds += 1;
            match query.answers(world) {
                Ok(answers) => {
                    let diff = answers.difference(&observed_answers).len()
                        + observed_answers.difference(&answers).len();
                    if diff > 0 {
                        h = h.add_ref(&prob.mul_ref(&BigRational::from_int(diff as i64)));
                    }
                    true
                }
                Err(e) => {
                    failure = Some(e);
                    false
                }
            }
        });
        (h, worlds, failure)
    });
    let mut h = BigRational::zero();
    let mut worlds = 0u64;
    for (part, w, failure) in parts {
        if let Some(e) = failure {
            return Err(e);
        }
        h = h.add_ref(&part);
        worlds += w;
    }
    let total = BigRational::from_int(ud.observed().universe().tuple_count(k) as i64);
    let reliability = if total.is_zero() {
        BigRational::one()
    } else {
        h.div_ref(&total).one_minus()
    };
    Ok(ExactReport {
        expected_error: h,
        reliability,
        worlds,
    })
}

/// Parallel [`exact_reliability_budgeted`]: the parent budget is
/// [`Budget::split`] into one child per shard (moved into the worker),
/// each shard enumerates its Gray-code range until its share trips, and
/// the exact partial sums plus child spends are settled back in shard
/// order. Counter caps divide deterministically across shards, so a
/// world-capped run returns bit-identical partial sums for every thread
/// count; only wall-clock and cancellation trips remain
/// scheduling-dependent (exactly as in the serial engine). The first
/// trip cause *in shard order* is reported.
pub fn exact_reliability_budgeted_sharded(
    ud: &UnreliableDatabase,
    query: &(dyn Query + Sync),
    budget: &Budget,
    threads: usize,
) -> Result<ExactOutcome, EvalError> {
    let observed_answers = query.answers(ud.observed())?;
    let k = query.arity();
    let total = 1u64 << ud.uncertain_facts().len();
    let ranges = shard_ranges(total, DEFAULT_SHARDS);
    let children = budget.split(DEFAULT_SHARDS);
    let parts = run_shards_with(children, threads, |s, child: Budget| {
        let (start, end) = ranges[s];
        let mut h = BigRational::zero();
        let mut mass = BigRational::zero();
        let mut worlds = 0u64;
        let mut failure: Option<EvalError> = None;
        let mut cause: Option<Exhausted> = None;
        ud.visit_worlds_range(start, end, |world, prob| {
            if let Err(e) = child.charge(Resource::Worlds, 1) {
                cause = Some(e);
                return false;
            }
            worlds += 1;
            match query.answers(world) {
                Ok(answers) => {
                    let diff = answers.difference(&observed_answers).len()
                        + observed_answers.difference(&answers).len();
                    if diff > 0 {
                        h = h.add_ref(&prob.mul_ref(&BigRational::from_int(diff as i64)));
                    }
                    mass = mass.add_ref(prob);
                    true
                }
                Err(e) => {
                    failure = Some(e);
                    false
                }
            }
        });
        (h, mass, worlds, failure, cause, child)
    });
    let mut h = BigRational::zero();
    let mut mass = BigRational::zero();
    let mut worlds = 0u64;
    let mut first_cause: Option<Exhausted> = None;
    let mut first_failure: Option<EvalError> = None;
    for (part_h, part_mass, part_worlds, failure, cause, child) in parts {
        budget.settle(&child);
        h = h.add_ref(&part_h);
        mass = mass.add_ref(&part_mass);
        worlds += part_worlds;
        if first_failure.is_none() {
            first_failure = failure;
        }
        if first_cause.is_none() {
            first_cause = cause;
        }
    }
    if let Some(e) = first_failure {
        return Err(e);
    }
    if let Some(cause) = first_cause {
        return Ok(ExactOutcome::Exhausted {
            partial_expected_error: h,
            mass_visited: mass,
            worlds,
            cause,
        });
    }
    let total = BigRational::from_int(ud.observed().universe().tuple_count(k) as i64);
    let reliability = if total.is_zero() {
        BigRational::one()
    } else {
        h.div_ref(&total).one_minus()
    };
    Ok(ExactOutcome::Complete(ExactReport {
        expected_error: h,
        reliability,
        worlds,
    }))
}

/// Exact per-tuple answer marginals: for every `ā ∈ A^k`, the probability
/// `Pr[ā ∈ ψ^𝔅]` that the tuple belongs to the query answer on the
/// actual database — the "probabilistic relation" view of probabilistic
/// database systems. Exponential in the number of uncertain facts.
pub fn answer_marginals(
    ud: &UnreliableDatabase,
    query: &dyn Query,
) -> Result<Vec<(Vec<u32>, BigRational)>, EvalError> {
    let k = query.arity();
    let tuples: Vec<Vec<u32>> = ud.observed().universe().tuples(k).collect();
    let mut marginals = vec![BigRational::zero(); tuples.len()];
    let mut failure: Option<EvalError> = None;
    ud.visit_worlds(|world, prob| match query.answers(world) {
        Ok(answers) => {
            for (i, t) in tuples.iter().enumerate() {
                if answers.contains(t) {
                    marginals[i] = marginals[i].add_ref(prob);
                }
            }
            true
        }
        Err(e) => {
            failure = Some(e);
            false
        }
    });
    if let Some(e) = failure {
        return Err(e);
    }
    Ok(tuples.into_iter().zip(marginals).collect())
}

/// Produce the Theorem 4.2 certificate for a Boolean query: the
/// accepting-path count `g · Pr[𝔅 ⊨ ψ]` as an exact natural number.
///
/// # Panics
/// Panics (in debug) if the scaled probability fails to be integral —
/// which would falsify the normalizer's soundness.
pub fn counting_certificate(
    ud: &UnreliableDatabase,
    query: &dyn Query,
) -> Result<CountingCertificate, EvalError> {
    let g = sound_g(ud);
    let p = exact_probability(ud, query)?;
    let scaled = p.mul_ref(&BigRational::new(
        BigInt::from_biguint(g.clone()),
        BigInt::one(),
    ));
    assert!(
        scaled.is_integer(),
        "normalizer failed to clear denominators: g = {g}, Pr = {p}"
    );
    Ok(CountingCertificate {
        g,
        accepting_paths: scaled.numer().magnitude().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_db::{DatabaseBuilder, Fact};
    use qrel_eval::{DatalogQuery, FnQuery, FoQuery};
    use qrel_prob::UnreliableDatabase;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn coin_db(p: (i64, u64)) -> UnreliableDatabase {
        let db = DatabaseBuilder::new()
            .universe_size(1)
            .relation("S", 1)
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(p.0, p.1)).unwrap();
        ud
    }

    #[test]
    fn boolean_probability_single_fact() {
        let ud = coin_db((1, 3));
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        // S(0) observed false, μ = 1/3 → Pr[∃x S(x)] = 1/3.
        assert_eq!(exact_probability(&ud, &q).unwrap(), r(1, 3));
        let rep = exact_reliability(&ud, &q).unwrap();
        assert_eq!(rep.expected_error, r(1, 3));
        assert_eq!(rep.reliability, r(2, 3));
        assert_eq!(rep.worlds, 2);
    }

    #[test]
    fn independent_facts_multiply() {
        // Two uncertain S-facts, ψ = ∃x S(x): Pr[ψ] = 1 − (1−ν0)(1−ν1).
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(1, 3)).unwrap();
        ud.set_error(&Fact::new(0, vec![1]), r(1, 4)).unwrap();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        assert_eq!(
            exact_probability(&ud, &q).unwrap(),
            r(2, 3).mul_ref(&r(3, 4)).one_minus()
        );
    }

    #[test]
    fn kary_reliability_sums_per_tuple() {
        // ψ(x) = S(x) is QF, so the Thm 4.2 engine must agree with the
        // per-atom formula H = Σ μ.
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("S", 1)
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(1, 5)).unwrap();
        ud.set_error(&Fact::new(0, vec![2]), r(1, 7)).unwrap();
        let q = FoQuery::parse("S(x)").unwrap();
        let rep = exact_reliability(&ud, &q).unwrap();
        assert_eq!(rep.expected_error, r(1, 5).add_ref(&r(1, 7)));
        assert_eq!(
            rep.reliability,
            r(1, 5).add_ref(&r(1, 7)).div_ref(&r(3, 1)).one_minus()
        );
    }

    #[test]
    fn datalog_reachability_reliability() {
        // Path 0→1→2 with the middle edge uncertain; query: 2 reachable
        // from 0. Pr[reachable] = ν(E(1,2)) = 1/2; H = 1/2 (observed yes).
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("E", 2)
            .tuples("E", [vec![0, 1], vec![1, 2]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![1, 2]), r(1, 2)).unwrap();
        let q = DatalogQuery::parse("T(x,y) :- E(x,y). T(x,z) :- T(x,y), E(y,z).", "T").unwrap();
        let rep = exact_reliability(&ud, &q).unwrap();
        // Only tuple (0,2) and (1,2) flip with the edge: H = 1/2 + 1/2.
        assert_eq!(rep.expected_error, r(1, 1));
        assert_eq!(rep.reliability, r(1, 9).one_minus());
    }

    #[test]
    fn closure_query_supported() {
        let ud = coin_db((1, 2));
        let q = FnQuery::boolean(|db| db.relation_by_name("S").unwrap().len() % 2 == 1);
        assert_eq!(exact_probability(&ud, &q).unwrap(), r(1, 2));
    }

    #[test]
    fn certificate_is_integral_and_consistent() {
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(1, 3)).unwrap();
        ud.set_error(&Fact::new(0, vec![1]), r(2, 5)).unwrap();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        let cert = counting_certificate(&ud, &q).unwrap();
        // g = 3 · 5 = 15; Pr = 1 − (2/3)(3/5) = 3/5 → paths = 9.
        assert_eq!(cert.g, BigUint::from_u32(15));
        assert_eq!(cert.accepting_paths, BigUint::from_u32(9));
    }

    #[test]
    fn answer_marginals_decompose_expected_error() {
        // H_ψ = Σ_ā [ā ∈ ψ^𝔄] · (1 − m(ā)) + [ā ∉ ψ^𝔄] · m(ā), where
        // m(ā) is the answer marginal.
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("E", 2)
            .tuples("E", [vec![0, 1], vec![1, 2]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0, 1]), r(1, 4)).unwrap();
        ud.set_error(&Fact::new(0, vec![2, 0]), r(1, 3)).unwrap();
        let q = {
            use qrel_logic::parser::parse_formula;
            FoQuery::with_free_order(
                parse_formula("exists z. E(x,z) & E(z,y)").unwrap(),
                vec!["x".into(), "y".into()],
            )
        };
        let marginals = answer_marginals(&ud, &q).unwrap();
        let observed = q.answers(ud.observed()).unwrap();
        let mut h = BigRational::zero();
        for (t, m) in &marginals {
            h = h.add_ref(&if observed.contains(t) {
                m.one_minus()
            } else {
                m.clone()
            });
        }
        let rep = exact_reliability(&ud, &q).unwrap();
        assert_eq!(h, rep.expected_error);
        // Marginals are probabilities.
        for (_, m) in marginals {
            assert!(m >= BigRational::zero() && m <= BigRational::one());
        }
    }

    #[test]
    fn budgeted_exact_complete_matches_unbudgeted() {
        let ud = coin_db((1, 3));
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        let full = exact_reliability(&ud, &q).unwrap();
        let outcome =
            exact_reliability_budgeted(&ud, &q, &qrel_budget::Budget::unlimited()).unwrap();
        assert_eq!(outcome, ExactOutcome::Complete(full));
    }

    #[test]
    fn budgeted_exact_partial_sums_are_bounds() {
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(1, 3)).unwrap();
        ud.set_error(&Fact::new(0, vec![1]), r(1, 4)).unwrap();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        let budget = qrel_budget::Budget::unlimited().with_max_worlds(2);
        let outcome = exact_reliability_budgeted(&ud, &q, &budget).unwrap();
        match outcome {
            ExactOutcome::Exhausted {
                partial_expected_error,
                mass_visited,
                worlds,
                cause,
            } => {
                assert_eq!(worlds, 2);
                assert_eq!(cause.resource, qrel_budget::Resource::Worlds);
                let full = exact_reliability(&ud, &q).unwrap();
                // Partial error is a lower bound on the true H.
                assert!(partial_expected_error <= full.expected_error);
                assert!(mass_visited < BigRational::one());
                assert!(mass_visited > BigRational::zero());
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    fn four_fact_db() -> UnreliableDatabase {
        let db = DatabaseBuilder::new()
            .universe_size(4)
            .relation("S", 1)
            .tuples("S", [vec![1]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(1, 3)).unwrap();
        ud.set_error(&Fact::new(0, vec![1]), r(1, 4)).unwrap();
        ud.set_error(&Fact::new(0, vec![2]), r(2, 5)).unwrap();
        ud.set_error(&Fact::new(0, vec![3]), r(1, 7)).unwrap();
        ud
    }

    #[test]
    fn parallel_probability_is_identical_to_serial() {
        let ud = four_fact_db();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        let serial = exact_probability(&ud, &q).unwrap();
        for threads in [1usize, 2, 4, 8] {
            assert_eq!(
                exact_probability_parallel(&ud, &q, threads).unwrap(),
                serial
            );
        }
    }

    #[test]
    fn parallel_reliability_is_identical_to_serial() {
        let ud = four_fact_db();
        let q = FoQuery::parse("S(x)").unwrap();
        let serial = exact_reliability(&ud, &q).unwrap();
        for threads in [1usize, 2, 4, 8] {
            assert_eq!(
                exact_reliability_parallel(&ud, &q, threads).unwrap(),
                serial
            );
        }
    }

    #[test]
    fn budgeted_sharded_complete_matches_serial_and_settles_spend() {
        let ud = four_fact_db();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        let serial = exact_reliability(&ud, &q).unwrap();
        for threads in [1usize, 4] {
            let budget = Budget::unlimited();
            let outcome = exact_reliability_budgeted_sharded(&ud, &q, &budget, threads).unwrap();
            assert_eq!(outcome, ExactOutcome::Complete(serial.clone()));
            assert_eq!(budget.spent(Resource::Worlds), 16);
        }
    }

    #[test]
    fn budgeted_sharded_world_cap_is_thread_count_invariant() {
        let ud = four_fact_db();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        let run = |threads: usize| {
            let budget = Budget::unlimited().with_max_worlds(10);
            let outcome = exact_reliability_budgeted_sharded(&ud, &q, &budget, threads).unwrap();
            (outcome, budget.spent(Resource::Worlds))
        };
        let (base_outcome, base_spent) = run(1);
        assert_eq!(base_spent, 10);
        match &base_outcome {
            ExactOutcome::Exhausted { worlds, cause, .. } => {
                assert_eq!(*worlds, 10);
                assert_eq!(cause.resource, Resource::Worlds);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
        for threads in [2usize, 4, 8] {
            assert_eq!(run(threads), (base_outcome.clone(), base_spent));
        }
    }

    #[test]
    fn reliability_probability_duality_for_boolean() {
        // For Boolean ψ with 𝔄 ⊨ ψ: H = 1 − Pr[ψ]; with 𝔄 ⊭ ψ: H = Pr[ψ].
        let db = DatabaseBuilder::new()
            .universe_size(1)
            .relation("S", 1)
            .tuples("S", [vec![0]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(1, 4)).unwrap();
        let q = FoQuery::parse("exists x. S(x)").unwrap(); // observed true
        let p = exact_probability(&ud, &q).unwrap();
        let rep = exact_reliability(&ud, &q).unwrap();
        assert_eq!(rep.expected_error, p.one_minus());
    }
}
