//! FPTRAS for the probability of existential sentences (Theorem 5.4).
//!
//! The pipeline is exactly the proof's: ground the existential sentence
//! over the database (`qrel_eval::ground_existential`, quantifiers →
//! disjunctions, equalities → constants, facts → propositional
//! variables), obtaining a kDNF `ψ''` whose variables carry the
//! probabilities `ν(Rā)`; then approximate `ν(ψ'')`:
//!
//! * [`Route::ViaCounting`] — the paper's route: the Theorem 5.3
//!   reduction to #DNF followed by Karp–Luby counting;
//! * [`Route::Direct`] — the weighted Karp–Luby coverage estimator run
//!   directly on `ψ''` (equivalent guarantee, no counter blowup; used as
//!   a cross-check and in the ablation experiment).
//!
//! An exact (exponential-time) evaluation path is provided as the test
//! oracle.

use crate::prob_dnf::ProbDnfReduction;
use qrel_arith::BigRational;
use qrel_budget::{Budget, Exhausted, QrelError};
use qrel_count::{
    dnf_probability_bitslice, dnf_probability_bitslice_sharded, dnf_probability_shannon, KarpLuby,
};
use qrel_eval::{ground_existential_budgeted, Grounding};
use qrel_logic::Formula;
use qrel_prob::UnreliableDatabase;
use rand::Rng;
use std::collections::HashMap;

/// Default budget for the grounded DNF size. The grounding of a fixed
/// existential query has polynomially many terms in `n`; this cap only
/// trips on adversarial formula/database combinations.
pub const DEFAULT_MAX_TERMS: usize = 1_000_000;

/// Which algorithm approximates the grounded kDNF probability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Weighted Karp–Luby directly on the grounded DNF.
    Direct,
    /// The paper's Theorem 5.3 reduction to #DNF, then Karp–Luby counting.
    ViaCounting,
}

/// Ground a (possibly non-sentence) existential formula and pair each
/// propositional variable with its fact probability `ν`.
pub fn ground_with_probabilities(
    ud: &UnreliableDatabase,
    formula: &Formula,
    bindings: &HashMap<String, u32>,
    max_terms: usize,
) -> Result<(Grounding, Vec<BigRational>), QrelError> {
    ground_with_probabilities_budgeted(ud, formula, bindings, max_terms, &Budget::unlimited())
}

/// [`ground_with_probabilities`] under a cooperative [`Budget`].
pub fn ground_with_probabilities_budgeted(
    ud: &UnreliableDatabase,
    formula: &Formula,
    bindings: &HashMap<String, u32>,
    max_terms: usize,
    budget: &Budget,
) -> Result<(Grounding, Vec<BigRational>), QrelError> {
    let grounding =
        ground_existential_budgeted(ud.observed(), formula, bindings, max_terms, budget)?;
    let probs = grounding.facts.iter().map(|f| ud.nu(f)).collect();
    Ok((grounding, probs))
}

/// Exact `ν(ψ)` — probability that the existential sentence holds in the
/// actual database — via grounding + exact Prob-DNF. Exponential-time
/// oracle for the FPTRAS.
pub fn existential_probability_exact(
    ud: &UnreliableDatabase,
    formula: &Formula,
) -> Result<BigRational, QrelError> {
    let (grounding, probs) =
        ground_with_probabilities(ud, formula, &HashMap::new(), DEFAULT_MAX_TERMS)?;
    Ok(dnf_probability_shannon(&grounding.dnf, &probs))
}

/// Exact `ν(ψ)` via grounding + bit-sliced world enumeration
/// (`qrel_count::bitslice`): 64 worlds per instruction, dyadic fixed-width
/// arithmetic promoting to `BigRational` on overflow. Bit-identical to
/// [`existential_probability_exact`] — an independent exact engine, and
/// the fast path for lineages up to ~30 fact-variables.
pub fn existential_probability_bitslice(
    ud: &UnreliableDatabase,
    formula: &Formula,
) -> Result<BigRational, QrelError> {
    let (grounding, probs) =
        ground_with_probabilities(ud, formula, &HashMap::new(), DEFAULT_MAX_TERMS)?;
    Ok(dnf_probability_bitslice(&grounding.dnf, &probs))
}

/// Sharded [`existential_probability_bitslice`]: world blocks are split
/// across `shards` lane-aligned ranges executed on `threads` workers,
/// with exact partial sums merged in shard order — the result depends on
/// `shards` only through nothing at all (exact addition is associative),
/// and never on `threads`.
pub fn existential_probability_bitslice_sharded(
    ud: &UnreliableDatabase,
    formula: &Formula,
    shards: usize,
    threads: usize,
) -> Result<BigRational, QrelError> {
    let (grounding, probs) =
        ground_with_probabilities(ud, formula, &HashMap::new(), DEFAULT_MAX_TERMS)?;
    Ok(dnf_probability_bitslice_sharded(
        &grounding.dnf,
        &probs,
        shards,
        threads,
    ))
}

/// The Theorem 5.4 FPTRAS: estimate `ν(ψ)` for an existential sentence
/// with relative error `ε` at confidence `1 − δ`.
pub fn existential_probability_fptras<R: Rng>(
    ud: &UnreliableDatabase,
    formula: &Formula,
    eps: f64,
    delta: f64,
    route: Route,
    rng: &mut R,
) -> Result<f64, QrelError> {
    let (grounding, probs) =
        ground_with_probabilities(ud, formula, &HashMap::new(), DEFAULT_MAX_TERMS)?;
    estimate_grounding(&grounding, &probs, eps, delta, route, rng)
}

/// Estimate the probability of an already-grounded formula.
pub fn estimate_grounding<R: Rng>(
    grounding: &Grounding,
    probs: &[BigRational],
    eps: f64,
    delta: f64,
    route: Route,
    rng: &mut R,
) -> Result<f64, QrelError> {
    match route {
        Route::Direct => {
            let kl = KarpLuby::new(&grounding.dnf, probs);
            Ok(kl.run(eps, delta, rng).estimate.clamp(0.0, 1.0))
        }
        Route::ViaCounting => {
            let red = ProbDnfReduction::new(&grounding.dnf, probs)?;
            Ok(red.estimate(eps, delta, rng))
        }
    }
}

/// Result of a budgeted FPTRAS run.
#[derive(Debug, Clone)]
pub struct FptrasReport {
    /// The estimate of `ν(ψ)`, clamped to `[0, 1]`.
    pub estimate: f64,
    /// Samples actually drawn.
    pub samples: u64,
    /// Grounded DNF terms (the `m` of the sample bound).
    pub terms: usize,
    /// `Some(cause)` if the budget tripped mid-sampling — the estimate
    /// then covers fewer samples and carries no `(ε, δ)` guarantee.
    pub exhausted: Option<Exhausted>,
}

/// The Theorem 5.4 FPTRAS under a cooperative [`Budget`], always via the
/// direct weighted Karp–Luby route. Grounding charges
/// [`qrel_budget::Resource::Terms`] and sampling charges
/// [`qrel_budget::Resource::Samples`]; a trip during *grounding* is a
/// hard `Err` (no estimate exists yet), while a trip during *sampling*
/// degrades to a partial estimate reported in [`FptrasReport`].
pub fn existential_probability_fptras_budgeted<R: Rng>(
    ud: &UnreliableDatabase,
    formula: &Formula,
    eps: f64,
    delta: f64,
    budget: &Budget,
    rng: &mut R,
) -> Result<FptrasReport, QrelError> {
    let (grounding, probs) = ground_with_probabilities_budgeted(
        ud,
        formula,
        &HashMap::new(),
        DEFAULT_MAX_TERMS,
        budget,
    )?;
    let kl = KarpLuby::new(&grounding.dnf, &probs);
    let (report, exhausted) = kl.run_budgeted(kl.samples_for(eps, delta), budget, rng);
    Ok(FptrasReport {
        estimate: report.estimate.clamp(0.0, 1.0),
        samples: report.samples,
        terms: grounding.dnf.num_terms(),
        exhausted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_db::{DatabaseBuilder, Fact};
    use qrel_eval::FoQuery;
    use qrel_logic::parser::parse_formula;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn setup() -> UnreliableDatabase {
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("E", 2)
            .relation("S", 1)
            .tuples("E", [vec![0, 1], vec![1, 2]])
            .tuples("S", [vec![0]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_relation_error("E", r(1, 8)).unwrap();
        ud.set_relation_error("S", r(1, 4)).unwrap();
        ud
    }

    #[test]
    fn exact_matches_world_enumeration() {
        // The grounding-based exact probability must equal the Thm 4.2
        // world-enumeration probability — two completely different paths.
        let ud = setup();
        for src in [
            "exists x. S(x)",
            "exists x y. E(x,y) & S(x)",
            "exists x y. E(x,y) & !S(y) & x != y",
            "exists x y z. E(x,y) & E(y,z) & S(z)",
        ] {
            let f = parse_formula(src).unwrap();
            let via_ground = existential_probability_exact(&ud, &f).unwrap();
            let q = FoQuery::new(f);
            let via_worlds = crate::exact::exact_probability(&ud, &q).unwrap();
            assert_eq!(via_ground, via_worlds, "query {src}");
        }
    }

    #[test]
    fn bitslice_matches_exact_bit_for_bit() {
        // The bit-sliced enumerator is a third independent exact path;
        // serial and sharded variants must both reproduce the Shannon
        // result structurally (gcd-normalized rationals compare equal).
        let ud = setup();
        for src in [
            "exists x. S(x)",
            "exists x y. E(x,y) & S(x)",
            "exists x y. E(x,y) & !S(y) & x != y",
            "exists x y z. E(x,y) & E(y,z) & S(z)",
        ] {
            let f = parse_formula(src).unwrap();
            let exact = existential_probability_exact(&ud, &f).unwrap();
            assert_eq!(
                existential_probability_bitslice(&ud, &f).unwrap(),
                exact,
                "bitslice vs shannon, query {src}"
            );
            for threads in [1usize, 4] {
                assert_eq!(
                    existential_probability_bitslice_sharded(&ud, &f, 16, threads).unwrap(),
                    exact,
                    "sharded bitslice, query {src}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn fptras_both_routes_close_to_exact() {
        let ud = setup();
        let f = parse_formula("exists x y. E(x,y) & S(x)").unwrap();
        let exact = existential_probability_exact(&ud, &f).unwrap().to_f64();
        let mut rng = StdRng::seed_from_u64(77);
        for route in [Route::Direct, Route::ViaCounting] {
            let est = existential_probability_fptras(&ud, &f, 0.05, 0.02, route, &mut rng).unwrap();
            assert!(
                (est - exact).abs() <= 0.05 * exact + 0.02,
                "{route:?}: estimate {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn deterministic_sentence_probability_zero_or_one() {
        // No uncertainty at all: probabilities collapse to truth values.
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("S", 1)
            .tuples("S", [vec![0]])
            .build();
        let ud = UnreliableDatabase::reliable(db);
        let t = parse_formula("exists x. S(x)").unwrap();
        assert_eq!(
            existential_probability_exact(&ud, &t).unwrap(),
            BigRational::one()
        );
        let f = parse_formula("exists x. S(x) & !S(x)").unwrap();
        assert_eq!(
            existential_probability_exact(&ud, &f).unwrap(),
            BigRational::zero()
        );
    }

    #[test]
    fn conjunctive_query_prob_matches_hand_computation() {
        // ψ = ∃x S(x) on a 1-element db with ν(S(0)) = 1/4 (observed off,
        // μ = 1/4): Pr = 1/4.
        let db = DatabaseBuilder::new()
            .universe_size(1)
            .relation("S", 1)
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0]), r(1, 4)).unwrap();
        let f = parse_formula("exists x. S(x)").unwrap();
        assert_eq!(existential_probability_exact(&ud, &f).unwrap(), r(1, 4));
    }

    #[test]
    fn universal_rejected() {
        let ud = setup();
        let f = parse_formula("forall x. S(x)").unwrap();
        assert!(matches!(
            existential_probability_exact(&ud, &f),
            Err(QrelError::Unsupported(_))
        ));
    }

    #[test]
    fn budgeted_fptras_degrades_on_sample_cap() {
        use qrel_budget::Resource;
        let ud = setup();
        let f = parse_formula("exists x y. E(x,y) & S(x)").unwrap();
        let budget = Budget::unlimited().with_max_samples(20);
        let mut rng = StdRng::seed_from_u64(41);
        let rep = existential_probability_fptras_budgeted(&ud, &f, 0.05, 0.02, &budget, &mut rng)
            .unwrap();
        let cause = rep.exhausted.expect("sample cap must trip");
        assert_eq!(cause.resource, Resource::Samples);
        assert_eq!(rep.samples, 20);
        assert!((0.0..=1.0).contains(&rep.estimate));
    }

    #[test]
    fn budgeted_fptras_hard_error_when_grounding_capped() {
        use qrel_budget::Resource;
        let ud = setup();
        let f = parse_formula("exists x y. E(x,y) & S(x)").unwrap();
        // One term of grounding budget: trips before any estimate exists.
        let budget = Budget::unlimited().with_max_terms(1);
        let mut rng = StdRng::seed_from_u64(42);
        match existential_probability_fptras_budgeted(&ud, &f, 0.1, 0.1, &budget, &mut rng) {
            Err(QrelError::BudgetExhausted(e)) => assert_eq!(e.resource, Resource::Terms),
            other => panic!("expected terms exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn bindings_flow_through() {
        let ud = setup();
        let f = parse_formula("exists y. E(x, y)").unwrap();
        let mut b = HashMap::new();
        b.insert("x".to_string(), 2u32);
        let (g, probs) = ground_with_probabilities(&ud, &f, &b, DEFAULT_MAX_TERMS).unwrap();
        // Row x=2 has no observed out-edges; each of 3 candidate facts has
        // ν = 1/8: Pr = 1 − (7/8)³.
        let p = dnf_probability_shannon(&g.dnf, &probs);
        assert_eq!(p, r(7, 8).pow(3).one_minus());
    }
}
