//! A concrete simulation of the Regan–Schwentick "one bit of a #P
//! function" argument used in the PH branch of Theorem 4.2.
//!
//! For queries beyond P, the proof cannot simply accept at each leaf;
//! instead each leaf contributes a number whose binary representation is
//!
//! ```text
//! N_𝔅  =  y  0^q  ψ^𝔅  0^q  z        (Theorem 4.1)
//! ```
//!
//! — arbitrary junk `y`, a zero buffer, the one *relevant* bit `ψ^𝔅`,
//! another zero buffer, and low junk `z` of fixed width `t`. Summing
//! `ν(𝔅)·g` copies of `N_𝔅` over all worlds, the buffers guarantee that
//! the junk cannot carry into the window holding `Σ ν(𝔅)·g·ψ^𝔅 =
//! g·Pr[𝔅 ⊨ ψ]`, because fewer than `2^q` numbers are added.
//!
//! This module performs that sum with explicit random junk and extracts
//! the counter from the bit window — verifying the non-interference
//! arithmetic that the complexity-theoretic argument relies on. It is a
//! *demonstration* (we can evaluate `ψ` directly; the point is the bit
//! algebra), used by tests and the experiment suite.

use qrel_arith::{BigInt, BigRational, BigUint};
use qrel_eval::{EvalError, Query};
use qrel_prob::normalizer::sound_g;
use qrel_prob::UnreliableDatabase;
use rand::Rng;

/// Outcome of the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OneBitSimulation {
    /// The normalizer `g` (number of leaves of the computation tree).
    pub g: BigUint,
    /// Zero-buffer width `q` (chosen with `2^q > g`).
    pub q: u64,
    /// Low-junk width `t(n)`.
    pub t: u64,
    /// The full junk-laden sum `Σ ν(𝔅)·g · N_𝔅`.
    pub total: BigUint,
    /// The counter extracted from bits `[t+q, t+2q)` of `total`.
    pub extracted: BigUint,
}

/// Run the simulation: per-world random junk `y < 2^8`, `z < 2^t`, the
/// relevant bit `ψ^𝔅`, weights `ν(𝔅)·g`. Returns the extraction, which
/// the caller can compare with `g·Pr[𝔅 ⊨ ψ]`.
pub fn simulate_one_bit_extraction<R: Rng>(
    ud: &UnreliableDatabase,
    query: &dyn Query,
    junk_width: u64,
    rng: &mut R,
) -> Result<OneBitSimulation, EvalError> {
    assert_eq!(query.arity(), 0, "simulation requires a Boolean query");
    let g = sound_g(ud);
    // 2^q > g: one more bit than g occupies.
    let q = g.bit_length() + 1;
    let t = junk_width;
    let g_rat = BigRational::new(BigInt::from_biguint(g.clone()), BigInt::one());

    let mut total = BigUint::zero();
    for (world, prob) in ud.worlds() {
        // w_𝔅 = ν(𝔅)·g ∈ ℕ (the leaf multiplicity).
        let scaled = prob.mul_ref(&g_rat);
        assert!(scaled.is_integer(), "normalizer must clear denominators");
        let weight = scaled.numer().magnitude().clone();
        if weight.is_zero() {
            continue;
        }
        let psi = query.eval(&world, &[])?;
        // N_𝔅 = y·2^{t+2q+1} + ψ·2^{t+q} + z.
        let y = BigUint::from_u64(rng.gen_range(1..256u64));
        let z = if t == 0 {
            BigUint::zero()
        } else {
            BigUint::from_u64(rng.gen::<u64>() & ((1u64 << t.min(63)) - 1))
        };
        let mut n_b = y.shl_bits(t + 2 * q + 1);
        if psi {
            n_b = n_b.add_ref(&BigUint::one().shl_bits(t + q));
        }
        n_b = n_b.add_ref(&z);
        total = total.add_ref(&weight.mul_ref(&n_b));
    }

    // Extract bits [t+q, t+2q): shift down, mask to q bits.
    let shifted = total.shr_bits(t + q);
    let mask = BigUint::one()
        .shl_bits(q)
        .checked_sub(&BigUint::one())
        .unwrap();
    // Masking = shifted mod 2^q.
    let (_, extracted) = shifted.div_rem(&mask.add_ref(&BigUint::one()));

    Ok(OneBitSimulation {
        g,
        q,
        t,
        total,
        extracted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::counting_certificate;
    use qrel_arith::BigRational;
    use qrel_db::{DatabaseBuilder, Fact};
    use qrel_eval::FoQuery;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    fn setup() -> UnreliableDatabase {
        let db = DatabaseBuilder::new()
            .universe_size(2)
            .relation("E", 2)
            .relation("S", 1)
            .tuples("E", [vec![0, 1]])
            .tuples("S", [vec![0]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0, 1]), r(1, 3)).unwrap();
        ud.set_error(&Fact::new(0, vec![1, 0]), r(2, 5)).unwrap();
        ud.set_error(&Fact::new(1, vec![1]), r(5, 12)).unwrap();
        ud
    }

    #[test]
    fn extraction_recovers_certificate() {
        let ud = setup();
        let q = FoQuery::parse("exists x y. E(x,y) & S(x)").unwrap();
        let cert = counting_certificate(&ud, &q).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for junk_width in [0u64, 8, 16, 40] {
            let sim = simulate_one_bit_extraction(&ud, &q, junk_width, &mut rng).unwrap();
            assert_eq!(sim.g, cert.g);
            assert_eq!(
                sim.extracted, cert.accepting_paths,
                "junk width {junk_width}: extraction corrupted by junk"
            );
        }
    }

    #[test]
    fn extraction_is_junk_independent() {
        // Different random junk, same extraction — the zero buffers work.
        let ud = setup();
        let q = FoQuery::parse("exists x. S(x)").unwrap();
        let mut outs = Vec::new();
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let sim = simulate_one_bit_extraction(&ud, &q, 24, &mut rng).unwrap();
            outs.push(sim.extracted);
        }
        assert!(outs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn totals_differ_but_window_agrees() {
        let ud = setup();
        let q = FoQuery::parse("exists x y. E(x,y)").unwrap();
        let mut rng1 = StdRng::seed_from_u64(10);
        let mut rng2 = StdRng::seed_from_u64(20);
        let a = simulate_one_bit_extraction(&ud, &q, 16, &mut rng1).unwrap();
        let b = simulate_one_bit_extraction(&ud, &q, 16, &mut rng2).unwrap();
        assert_ne!(a.total, b.total, "junk should differ across seeds");
        assert_eq!(a.extracted, b.extracted);
    }

    #[test]
    fn true_and_false_queries() {
        let ud = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let taut = FoQuery::parse("exists x. S(x) | !S(x)").unwrap();
        let sim = simulate_one_bit_extraction(&ud, &taut, 12, &mut rng).unwrap();
        assert_eq!(sim.extracted, sim.g, "tautology: all g paths accept");
        let contra = FoQuery::parse("exists x. S(x) & !S(x)").unwrap();
        let sim0 = simulate_one_bit_extraction(&ud, &contra, 12, &mut rng).unwrap();
        assert!(sim0.extracted.is_zero());
    }
}
