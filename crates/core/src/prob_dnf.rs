//! The reduction from Prob-kDNF to #DNF (Theorem 5.3).
//!
//! Given a kDNF `φ` and a rational probability `ν(X) = p/q` per variable,
//! the reduction introduces, for each variable `X`, fresh bits
//! `Ȳ = Y_{ℓ-1}…Y₀` with `ℓ = len(q)`, and substitutes
//!
//! * `X   ↦ "val(Ȳ) < p"`
//! * `¬X  ↦ "val(Ȳ) ≥ p"`
//!
//! (both O(ℓ²)-size DNFs, see `qrel_logic::threshold`), re-normalizing to
//! DNF — blowup exponential in `k` but polynomial in `|φ|` and the bit
//! length of the probabilities. An assignment to `Ȳ` is *legal* when
//! `val(Ȳ) < q`; the final formula
//!
//! ```text
//! φ'' = φ' ∨ ⋁_X "val(Ȳ_X) ≥ q_X"
//! ```
//!
//! is satisfied by all illegal assignments plus exactly the legal
//! assignments satisfying `φ'`, so with `Q = ∏ q_X` (the number of legal
//! assignments) and `L = Σ ℓ_X` bits in total:
//!
//! ```text
//! ν(φ) = (#φ'' − (2^L − Q)) / Q .
//! ```
//!
//! In the dyadic case (`q = 2^ℓ`) there are no illegal assignments and
//! `φ'' = φ'`. Applying the Karp–Luby #DNF FPTRAS to `φ''` yields the
//! FPTRAS for Prob-kDNF claimed by the theorem.
//!
//! # Two estimation paths
//!
//! The *counting* identity above is exact, but it is **not**
//! approximation-preserving in the non-dyadic case: a relative-error
//! estimate of `#φ''` (whose bulk is the `2^L − Q` illegal assignments)
//! is divided by `Q` after subtracting that known bulk, amplifying the
//! error by `2^L / Q`. [`ProbDnfReduction::estimate_full_space`] keeps
//! this literal path for demonstration; the default
//! [`ProbDnfReduction::estimate`] instead runs the coverage sampler
//! *restricted to legal assignments* (the private `LegalCoverage`
//! sampler): uniform-over-
//! legal is a product measure (each `X` uniform on `[0, q_X)`), under
//! which `Pr[φ'] = ν(φ)` exactly, so the zero-one estimator theorem
//! applies with no amplification. In the dyadic case the two paths
//! coincide.

use qrel_arith::{BigRational, BigUint};
use qrel_count::bounds::zero_one_estimator_samples;
use qrel_count::exact_dnf::dnf_count_models;
use qrel_count::KarpLuby;
use qrel_logic::prop::{Dnf, Lit, VarId};
use qrel_logic::threshold::{bit_len, BitCounter};
use rand::Rng;
use std::fmt;

/// Errors from building the reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReductionError {
    /// A probability whose numerator/denominator exceeds `u64` (the
    /// threshold encodings index bits by machine integers).
    ProbabilityTooWide { var: VarId },
    /// Probability vector does not cover all formula variables.
    MissingProbability { var: VarId },
}

impl fmt::Display for ReductionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReductionError::ProbabilityTooWide { var } => {
                write!(f, "probability of variable x{var} does not fit in u64/u64")
            }
            ReductionError::MissingProbability { var } => {
                write!(f, "no probability given for variable x{var}")
            }
        }
    }
}

impl From<ReductionError> for qrel_budget::QrelError {
    fn from(e: ReductionError) -> Self {
        qrel_budget::QrelError::Unsupported(e.to_string())
    }
}

impl std::error::Error for ReductionError {}

/// `val(Ȳ) < b`, handling the saturated bound `b ≥ 2^ℓ` (tautology).
fn less_dnf(counter: &BitCounter, b: u64) -> Dnf {
    if counter.len() < 64 && b >= (1u64 << counter.len()) {
        Dnf::from_terms([Vec::<Lit>::new()])
    } else {
        counter.less_than(b)
    }
}

/// `val(Ȳ) ≥ b`, handling the saturated bound `b ≥ 2^ℓ` (unsatisfiable).
fn geq_dnf(counter: &BitCounter, b: u64) -> Dnf {
    if counter.len() < 64 && b >= (1u64 << counter.len()) {
        Dnf::new()
    } else {
        counter.at_least(b)
    }
}

/// `#{v ∈ [0, bound) : v & mask == val}` over an `ell`-bit value space.
///
/// Standard digit DP from the MSB: each position where `bound` has a `1`
/// contributes the assignments that agree with `bound` above it, drop to
/// `0` there, and fill the unmasked positions below freely.
fn count_matching_below(mask: u64, val: u64, bound: u64, ell: usize) -> u64 {
    if ell < 64 && bound >= (1u64 << ell) {
        // The bound saturates the value space (dyadic q = 2^ℓ): every
        // pattern-matching value qualifies.
        return 1u64 << (ell as u32 - mask.count_ones());
    }
    let mut count = 0u64;
    for i in (0..ell).rev() {
        if (bound >> i) & 1 == 1 && ((mask >> i) & 1 == 0 || (val >> i) & 1 == 0) {
            let free = i as u32 - (mask & ((1u64 << i) - 1)).count_ones();
            count += 1u64 << free;
        }
        // Stay on the tight path (v agrees with bound at position i).
        if (mask >> i) & 1 == 1 && (val >> i) & 1 != (bound >> i) & 1 {
            return count;
        }
    }
    count // v == bound itself is excluded (strict <)
}

/// The rank-`r` (0-based, ascending) element of
/// `{v ∈ [0, bound) : v & mask == val}`.
///
/// # Panics
/// Panics if `r ≥ count_matching_below(mask, val, bound, ell)`.
fn select_matching(mask: u64, val: u64, bound: u64, ell: usize, mut r: u64) -> u64 {
    let mut acc = 0u64;
    'bits: for i in (0..ell).rev() {
        for b in 0..=1u64 {
            if (mask >> i) & 1 == 1 && (val >> i) & 1 != b {
                continue;
            }
            let pref = acc | (b << i);
            let bound_pref = (bound >> i) << i;
            let completions = if pref > bound_pref {
                0
            } else if pref < bound_pref {
                let free = i as u32 - (mask & ((1u64 << i) - 1)).count_ones();
                1u64 << free
            } else {
                let low = (1u64 << i) - 1;
                count_matching_below(mask & low, val & low, bound & low, i)
            };
            if r < completions {
                acc = pref;
                continue 'bits;
            }
            r -= completions;
        }
        panic!("rank exceeds the number of matching values");
    }
    debug_assert_eq!(r, 0);
    acc
}

/// One `φ'` term's footprint on one original variable: the forced bit
/// pattern over its counter, and how many legal values match it.
#[derive(Debug, Clone)]
struct TermPattern {
    var: usize,
    mask: u64,
    val: u64,
    /// `#{v < q_var : v & mask == val}` — positive (zero-weight terms are
    /// dropped at construction).
    matching: u64,
}

/// Karp–Luby coverage sampler over `φ'` under the uniform-over-legal
/// product measure (each variable uniform on `[0, q_X)`), under which
/// `Pr[φ'] = ν(φ)` exactly. This is the approximation-preserving route
/// through the Theorem 5.3 encoding: no `2^L / Q` error amplification.
#[derive(Debug, Clone)]
struct LegalCoverage {
    /// Per `φ'` term, its per-variable patterns (zero-weight terms dropped).
    terms: Vec<Vec<TermPattern>>,
    /// `q_X` per original variable.
    qs: Vec<u64>,
    /// Counter width `ℓ_X` per original variable.
    ells: Vec<usize>,
    /// Exact total term weight `U = Σ_t ∏_X matching / q` (≥ `ν(φ)`).
    total_weight: BigRational,
    /// Cumulative f64 weights for term sampling.
    cumulative: Vec<f64>,
}

impl LegalCoverage {
    /// Samples sufficient for relative error `ε` at failure rate `δ`
    /// (zero-one estimator theorem with `E[Y] ≥ 1/m`).
    fn samples_for(&self, eps: f64, delta: f64) -> u64 {
        zero_one_estimator_samples(self.terms.len().max(1) as f64, eps, delta)
    }

    fn run<R: Rng>(&self, samples: u64, rng: &mut R) -> f64 {
        if self.terms.is_empty() {
            return 0.0;
        }
        if self.terms.iter().any(|t| t.is_empty()) {
            return 1.0; // a tautological term: ν(φ) = 1 exactly
        }
        assert!(samples > 0, "legal-coverage sampler needs ≥ 1 sample");
        let u = *self.cumulative.last().unwrap();
        let mut values = vec![0u64; self.qs.len()];
        let mut hits = 0u64;
        for _ in 0..samples {
            if self.sample_once(u, &mut values, rng) {
                hits += 1;
            }
        }
        let hit_rate = hits as f64 / samples as f64;
        (self.total_weight.to_f64() * hit_rate).clamp(0.0, 1.0)
    }

    /// One coverage draw; returns the indicator `Y` (chosen term is the
    /// first satisfied one).
    fn sample_once<R: Rng>(&self, u: f64, values: &mut [u64], rng: &mut R) -> bool {
        // Term ∝ weight, with the same degenerate-cumulative fallback as
        // the plain Karp–Luby sampler.
        let ti = if u.is_finite() && u > 0.0 {
            let x = rng.gen::<f64>() * u;
            match self.cumulative.binary_search_by(|c| c.total_cmp(&x)) {
                Ok(i) => (i + 1).min(self.terms.len() - 1),
                Err(i) => i.min(self.terms.len() - 1),
            }
        } else {
            rng.gen_range(0..self.terms.len())
        };
        // Unconditioned variables: uniform legal value.
        for (v, slot) in values.iter_mut().enumerate() {
            *slot = rng.gen_range(0..self.qs[v]);
        }
        // Conditioned variables: uniform among legal values matching the
        // term's pattern, by rank selection.
        for pat in &self.terms[ti] {
            let r = rng.gen_range(0..pat.matching);
            values[pat.var] =
                select_matching(pat.mask, pat.val, self.qs[pat.var], self.ells[pat.var], r);
        }
        let first = self
            .terms
            .iter()
            .position(|t| t.iter().all(|p| values[p.var] & p.mask == p.val))
            .expect("sampled values satisfy term ti");
        first == ti
    }
}

/// The constructed reduction for one `(φ, ν)` instance.
#[derive(Debug, Clone)]
pub struct ProbDnfReduction {
    /// `φ''` — the #DNF instance over the counter bits.
    pub phi2: Dnf,
    /// Total counter bits `L` (the variable count of `φ''`).
    pub total_bits: usize,
    /// `Q = ∏ q_X` — the number of legal assignments.
    pub legal_total: BigUint,
    /// Per original variable: `(p, q)` of its probability.
    bounds: Vec<(u64, u64)>,
    /// The legal-restricted coverage sampler over `φ'`.
    coverage: LegalCoverage,
}

impl ProbDnfReduction {
    /// Build the reduction.
    ///
    /// `probs[v] = Pr[x_v = 1]`, one per variable `0..probs.len()`; all
    /// variables of `dnf` must be covered.
    pub fn new(dnf: &Dnf, probs: &[BigRational]) -> Result<Self, ReductionError> {
        if dnf.var_bound() > probs.len() {
            return Err(ReductionError::MissingProbability {
                var: probs.len() as VarId,
            });
        }
        // Allocate counters: variable v gets bits [offset[v], offset[v]+ℓ).
        let mut bounds = Vec::with_capacity(probs.len());
        let mut counters = Vec::with_capacity(probs.len());
        let mut next_bit: VarId = 0;
        for (v, p) in probs.iter().enumerate() {
            assert!(p.is_probability(), "probability of x{v} out of range");
            let num = p
                .numer()
                .magnitude()
                .to_u64()
                .ok_or(ReductionError::ProbabilityTooWide { var: v as VarId })?;
            let den = p
                .denom()
                .to_u64()
                .ok_or(ReductionError::ProbabilityTooWide { var: v as VarId })?;
            // ℓ bits so that q ≤ 2^ℓ with equality exactly in the dyadic
            // case (so dyadic denominators produce no illegal assignments,
            // as in the paper's "we are done" branch).
            let ell = if den <= 1 { 1 } else { bit_len(den - 1) };
            let bits: Vec<VarId> = (next_bit..next_bit + ell as VarId).collect();
            next_bit += ell as VarId;
            counters.push(BitCounter::new(bits));
            bounds.push((num, den));
        }

        // Map each global bit back to (variable, value-bit index) for the
        // legal-coverage patterns. `counter.vars()` lists bits MSB first.
        let mut bit_owner = vec![(0usize, 0usize); next_bit as usize];
        for (v, counter) in counters.iter().enumerate() {
            let ell = counter.len();
            for (j, &g) in counter.vars().iter().enumerate() {
                bit_owner[g as usize] = (v, ell - 1 - j);
            }
        }

        // φ': substitute each literal by its threshold DNF; per-term
        // distribution (disjoint counters ⇒ merges always consistent).
        // Alongside φ'' we assemble the legal-restricted coverage sampler
        // from the same terms.
        let mut phi2 = Dnf::new();
        let mut cov_terms: Vec<Vec<TermPattern>> = Vec::new();
        let mut cov_weights: Vec<BigRational> = Vec::new();
        let ells: Vec<usize> = counters.iter().map(|c| c.len()).collect();
        for term in dnf.terms() {
            let mut acc: Vec<Vec<Lit>> = vec![vec![]];
            for lit in term {
                let counter = &counters[lit.var as usize];
                let (p, _q) = bounds[lit.var as usize];
                let replacement = if lit.positive {
                    less_dnf(counter, p)
                } else {
                    geq_dnf(counter, p)
                };
                let mut next = Vec::with_capacity(acc.len() * replacement.num_terms());
                for a in &acc {
                    for t in replacement.terms() {
                        let mut merged = a.clone();
                        merged.extend_from_slice(t);
                        next.push(merged);
                    }
                }
                acc = next;
                if acc.is_empty() {
                    break; // a literal with an unsatisfiable threshold (p = 0)
                }
            }
            for t in acc {
                // Fold the bit literals into per-variable patterns.
                let mut patterns: Vec<TermPattern> = Vec::new();
                for l in &t {
                    let (v, bit) = bit_owner[l.var as usize];
                    let pat = match patterns.iter_mut().find(|p| p.var == v) {
                        Some(p) => p,
                        None => {
                            patterns.push(TermPattern {
                                var: v,
                                mask: 0,
                                val: 0,
                                matching: 0,
                            });
                            patterns.last_mut().unwrap()
                        }
                    };
                    pat.mask |= 1u64 << bit;
                    if l.positive {
                        pat.val |= 1u64 << bit;
                    }
                }
                let mut num = BigUint::one();
                let mut den = BigUint::one();
                let mut dead = false;
                for pat in &mut patterns {
                    let q = bounds[pat.var].1;
                    pat.matching = count_matching_below(pat.mask, pat.val, q, ells[pat.var]);
                    if pat.matching == 0 {
                        dead = true; // only illegal values match: weight 0
                        break;
                    }
                    num = num.mul_ref(&BigUint::from_u64(pat.matching));
                    den = den.mul_ref(&BigUint::from_u64(q));
                }
                if !dead {
                    cov_weights.push(BigRational::new(
                        qrel_arith::BigInt::from_biguint(num),
                        qrel_arith::BigInt::from_biguint(den),
                    ));
                    cov_terms.push(patterns);
                }
                phi2.push_term_checked(t);
            }
        }
        let mut cov_total = BigRational::zero();
        let mut cov_cumulative = Vec::with_capacity(cov_weights.len());
        let mut cov_acc = 0f64;
        for w in &cov_weights {
            cov_total = cov_total.add_ref(w);
            cov_acc += w.to_f64();
            cov_cumulative.push(cov_acc);
        }
        let coverage = LegalCoverage {
            terms: cov_terms,
            qs: bounds.iter().map(|&(_, q)| q).collect(),
            ells,
            total_weight: cov_total,
            cumulative: cov_cumulative,
        };

        // φ'' = φ' ∨ ⋁_X "val(Ȳ_X) ≥ q_X" (the illegal assignments).
        let mut legal_total = BigUint::one();
        for (v, counter) in counters.iter().enumerate() {
            let (_p, q) = bounds[v];
            legal_total = legal_total.mul_ref(&BigUint::from_u64(q));
            let illegal = geq_dnf(counter, q);
            phi2.or_with(&illegal);
        }

        Ok(ProbDnfReduction {
            phi2,
            total_bits: next_bit as usize,
            legal_total,
            bounds,
            coverage,
        })
    }

    /// True iff every probability is dyadic (no illegal assignments).
    pub fn all_dyadic(&self) -> bool {
        self.bounds.iter().all(|&(_, q)| q.is_power_of_two())
    }

    /// The number of illegal assignments `2^L − Q`.
    pub fn illegal_count(&self) -> BigUint {
        let two_l = BigUint::one().shl_bits(self.total_bits as u64);
        two_l.checked_sub(&self.legal_total).expect("Q ≤ 2^L")
    }

    /// Recover `ν(φ)` exactly from a #φ'' model count.
    pub fn probability_from_count(&self, models: &BigUint) -> BigRational {
        let legal_sat = models
            .checked_sub(&self.illegal_count())
            .expect("model count below illegal floor");
        BigRational::new(
            qrel_arith::BigInt::from_biguint(legal_sat),
            qrel_arith::BigInt::from_biguint(self.legal_total.clone()),
        )
    }

    /// Exact `ν(φ)` by exact #DNF on `φ''` (oracle path; exponential).
    pub fn exact_probability(&self) -> BigRational {
        let models = dnf_count_models(&self.phi2, self.total_bits);
        self.probability_from_count(&models)
    }

    /// Estimate `ν(φ)` with a relative `(ε, δ)` guarantee: Karp–Luby
    /// coverage sampling over `φ'` restricted to legal assignments (the
    /// approximation-preserving reading of Theorem 5.3 — see the module
    /// docs). Dyadic instances coincide with the plain #DNF FPTRAS.
    pub fn estimate<R: Rng>(&self, eps: f64, delta: f64, rng: &mut R) -> f64 {
        let samples = self.coverage.samples_for(eps, delta);
        self.coverage.run(samples, rng)
    }

    /// Estimate `ν(φ)` with an explicit sample count (no `(ε, δ)` sizing).
    pub fn estimate_with_samples<R: Rng>(&self, samples: u64, rng: &mut R) -> f64 {
        self.coverage.run(samples, rng)
    }

    /// The literal Theorem 5.3 pipeline: Karp–Luby #DNF FPTRAS on the
    /// *full* `φ''`, then recover `ν(φ) = (#̂φ'' − (2^L − Q)) / Q`.
    ///
    /// **Not approximation-preserving in the non-dyadic case**: the
    /// relative error on `#φ''` is amplified by `2^L / Q` after the
    /// illegal mass is subtracted, so for small `Q / 2^L` the result is
    /// effectively noise clamped to `[0, 1]`. Kept as the negative
    /// control for the statistical-guarantee harness; use
    /// [`ProbDnfReduction::estimate`] for a sound estimate.
    pub fn estimate_full_space<R: Rng>(&self, eps: f64, delta: f64, rng: &mut R) -> f64 {
        let kl = KarpLuby::for_counting(&self.phi2, self.total_bits);
        let report = kl.run(eps, delta, rng);
        let models_est = report.estimate * (self.total_bits as f64).exp2();
        let illegal = self.illegal_count().to_f64();
        let legal = self.legal_total.to_f64();
        ((models_est - illegal) / legal).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_count::dnf_probability_shannon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    #[test]
    fn dyadic_case_single_variable() {
        // φ = x0, ν(x0) = 3/8: φ'' = "val < 3" over 3 bits, no illegal.
        let d = Dnf::from_terms([vec![Lit::pos(0)]]);
        let red = ProbDnfReduction::new(&d, &[r(3, 8)]).unwrap();
        assert!(red.all_dyadic());
        assert_eq!(red.total_bits, 3);
        assert_eq!(red.illegal_count(), BigUint::zero());
        assert_eq!(red.exact_probability(), r(3, 8));
    }

    #[test]
    fn non_dyadic_case_single_variable() {
        // ν(x0) = 2/3: ℓ = len(3) = 2 bits, Q = 3, illegal = 1.
        let d = Dnf::from_terms([vec![Lit::pos(0)]]);
        let red = ProbDnfReduction::new(&d, &[r(2, 3)]).unwrap();
        assert!(!red.all_dyadic());
        assert_eq!(red.total_bits, 2);
        assert_eq!(red.legal_total, BigUint::from_u32(3));
        assert_eq!(red.illegal_count(), BigUint::one());
        assert_eq!(red.exact_probability(), r(2, 3));
    }

    #[test]
    fn negative_literal() {
        // φ = ¬x0 with ν(x0) = 2/5: ν(φ) = 3/5.
        let d = Dnf::from_terms([vec![Lit::neg(0)]]);
        let red = ProbDnfReduction::new(&d, &[r(2, 5)]).unwrap();
        assert_eq!(red.exact_probability(), r(3, 5));
    }

    #[test]
    fn matches_exact_prob_dnf_on_mixed_formulas() {
        // Cross-validate the whole reduction against the independent
        // Shannon-expansion oracle on the *original* formula.
        let cases: Vec<(Dnf, Vec<BigRational>)> = vec![
            (
                Dnf::from_terms([vec![Lit::pos(0), Lit::neg(1)], vec![Lit::pos(1)]]),
                vec![r(1, 3), r(2, 7)],
            ),
            (
                Dnf::from_terms([
                    vec![Lit::pos(0), Lit::pos(1)],
                    vec![Lit::neg(0), Lit::pos(2)],
                ]),
                vec![r(5, 12), r(1, 2), r(3, 5)],
            ),
            (
                Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::pos(1)], vec![Lit::pos(2)]]),
                vec![r(1, 6), r(1, 6), r(1, 6)],
            ),
        ];
        for (i, (d, probs)) in cases.iter().enumerate() {
            let red = ProbDnfReduction::new(d, probs).unwrap();
            let direct = dnf_probability_shannon(d, probs);
            assert_eq!(red.exact_probability(), direct, "case {i}");
        }
    }

    #[test]
    fn extreme_probabilities() {
        let d = Dnf::from_terms([vec![Lit::pos(0), Lit::pos(1)]]);
        // ν(x0) = 0 kills the positive literal: probability 0.
        let red = ProbDnfReduction::new(&d, &[r(0, 1), r(1, 2)]).unwrap();
        assert_eq!(red.exact_probability(), BigRational::zero());
        // ν(x0) = 1: "val < 1" over len(1)=1 bit is val=0 — prob 1·(1/2)…
        let red1 = ProbDnfReduction::new(&d, &[r(1, 1), r(1, 2)]).unwrap();
        assert_eq!(red1.exact_probability(), r(1, 2));
    }

    #[test]
    fn estimate_close_to_exact() {
        let d = Dnf::from_terms([
            vec![Lit::pos(0), Lit::neg(1)],
            vec![Lit::pos(1), Lit::pos(2)],
        ]);
        let probs = vec![r(1, 3), r(2, 5), r(1, 2)];
        let red = ProbDnfReduction::new(&d, &probs).unwrap();
        let exact = red.exact_probability().to_f64();
        let mut rng = StdRng::seed_from_u64(42);
        let est = red.estimate(0.02, 0.02, &mut rng);
        assert!(
            (est - exact).abs() < 0.05,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn estimate_accurate_on_amplified_non_dyadic_instance() {
        // Regression: many certain (q = 1) variables inflate 2^L while the
        // legal count Q stays tiny (Q/2^L ≈ 1/607 here). The full-space
        // path amplifies its relative error by that factor and clamps to
        // {0, 1}; the legal-restricted sampler must stay accurate on
        // every seed.
        let d = Dnf::from_terms([
            vec![Lit::pos(0), Lit::pos(2)],
            vec![Lit::neg(4), Lit::pos(8)],
            vec![Lit::pos(11), Lit::neg(2)],
        ]);
        let probs = vec![
            r(1, 1),
            r(0, 1),
            r(1, 2),
            r(0, 1),
            r(1, 3),
            r(1, 1),
            r(0, 1),
            r(0, 1),
            r(1, 3),
            r(0, 1),
            r(1, 1),
            r(2, 3),
        ];
        let red = ProbDnfReduction::new(&d, &probs).unwrap();
        let exact = red.exact_probability().to_f64();
        assert!(exact > 0.0 && exact < 1.0, "instance must be nontrivial");
        for seed in [303u64, 1, 2, 3, 4, 5] {
            let mut rng = StdRng::seed_from_u64(seed);
            let est = red.estimate(0.05, 0.02, &mut rng);
            assert!(
                (est - exact).abs() <= 0.05 * exact + 0.02,
                "seed {seed}: estimate {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn estimate_matches_exact_on_mixed_formulas() {
        // The legal-restricted sampler against the exact oracle on the
        // same mixed dyadic/non-dyadic instances as the exact test.
        let cases: Vec<(Dnf, Vec<BigRational>)> = vec![
            (
                Dnf::from_terms([vec![Lit::pos(0), Lit::neg(1)], vec![Lit::pos(1)]]),
                vec![r(1, 3), r(2, 7)],
            ),
            (
                Dnf::from_terms([
                    vec![Lit::pos(0), Lit::pos(1)],
                    vec![Lit::neg(0), Lit::pos(2)],
                ]),
                vec![r(5, 12), r(1, 2), r(3, 5)],
            ),
        ];
        let mut rng = StdRng::seed_from_u64(77);
        for (i, (d, probs)) in cases.iter().enumerate() {
            let red = ProbDnfReduction::new(d, probs).unwrap();
            let exact = red.exact_probability().to_f64();
            let est = red.estimate(0.05, 0.02, &mut rng);
            assert!(
                (est - exact).abs() <= 0.05 * exact + 0.02,
                "case {i}: estimate {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn count_matching_below_brute_force() {
        for ell in 1..=6usize {
            let space = 1u64 << ell;
            for bound in 0..=space {
                for mask in 0..space {
                    let val = mask & 0b101101; // arbitrary sub-pattern
                    let expect = (0..bound).filter(|v| v & mask == val).count() as u64;
                    assert_eq!(
                        count_matching_below(mask, val, bound, ell),
                        expect,
                        "ell={ell} bound={bound} mask={mask} val={val}"
                    );
                }
            }
        }
    }

    #[test]
    fn select_matching_enumerates_in_order() {
        let (mask, val, bound, ell) = (0b01010u64, 0b01000u64, 27u64, 5usize);
        let members: Vec<u64> = (0..bound).filter(|v| v & mask == val).collect();
        assert_eq!(
            count_matching_below(mask, val, bound, ell),
            members.len() as u64
        );
        for (r, &m) in members.iter().enumerate() {
            assert_eq!(select_matching(mask, val, bound, ell, r as u64), m);
        }
    }

    #[test]
    fn missing_probability_rejected() {
        let d = Dnf::from_terms([vec![Lit::pos(3)]]);
        assert!(matches!(
            ProbDnfReduction::new(&d, &[r(1, 2)]),
            Err(ReductionError::MissingProbability { .. })
        ));
    }

    #[test]
    fn empty_formula() {
        let red = ProbDnfReduction::new(&Dnf::new(), &[r(1, 2)]).unwrap();
        assert_eq!(red.exact_probability(), BigRational::zero());
    }

    #[test]
    fn tautology_via_complementary_literals() {
        // φ = x0 ∨ ¬x0: probability 1 regardless of ν.
        let d = Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        let red = ProbDnfReduction::new(&d, &[r(3, 7)]).unwrap();
        assert_eq!(red.exact_probability(), BigRational::one());
    }
}
