//! The reduction from Prob-kDNF to #DNF (Theorem 5.3).
//!
//! Given a kDNF `φ` and a rational probability `ν(X) = p/q` per variable,
//! the reduction introduces, for each variable `X`, fresh bits
//! `Ȳ = Y_{ℓ-1}…Y₀` with `ℓ = len(q)`, and substitutes
//!
//! * `X   ↦ "val(Ȳ) < p"`
//! * `¬X  ↦ "val(Ȳ) ≥ p"`
//!
//! (both O(ℓ²)-size DNFs, see `qrel_logic::threshold`), re-normalizing to
//! DNF — blowup exponential in `k` but polynomial in `|φ|` and the bit
//! length of the probabilities. An assignment to `Ȳ` is *legal* when
//! `val(Ȳ) < q`; the final formula
//!
//! ```text
//! φ'' = φ' ∨ ⋁_X "val(Ȳ_X) ≥ q_X"
//! ```
//!
//! is satisfied by all illegal assignments plus exactly the legal
//! assignments satisfying `φ'`, so with `Q = ∏ q_X` (the number of legal
//! assignments) and `L = Σ ℓ_X` bits in total:
//!
//! ```text
//! ν(φ) = (#φ'' − (2^L − Q)) / Q .
//! ```
//!
//! In the dyadic case (`q = 2^ℓ`) there are no illegal assignments and
//! `φ'' = φ'`. Applying the Karp–Luby #DNF FPTRAS to `φ''` yields the
//! FPTRAS for Prob-kDNF claimed by the theorem.

use qrel_arith::{BigRational, BigUint};
use qrel_count::exact_dnf::dnf_count_models;
use qrel_count::KarpLuby;
use qrel_logic::prop::{Dnf, Lit, VarId};
use qrel_logic::threshold::{bit_len, BitCounter};
use rand::Rng;
use std::fmt;

/// Errors from building the reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReductionError {
    /// A probability whose numerator/denominator exceeds `u64` (the
    /// threshold encodings index bits by machine integers).
    ProbabilityTooWide { var: VarId },
    /// Probability vector does not cover all formula variables.
    MissingProbability { var: VarId },
}

impl fmt::Display for ReductionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReductionError::ProbabilityTooWide { var } => {
                write!(f, "probability of variable x{var} does not fit in u64/u64")
            }
            ReductionError::MissingProbability { var } => {
                write!(f, "no probability given for variable x{var}")
            }
        }
    }
}

impl From<ReductionError> for qrel_budget::QrelError {
    fn from(e: ReductionError) -> Self {
        qrel_budget::QrelError::Unsupported(e.to_string())
    }
}

impl std::error::Error for ReductionError {}

/// `val(Ȳ) < b`, handling the saturated bound `b ≥ 2^ℓ` (tautology).
fn less_dnf(counter: &BitCounter, b: u64) -> Dnf {
    if counter.len() < 64 && b >= (1u64 << counter.len()) {
        Dnf::from_terms([Vec::<Lit>::new()])
    } else {
        counter.less_than(b)
    }
}

/// `val(Ȳ) ≥ b`, handling the saturated bound `b ≥ 2^ℓ` (unsatisfiable).
fn geq_dnf(counter: &BitCounter, b: u64) -> Dnf {
    if counter.len() < 64 && b >= (1u64 << counter.len()) {
        Dnf::new()
    } else {
        counter.at_least(b)
    }
}

/// The constructed reduction for one `(φ, ν)` instance.
#[derive(Debug, Clone)]
pub struct ProbDnfReduction {
    /// `φ''` — the #DNF instance over the counter bits.
    pub phi2: Dnf,
    /// Total counter bits `L` (the variable count of `φ''`).
    pub total_bits: usize,
    /// `Q = ∏ q_X` — the number of legal assignments.
    pub legal_total: BigUint,
    /// Per original variable: `(p, q)` of its probability.
    bounds: Vec<(u64, u64)>,
}

impl ProbDnfReduction {
    /// Build the reduction.
    ///
    /// `probs[v] = Pr[x_v = 1]`, one per variable `0..probs.len()`; all
    /// variables of `dnf` must be covered.
    pub fn new(dnf: &Dnf, probs: &[BigRational]) -> Result<Self, ReductionError> {
        if dnf.var_bound() > probs.len() {
            return Err(ReductionError::MissingProbability {
                var: probs.len() as VarId,
            });
        }
        // Allocate counters: variable v gets bits [offset[v], offset[v]+ℓ).
        let mut bounds = Vec::with_capacity(probs.len());
        let mut counters = Vec::with_capacity(probs.len());
        let mut next_bit: VarId = 0;
        for (v, p) in probs.iter().enumerate() {
            assert!(p.is_probability(), "probability of x{v} out of range");
            let num = p
                .numer()
                .magnitude()
                .to_u64()
                .ok_or(ReductionError::ProbabilityTooWide { var: v as VarId })?;
            let den = p
                .denom()
                .to_u64()
                .ok_or(ReductionError::ProbabilityTooWide { var: v as VarId })?;
            // ℓ bits so that q ≤ 2^ℓ with equality exactly in the dyadic
            // case (so dyadic denominators produce no illegal assignments,
            // as in the paper's "we are done" branch).
            let ell = if den <= 1 { 1 } else { bit_len(den - 1) };
            let bits: Vec<VarId> = (next_bit..next_bit + ell as VarId).collect();
            next_bit += ell as VarId;
            counters.push(BitCounter::new(bits));
            bounds.push((num, den));
        }

        // φ': substitute each literal by its threshold DNF; per-term
        // distribution (disjoint counters ⇒ merges always consistent).
        let mut phi2 = Dnf::new();
        for term in dnf.terms() {
            let mut acc: Vec<Vec<Lit>> = vec![vec![]];
            for lit in term {
                let counter = &counters[lit.var as usize];
                let (p, _q) = bounds[lit.var as usize];
                let replacement = if lit.positive {
                    less_dnf(counter, p)
                } else {
                    geq_dnf(counter, p)
                };
                let mut next = Vec::with_capacity(acc.len() * replacement.num_terms());
                for a in &acc {
                    for t in replacement.terms() {
                        let mut merged = a.clone();
                        merged.extend_from_slice(t);
                        next.push(merged);
                    }
                }
                acc = next;
                if acc.is_empty() {
                    break; // a literal with an unsatisfiable threshold (p = 0)
                }
            }
            for t in acc {
                phi2.push_term_checked(t);
            }
        }

        // φ'' = φ' ∨ ⋁_X "val(Ȳ_X) ≥ q_X" (the illegal assignments).
        let mut legal_total = BigUint::one();
        for (v, counter) in counters.iter().enumerate() {
            let (_p, q) = bounds[v];
            legal_total = legal_total.mul_ref(&BigUint::from_u64(q));
            let illegal = geq_dnf(counter, q);
            phi2.or_with(&illegal);
        }

        Ok(ProbDnfReduction {
            phi2,
            total_bits: next_bit as usize,
            legal_total,
            bounds,
        })
    }

    /// True iff every probability is dyadic (no illegal assignments).
    pub fn all_dyadic(&self) -> bool {
        self.bounds.iter().all(|&(_, q)| q.is_power_of_two())
    }

    /// The number of illegal assignments `2^L − Q`.
    pub fn illegal_count(&self) -> BigUint {
        let two_l = BigUint::one().shl_bits(self.total_bits as u64);
        two_l.checked_sub(&self.legal_total).expect("Q ≤ 2^L")
    }

    /// Recover `ν(φ)` exactly from a #φ'' model count.
    pub fn probability_from_count(&self, models: &BigUint) -> BigRational {
        let legal_sat = models
            .checked_sub(&self.illegal_count())
            .expect("model count below illegal floor");
        BigRational::new(
            qrel_arith::BigInt::from_biguint(legal_sat),
            qrel_arith::BigInt::from_biguint(self.legal_total.clone()),
        )
    }

    /// Exact `ν(φ)` by exact #DNF on `φ''` (oracle path; exponential).
    pub fn exact_probability(&self) -> BigRational {
        let models = dnf_count_models(&self.phi2, self.total_bits);
        self.probability_from_count(&models)
    }

    /// Estimate `ν(φ)` via the Karp–Luby #DNF FPTRAS on `φ''` — the
    /// algorithm of Theorem 5.3.
    pub fn estimate<R: Rng>(&self, eps: f64, delta: f64, rng: &mut R) -> f64 {
        let kl = KarpLuby::for_counting(&self.phi2, self.total_bits);
        let report = kl.run(eps, delta, rng);
        let models_est = report.estimate * (self.total_bits as f64).exp2();
        let illegal = self.illegal_count().to_f64();
        let legal = self.legal_total.to_f64();
        ((models_est - illegal) / legal).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_count::dnf_probability_shannon;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(n: i64, d: u64) -> BigRational {
        BigRational::from_ratio(n, d)
    }

    #[test]
    fn dyadic_case_single_variable() {
        // φ = x0, ν(x0) = 3/8: φ'' = "val < 3" over 3 bits, no illegal.
        let d = Dnf::from_terms([vec![Lit::pos(0)]]);
        let red = ProbDnfReduction::new(&d, &[r(3, 8)]).unwrap();
        assert!(red.all_dyadic());
        assert_eq!(red.total_bits, 3);
        assert_eq!(red.illegal_count(), BigUint::zero());
        assert_eq!(red.exact_probability(), r(3, 8));
    }

    #[test]
    fn non_dyadic_case_single_variable() {
        // ν(x0) = 2/3: ℓ = len(3) = 2 bits, Q = 3, illegal = 1.
        let d = Dnf::from_terms([vec![Lit::pos(0)]]);
        let red = ProbDnfReduction::new(&d, &[r(2, 3)]).unwrap();
        assert!(!red.all_dyadic());
        assert_eq!(red.total_bits, 2);
        assert_eq!(red.legal_total, BigUint::from_u32(3));
        assert_eq!(red.illegal_count(), BigUint::one());
        assert_eq!(red.exact_probability(), r(2, 3));
    }

    #[test]
    fn negative_literal() {
        // φ = ¬x0 with ν(x0) = 2/5: ν(φ) = 3/5.
        let d = Dnf::from_terms([vec![Lit::neg(0)]]);
        let red = ProbDnfReduction::new(&d, &[r(2, 5)]).unwrap();
        assert_eq!(red.exact_probability(), r(3, 5));
    }

    #[test]
    fn matches_exact_prob_dnf_on_mixed_formulas() {
        // Cross-validate the whole reduction against the independent
        // Shannon-expansion oracle on the *original* formula.
        let cases: Vec<(Dnf, Vec<BigRational>)> = vec![
            (
                Dnf::from_terms([vec![Lit::pos(0), Lit::neg(1)], vec![Lit::pos(1)]]),
                vec![r(1, 3), r(2, 7)],
            ),
            (
                Dnf::from_terms([
                    vec![Lit::pos(0), Lit::pos(1)],
                    vec![Lit::neg(0), Lit::pos(2)],
                ]),
                vec![r(5, 12), r(1, 2), r(3, 5)],
            ),
            (
                Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::pos(1)], vec![Lit::pos(2)]]),
                vec![r(1, 6), r(1, 6), r(1, 6)],
            ),
        ];
        for (i, (d, probs)) in cases.iter().enumerate() {
            let red = ProbDnfReduction::new(d, probs).unwrap();
            let direct = dnf_probability_shannon(d, probs);
            assert_eq!(red.exact_probability(), direct, "case {i}");
        }
    }

    #[test]
    fn extreme_probabilities() {
        let d = Dnf::from_terms([vec![Lit::pos(0), Lit::pos(1)]]);
        // ν(x0) = 0 kills the positive literal: probability 0.
        let red = ProbDnfReduction::new(&d, &[r(0, 1), r(1, 2)]).unwrap();
        assert_eq!(red.exact_probability(), BigRational::zero());
        // ν(x0) = 1: "val < 1" over len(1)=1 bit is val=0 — prob 1·(1/2)…
        let red1 = ProbDnfReduction::new(&d, &[r(1, 1), r(1, 2)]).unwrap();
        assert_eq!(red1.exact_probability(), r(1, 2));
    }

    #[test]
    fn estimate_close_to_exact() {
        let d = Dnf::from_terms([
            vec![Lit::pos(0), Lit::neg(1)],
            vec![Lit::pos(1), Lit::pos(2)],
        ]);
        let probs = vec![r(1, 3), r(2, 5), r(1, 2)];
        let red = ProbDnfReduction::new(&d, &probs).unwrap();
        let exact = red.exact_probability().to_f64();
        let mut rng = StdRng::seed_from_u64(42);
        let est = red.estimate(0.02, 0.02, &mut rng);
        assert!(
            (est - exact).abs() < 0.05,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn missing_probability_rejected() {
        let d = Dnf::from_terms([vec![Lit::pos(3)]]);
        assert!(matches!(
            ProbDnfReduction::new(&d, &[r(1, 2)]),
            Err(ReductionError::MissingProbability { .. })
        ));
    }

    #[test]
    fn empty_formula() {
        let red = ProbDnfReduction::new(&Dnf::new(), &[r(1, 2)]).unwrap();
        assert_eq!(red.exact_probability(), BigRational::zero());
    }

    #[test]
    fn tautology_via_complementary_literals() {
        // φ = x0 ∨ ¬x0: probability 1 regardless of ν.
        let d = Dnf::from_terms([vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        let red = ProbDnfReduction::new(&d, &[r(3, 7)]).unwrap();
        assert_eq!(red.exact_probability(), BigRational::one());
    }
}
