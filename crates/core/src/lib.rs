//! Query reliability on unreliable databases — the algorithms of
//! Grädel, Gurevich & Hirsch, *The Complexity of Query Reliability*
//! (PODS 1998).
//!
//! For an unreliable database `𝔇 = (𝔄, μ)` and a k-ary query `ψ`, the
//! *expected error* is `H_ψ(𝔇) = E|ψ^𝔄 Δ ψ^𝔅|` over random actual
//! databases `𝔅 ∈ Ω(𝔇)`, and the *reliability* is
//! `R_ψ(𝔇) = 1 − H_ψ(𝔇)/n^k`.
//!
//! Each constructive result of the paper is a module here:
//!
//! | Paper | Module | Content |
//! |---|---|---|
//! | Prop 3.1 | [`quantifier_free`] | exact reliability of quantifier-free queries in PTIME |
//! | Prop 3.2 | [`reductions::mon2sat`] | #MONOTONE-2SAT ≤ `H_ψ` for a fixed conjunctive `ψ` |
//! | Thm 4.2 | [`exact`] | exact reliability of arbitrary queries by weighted world enumeration, with the `g`-normalized integer-count certificate |
//! | Thm 5.3 | [`prob_dnf`] | Prob-kDNF → #DNF reduction (binary counters, legal-assignment accounting) and the resulting FPTRAS |
//! | Thm 5.4 | [`existential`] | FPTRAS for probabilities of existential sentences (ground → kDNF → Karp–Luby) |
//! | Cor 5.5 | [`reliability_approx`] | absolute-error reliability estimation for existential/universal queries, k-ary budget splitting |
//! | Lem 5.7–5.9 | [`absolute`], [`reductions::four_col`] | absolute reliability `AR_ψ`: decision procedures and the 4-colourability hardness reduction |
//! | Thm 5.12 | [`ptime_estimator`] | absolute-error Monte-Carlo estimation for *all* polynomial-time evaluable queries via the `(ψ ∨ Rc) ∧ Rd` padding construction |
//! | Thm 4.1 | [`so_counting`] | the Regan–Schwentick one-bit-of-#P window arithmetic, simulated with explicit junk |
//! | Lem 5.10 | [`approx_hardness`] | the majority-vote decision procedure showing (ε,δ)-approximation of NP-hard-positivity functions implies NP ⊆ BPP |

pub mod absolute;
pub mod approx_hardness;
pub mod exact;
pub mod existential;
pub mod prob_dnf;
pub mod ptime_estimator;
pub mod quantifier_free;
pub mod reductions;
pub mod reliability_approx;
pub mod so_counting;

pub use absolute::is_absolutely_reliable;
pub use exact::{
    exact_probability, exact_probability_parallel, exact_reliability, exact_reliability_budgeted,
    exact_reliability_budgeted_sharded, exact_reliability_parallel, ExactOutcome, ExactReport,
};
pub use existential::{
    existential_probability_bitslice, existential_probability_bitslice_sharded,
    existential_probability_exact, existential_probability_fptras,
    existential_probability_fptras_budgeted, FptrasReport, Route,
};
pub use prob_dnf::ProbDnfReduction;
pub use ptime_estimator::{PaddingEstimator, PaddingOutcome, PtimeEstimate};
pub use quantifier_free::{qf_reliability, qf_reliability_budgeted, QfOutcome};
pub use reliability_approx::{
    approximate_reliability, approximate_reliability_budgeted,
    approximate_reliability_budgeted_parallel, ApproxOutcome,
};
