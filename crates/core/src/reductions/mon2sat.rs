//! The Proposition 3.2 reduction: #MONOTONE-2SAT ≤ computing `H_ψ` for a
//! fixed conjunctive query.
//!
//! A monotone 2-CNF `⋀ᵢ (Yᵢ ∨ Zᵢ)` is modeled as a structure
//! `(A, L, R, S)`: the universe is the disjoint union of clauses and
//! variables, `L(u,v)`/`R(u,v)` say that `v` is the left/right variable
//! of clause `u`, and `S` holds the variables assigned *false*. The
//! observed database sets `S` = all variables (the all-false assignment)
//! and gives exactly the `S`-facts on variables error probability `1/2`,
//! so `Ω(𝔇)` is uniform over assignments. The conjunctive query
//!
//! ```text
//! ψ = ∃x∃y∃z (Lxy ∧ Rxz ∧ Sy ∧ Sz)
//! ```
//!
//! holds iff some clause has both variables false, i.e. iff the
//! assignment *falsifies* the formula; hence
//! `H_ψ(𝔇) = #SAT / 2^m`. Note the reduction assigns positive `μ` only
//! to facts that are *positive* in the observed database, so it applies
//! verbatim in de Rougemont's restricted model (Remark, Section 3).

use qrel_arith::{BigInt, BigRational, BigUint};
use qrel_db::{Database, DatabaseBuilder, Fact};
use qrel_logic::mon2sat::Monotone2Sat;
use qrel_logic::parser::parse_formula;
use qrel_logic::Formula;
use qrel_prob::{ErrorModel, UnreliableDatabase};

/// The fixed conjunctive query of Proposition 3.2.
pub fn proposition_query() -> Formula {
    parse_formula("exists x y z. L(x,y) & R(x,z) & S(y) & S(z)").expect("fixed query parses")
}

/// The constructed instance.
#[derive(Debug)]
pub struct Mon2SatInstance {
    /// The unreliable database `(𝔄, μ)`.
    pub ud: UnreliableDatabase,
    /// The query `ψ`.
    pub query: Formula,
    /// Number of propositional variables `m` (so assignments = `2^m`).
    pub num_vars: u32,
    /// Whether the observed database satisfies `ψ` (true whenever the
    /// formula has at least one clause).
    pub observed_value: bool,
}

/// Build the unreliable database for a monotone 2-CNF instance.
pub fn reduce(f: &Monotone2Sat) -> Mon2SatInstance {
    let n_clauses = f.num_clauses();
    let m = f.num_vars() as usize;
    let db: Database = {
        let mut b = DatabaseBuilder::new()
            .universe_size(n_clauses + m)
            .relation("L", 2)
            .relation("R", 2)
            .relation("S", 1);
        let l_tuples: Vec<Vec<u32>> = f
            .clauses()
            .iter()
            .enumerate()
            .map(|(i, &(y, _))| vec![i as u32, (n_clauses + y as usize) as u32])
            .collect();
        let r_tuples: Vec<Vec<u32>> = f
            .clauses()
            .iter()
            .enumerate()
            .map(|(i, &(_, z))| vec![i as u32, (n_clauses + z as usize) as u32])
            .collect();
        let s_tuples: Vec<Vec<u32>> = (0..m).map(|v| vec![(n_clauses + v) as u32]).collect();
        b = b
            .tuples("L", l_tuples)
            .tuples("R", r_tuples)
            .tuples("S", s_tuples);
        b.build()
    };
    let mut ud = UnreliableDatabase::reliable(db)
        .with_model(ErrorModel::PositiveOnly)
        .expect("fresh database has no errors");
    let s_index = 2; // vocabulary order: L, R, S
    let half = BigRational::from_ratio(1, 2);
    for v in 0..m {
        ud.set_error(
            &Fact::new(s_index, vec![(n_clauses + v) as u32]),
            half.clone(),
        )
        .expect("S-facts are positive in the observed database");
    }
    Mon2SatInstance {
        ud,
        query: proposition_query(),
        num_vars: f.num_vars(),
        observed_value: n_clauses > 0,
    }
}

/// Recover `#SAT` from the exact expected error `H_ψ(𝔇)`.
///
/// With at least one clause, `H = #SAT/2^m`; for the empty formula the
/// observed value flips and `H = 1 − #SAT/2^m = 0`.
pub fn recover_count(instance: &Mon2SatInstance, h: &BigRational) -> BigUint {
    let two_m = BigRational::new(
        BigInt::from_biguint(BigUint::one().shl_bits(instance.num_vars as u64)),
        BigInt::one(),
    );
    let frac = if instance.observed_value {
        h.clone()
    } else {
        h.one_minus()
    };
    let count = frac.mul_ref(&two_m);
    assert!(count.is_integer(), "H·2^m must be integral, got {count}");
    count.numer().magnitude().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_reliability;
    use qrel_count::count_mon2sat;
    use qrel_eval::FoQuery;
    use qrel_logic::Fragment;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn h_of(instance: &Mon2SatInstance) -> BigRational {
        let q = FoQuery::new(instance.query.clone());
        exact_reliability(&instance.ud, &q).unwrap().expected_error
    }

    #[test]
    fn query_is_conjunctive() {
        assert_eq!(proposition_query().fragment(), Fragment::Conjunctive);
    }

    #[test]
    fn observed_database_satisfies_query() {
        let f = Monotone2Sat::new(3, vec![(0, 1), (1, 2)]);
        let inst = reduce(&f);
        use qrel_eval::Query as _;
        let q = FoQuery::new(inst.query.clone());
        assert!(q.eval_sentence(inst.ud.observed()).unwrap());
        assert!(inst.observed_value);
    }

    #[test]
    fn hand_checked_instance() {
        // (y0|y1)&(y1|y2): 5 satisfying assignments out of 8.
        let f = Monotone2Sat::new(3, vec![(0, 1), (1, 2)]);
        let inst = reduce(&f);
        let h = h_of(&inst);
        assert_eq!(h, BigRational::from_ratio(5, 8));
        assert_eq!(recover_count(&inst, &h).to_u64(), Some(5));
    }

    #[test]
    fn random_instances_match_sharp_sat_oracle() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..8 {
            let f = Monotone2Sat::random(5, 6, &mut rng);
            let inst = reduce(&f);
            let h = h_of(&inst);
            let via_reliability = recover_count(&inst, &h).to_u64().unwrap();
            let via_oracle = count_mon2sat(&f);
            assert_eq!(via_reliability, via_oracle, "formula {f}");
        }
    }

    #[test]
    fn duplicate_clause_variables_handled() {
        // Clause endpoints are distinct by construction, but clauses may
        // repeat: (y0|y1)&(y0|y1).
        let f = Monotone2Sat::new(2, vec![(0, 1), (0, 1)]);
        let inst = reduce(&f);
        let h = h_of(&inst);
        assert_eq!(recover_count(&inst, &h).to_u64(), Some(count_mon2sat(&f)));
    }

    #[test]
    fn empty_formula() {
        let f = Monotone2Sat::new(2, vec![]);
        let inst = reduce(&f);
        assert!(!inst.observed_value);
        let h = h_of(&inst);
        assert_eq!(h, BigRational::zero());
        assert_eq!(recover_count(&inst, &h).to_u64(), Some(4)); // 2^2 models
    }

    #[test]
    fn reduction_respects_positive_only_model() {
        let f = Monotone2Sat::new(3, vec![(0, 2)]);
        let inst = reduce(&f);
        assert_eq!(inst.ud.model(), ErrorModel::PositiveOnly);
    }
}
