//! Executable hardness reductions.
//!
//! The paper's lower bounds are reductions; implementing them makes the
//! hardness claims mechanically checkable: for every instance, the
//! quantity computed through the reliability machinery must equal the
//! quantity computed by an independent combinatorial oracle.
//!
//! * [`mon2sat`] — Proposition 3.2: #MONOTONE-2SAT reduces to computing
//!   the expected error of the fixed conjunctive query
//!   `∃x∃y∃z (Lxy ∧ Rxz ∧ Sy ∧ Sz)`;
//! * [`four_col`] — Lemma 5.9: graph 4-colourability reduces to the
//!   complement of the absolute reliability problem of the fixed
//!   existential query `∃x∃y (Exy ∧ (R₁x ↔ R₁y) ∧ (R₂x ↔ R₂y))`.

pub mod four_col;
pub mod mon2sat;
