//! The Lemma 5.9 reduction: 4-colourability ≤ co-AR_ψ for a fixed
//! existential query.
//!
//! Colours are encoded by two unary relations `R₁, R₂` (two bits → four
//! colours). The query
//!
//! ```text
//! ψ = ∃x∃y (Exy ∧ (R₁x ↔ R₁y) ∧ (R₂x ↔ R₂y))
//! ```
//!
//! says some edge is monochromatic — `(R₁, R₂)` is *not* a proper
//! 4-colouring. From a graph `G = (V, E)` build `𝔇 = (𝔄, μ)` with the
//! edges certain (`μ = 0`), both colour relations empty, and
//! `μ(Rᵢv) = 1/2` on every node: the worlds are exactly the colourings.
//! Since the observed all-same colouring is monochromatic on every edge
//! (`𝔄 ⊨ ψ`, granted `E ≠ ∅` — the paper's footnote 2), the answer can
//! flip iff some world is a proper 4-colouring:
//! `G is 4-colourable ⟺ 𝔇 ∉ AR_ψ`.
//!
//! An independent backtracking 4-colouring solver is included as the
//! verification oracle.

use qrel_arith::BigRational;
use qrel_db::{DatabaseBuilder, Fact};
use qrel_logic::parser::parse_formula;
use qrel_logic::Formula;
use qrel_prob::UnreliableDatabase;

/// A simple undirected graph on vertices `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl Graph {
    /// # Panics
    /// Panics on out-of-range endpoints or self-loops.
    pub fn new(n: usize, edges: Vec<(u32, u32)>) -> Self {
        for &(a, b) in &edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge endpoint out of range"
            );
            assert_ne!(a, b, "self-loops not allowed");
        }
        Graph { n, edges }
    }

    /// The complete graph `K_n`.
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n as u32 {
            for b in (a + 1)..n as u32 {
                edges.push((a, b));
            }
        }
        Graph { n, edges }
    }

    /// A cycle `C_n`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3);
        let edges = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        Graph { n, edges }
    }

    pub fn num_vertices(&self) -> usize {
        self.n
    }

    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Backtracking k-colouring oracle.
    pub fn is_k_colourable(&self, k: usize) -> bool {
        if self.n == 0 {
            return true;
        }
        let mut adj = vec![Vec::new(); self.n];
        for &(a, b) in &self.edges {
            adj[a as usize].push(b as usize);
            adj[b as usize].push(a as usize);
        }
        let mut colours = vec![usize::MAX; self.n];
        fn go(v: usize, k: usize, adj: &[Vec<usize>], colours: &mut [usize]) -> bool {
            if v == colours.len() {
                return true;
            }
            // Symmetry breaking: vertex v may only use colours 0..=min(v,k-1).
            for c in 0..k.min(v + 1) {
                if adj[v].iter().all(|&u| colours[u] != c) {
                    colours[v] = c;
                    if go(v + 1, k, adj, colours) {
                        return true;
                    }
                    colours[v] = usize::MAX;
                }
            }
            false
        }
        go(0, k, &adj, &mut colours)
    }
}

/// The fixed existential (non-4-colouring) query of Lemma 5.9.
pub fn lemma_query() -> Formula {
    parse_formula("exists x y. E(x,y) & (R1(x) <-> R1(y)) & (R2(x) <-> R2(y))")
        .expect("fixed query parses")
}

/// Build the unreliable database of the reduction.
pub fn reduce(g: &Graph) -> UnreliableDatabase {
    let db = DatabaseBuilder::new()
        .universe_size(g.num_vertices())
        .relation("E", 2)
        .relation("R1", 1)
        .relation("R2", 1)
        .tuples(
            "E",
            g.edges()
                .iter()
                .map(|&(a, b)| vec![a, b])
                .collect::<Vec<_>>(),
        )
        .build();
    let mut ud = UnreliableDatabase::reliable(db);
    let half = BigRational::from_ratio(1, 2);
    for v in 0..g.num_vertices() as u32 {
        ud.set_error(&Fact::new(1, vec![v]), half.clone()).unwrap();
        ud.set_error(&Fact::new(2, vec![v]), half.clone()).unwrap();
    }
    ud
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absolute::is_absolutely_reliable;
    use qrel_eval::FoQuery;
    use qrel_logic::Fragment;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn reduction_says_colourable(g: &Graph) -> bool {
        let ud = reduce(g);
        let q = FoQuery::new(lemma_query());
        // G 4-colourable ⟺ 𝔇 ∉ AR_ψ.
        !is_absolutely_reliable(&ud, &q).unwrap()
    }

    #[test]
    fn query_is_existential() {
        assert_eq!(lemma_query().fragment(), Fragment::Existential);
    }

    #[test]
    fn colouring_oracle_classics() {
        assert!(Graph::complete(4).is_k_colourable(4));
        assert!(!Graph::complete(5).is_k_colourable(4));
        assert!(Graph::cycle(5).is_k_colourable(3));
        assert!(!Graph::cycle(5).is_k_colourable(2));
        assert!(Graph::cycle(6).is_k_colourable(2));
    }

    #[test]
    fn k4_is_four_colourable_via_reduction() {
        assert!(reduction_says_colourable(&Graph::complete(4)));
    }

    #[test]
    fn k5_is_not_four_colourable_via_reduction() {
        assert!(!reduction_says_colourable(&Graph::complete(5)));
    }

    #[test]
    fn random_graphs_match_oracle() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..6 {
            let n = rng.gen_range(4..7usize);
            let mut edges = Vec::new();
            for a in 0..n as u32 {
                for b in (a + 1)..n as u32 {
                    if rng.gen_bool(0.6) {
                        edges.push((a, b));
                    }
                }
            }
            if edges.is_empty() {
                edges.push((0, 1)); // footnote 2: E ≠ ∅
            }
            let g = Graph::new(n, edges);
            assert_eq!(
                reduction_says_colourable(&g),
                g.is_k_colourable(4),
                "graph {g:?}"
            );
        }
    }

    #[test]
    fn k5_plus_isolated_vertices_still_uncolourable() {
        let mut edges = Graph::complete(5).edges().to_vec();
        edges.push((5, 6));
        let g = Graph::new(7, edges);
        assert!(!g.is_k_colourable(4));
        assert!(!reduction_says_colourable(&g));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        Graph::new(3, vec![(1, 1)]);
    }
}
