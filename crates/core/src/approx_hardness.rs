//! The Lemma 5.10 argument, executable: relative-error approximation of
//! an NP-hard-positivity function would put NP inside BPP.
//!
//! Lemma 5.10: if `{x : f(x) > 0}` is NP-hard and `f` admits a
//! randomized polynomial-time (ε, δ)-approximation algorithm with
//! `ε < 1`, `δ < 1/2`, then NP ⊆ BPP. The proof is one line: a relative
//! (ε < 1) approximation of `f(x)` is zero iff `f(x)` is zero (up to the
//! failure probability δ), so majority voting decides positivity.
//!
//! This module implements that decision procedure generically and — for
//! the paper's concrete instance — wires it to the expected error of the
//! non-4-colouring query (whose positivity is 4-UNcolourability…
//! precisely, `H_ψ > 0` iff `G` is 4-colourable for the Lemma 5.9
//! instances). Tests run it with a *simulated* (ε, δ)-approximator built
//! from the exact engine plus calibrated noise, confirming the BPP-style
//! amplification works exactly as the lemma says.

use rand::Rng;

/// Decide `f(x) > 0` by majority vote over `trials` runs of a randomized
/// (ε, δ)-approximator `approx` with ε < 1, δ < 1/2 (Lemma 5.10's
/// decision procedure). Each run votes "positive" iff its output is
/// strictly positive; relative accuracy means a run is correct with
/// probability ≥ 1 − δ, so the majority is correct with probability
/// ≥ 1 − exp(−2(1/2 − δ)²·trials).
pub fn decide_positive_by_majority<R: Rng>(
    mut approx: impl FnMut(&mut R) -> f64,
    trials: usize,
    rng: &mut R,
) -> bool {
    assert!(trials > 0);
    let mut positive_votes = 0usize;
    for _ in 0..trials {
        if approx(rng) > 0.0 {
            positive_votes += 1;
        }
    }
    2 * positive_votes > trials
}

/// Error probability bound for the majority vote (two-sided Hoeffding):
/// `exp(−2(1/2 − δ)²·trials)`.
pub fn majority_error_bound(delta: f64, trials: usize) -> f64 {
    assert!(delta < 0.5);
    (-2.0 * (0.5 - delta).powi(2) * trials as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_reliability;
    use crate::reductions::four_col::{lemma_query, reduce, Graph};
    use qrel_eval::FoQuery;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A calibrated (ε, δ)-approximator for H_ψ built from the exact
    /// engine: with probability 1 − δ it returns a value within relative
    /// error ε of the truth; with probability δ it returns garbage.
    fn simulated_approximator(truth: f64, eps: f64, delta: f64) -> impl FnMut(&mut StdRng) -> f64 {
        move |rng: &mut StdRng| {
            if rng.gen::<f64>() < delta {
                // Adversarial failure: report the *wrong* side.
                if truth > 0.0 {
                    0.0
                } else {
                    1.0
                }
            } else {
                truth * (1.0 + eps * (rng.gen::<f64>() * 2.0 - 1.0))
            }
        }
    }

    #[test]
    fn majority_decides_four_colourability() {
        // The Lemma 5.10 pipeline end to end: an (ε, δ)-approximator for
        // H_ψ of the Lemma 5.9 instances decides 4-colourability.
        let q = FoQuery::new(lemma_query());
        let mut rng = StdRng::seed_from_u64(1);
        let cases = [
            (Graph::complete(4), true),
            (Graph::complete(5), false),
            (Graph::cycle(5), true),
        ];
        for (g, colourable) in cases {
            let ud = reduce(&g);
            let truth = exact_reliability(&ud, &q).unwrap().expected_error.to_f64();
            // H_ψ > 0 ⟺ some world flips the (observed-true) query ⟺
            // a proper 4-colouring exists.
            assert_eq!(truth > 0.0, colourable);
            let approx = simulated_approximator(truth, 0.9, 0.3);
            let decision = decide_positive_by_majority(approx, 101, &mut rng);
            assert_eq!(
                decision,
                colourable,
                "graph with {} vertices",
                g.num_vertices()
            );
        }
    }

    #[test]
    fn amplification_bound_decreases() {
        assert!(majority_error_bound(0.3, 100) < majority_error_bound(0.3, 10));
        assert!(majority_error_bound(0.3, 1000) < 1e-15);
        // δ close to 1/2 amplifies slowly — the bound reflects it.
        assert!(majority_error_bound(0.49, 100) > majority_error_bound(0.1, 100));
    }

    #[test]
    fn majority_robust_to_failures() {
        // Even a δ = 0.4 approximator is amplified by 501 trials.
        let mut rng = StdRng::seed_from_u64(2);
        for truth in [0.0, 0.37] {
            let approx = simulated_approximator(truth, 0.5, 0.4);
            let decision = decide_positive_by_majority(approx, 501, &mut rng);
            assert_eq!(decision, truth > 0.0);
        }
    }
}
