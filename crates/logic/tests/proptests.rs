//! Property-based tests for the logic substrate: random formula trees and
//! random propositional formulas.

use proptest::prelude::*;
use qrel_logic::parser::parse_formula;
use qrel_logic::prop::{Dnf, Lit, PropFormula};
use qrel_logic::{Formula, Term};

/// Strategy for random first-order formulas over {E/2, S/1}, variables
/// x, y, z.
fn formula_strategy() -> impl Strategy<Value = Formula> {
    let var = prop_oneof![Just("x"), Just("y"), Just("z")];
    let atom = prop_oneof![
        (var.clone(), var.clone())
            .prop_map(|(a, b)| Formula::atom("E", [Term::var(a), Term::var(b)])),
        var.clone().prop_map(|a| Formula::atom("S", [Term::var(a)])),
        (var.clone(), var.clone()).prop_map(|(a, b)| Formula::eq(Term::var(a), Term::var(b))),
        Just(Formula::True),
        Just(Formula::False),
    ];
    atom.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Formula::and),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Formula::or),
            (prop_oneof![Just("x"), Just("y"), Just("z")], inner.clone())
                .prop_map(|(v, f)| Formula::exists([v], f)),
            (prop_oneof![Just("x"), Just("y"), Just("z")], inner)
                .prop_map(|(v, f)| Formula::forall([v], f)),
        ]
    })
}

/// Strategy for random propositional formulas over up to 6 variables.
fn prop_strategy() -> impl Strategy<Value = PropFormula> {
    let leaf = prop_oneof![
        (0u32..6).prop_map(PropFormula::Var),
        any::<bool>().prop_map(PropFormula::Const),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(PropFormula::not),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(PropFormula::and),
            proptest::collection::vec(inner, 2..4).prop_map(PropFormula::or),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn display_reparse_preserves_nnf(f in formula_strategy()) {
        let printed = f.to_string();
        let reparsed = parse_formula(&printed).unwrap();
        prop_assert_eq!(f.to_nnf(), reparsed.to_nnf(), "printed: {}", printed);
    }

    #[test]
    fn nnf_has_negation_only_on_atoms(f in formula_strategy()) {
        fn check(f: &Formula) -> bool {
            match f {
                Formula::Not(inner) => {
                    matches!(**inner, Formula::Atom { .. } | Formula::Eq(..))
                }
                Formula::And(fs) | Formula::Or(fs) => fs.iter().all(check),
                Formula::Exists(_, g) | Formula::Forall(_, g) => check(g),
                Formula::ExistsRel(_, _, g) | Formula::ForallRel(_, _, g) => check(g),
                _ => true,
            }
        }
        prop_assert!(check(&f.to_nnf()));
    }

    #[test]
    fn nnf_is_idempotent(f in formula_strategy()) {
        let once = f.to_nnf();
        prop_assert_eq!(once.to_nnf(), once);
    }

    #[test]
    fn double_negation_nnf_equals_nnf(f in formula_strategy()) {
        let double_neg = Formula::not(Formula::not(f.clone()));
        prop_assert_eq!(double_neg.to_nnf(), f.to_nnf());
    }

    #[test]
    fn free_vars_invariant_under_nnf(f in formula_strategy()) {
        prop_assert_eq!(f.free_vars(), f.to_nnf().free_vars());
    }

    #[test]
    fn prop_nnf_dnf_preserves_semantics(f in prop_strategy()) {
        if let Some(dnf) = f.to_dnf(4096) {
            for mask in 0u64..(1 << 6) {
                let a: Vec<bool> = (0..6).map(|i| (mask >> i) & 1 == 1).collect();
                prop_assert_eq!(dnf.eval(&a), f.eval(&a), "mask {}", mask);
            }
        }
    }

    #[test]
    fn dnf_simplify_preserves_semantics(terms in proptest::collection::vec(
        proptest::collection::vec((0u32..5, any::<bool>()), 1..4), 0..6)) {
        let mut d = Dnf::new();
        for t in &terms {
            d.push_term_checked(
                t.iter().map(|&(v, pos)| Lit { var: v, positive: pos }).collect(),
            );
        }
        let mut simplified = d.clone();
        simplified.simplify();
        prop_assert!(simplified.num_terms() <= d.num_terms());
        for mask in 0u64..(1 << 5) {
            let a: Vec<bool> = (0..5).map(|i| (mask >> i) & 1 == 1).collect();
            prop_assert_eq!(simplified.eval(&a), d.eval(&a));
        }
    }

    #[test]
    fn fragment_classification_is_stable_under_nnf_for_quantifier_free(
        f in formula_strategy()
    ) {
        use qrel_logic::Fragment;
        if f.fragment() == Fragment::QuantifierFree {
            prop_assert!(matches!(
                f.to_nnf().fragment(),
                Fragment::QuantifierFree | Fragment::Conjunctive
            ));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The FO parser never panics on arbitrary input — it either parses
    /// or returns a structured error.
    #[test]
    fn parser_total_on_arbitrary_strings(s in "[ -~]{0,40}") {
        let _ = parse_formula(&s);
    }

    /// Parser is total on strings drawn from the query alphabet
    /// specifically (more likely to reach deep parse states).
    #[test]
    fn parser_total_on_query_like_strings(
        s in "(exists |forall |[a-z]\\(|[xyz]|[(),.&|!=<>' -]){0,30}"
    ) {
        let _ = parse_formula(&s);
    }
}
