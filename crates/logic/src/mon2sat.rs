//! Monotone 2-CNF formulas — the #P-complete counting substrate of
//! Proposition 3.2.
//!
//! An instance is `⋀_{i=1}^{n} (Y_i ∨ Z_i)` with `Y_i`, `Z_i` positive
//! variables. Valiant proved counting its satisfying assignments
//! (#MONOTONE-2SAT) #P-complete; the paper reduces it to the expected
//! error of the fixed conjunctive query `∃x∃y∃z (Lxy ∧ Rxz ∧ Sy ∧ Sz)`.

use crate::prop::{Cnf, Lit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A monotone 2-CNF formula over variables `0..num_vars`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Monotone2Sat {
    num_vars: u32,
    clauses: Vec<(u32, u32)>,
}

impl Monotone2Sat {
    /// Build an instance.
    ///
    /// # Panics
    /// Panics if a clause mentions a variable `≥ num_vars`.
    pub fn new(num_vars: u32, clauses: Vec<(u32, u32)>) -> Self {
        for &(a, b) in &clauses {
            assert!(a < num_vars && b < num_vars, "clause variable out of range");
        }
        Monotone2Sat { num_vars, clauses }
    }

    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    pub fn clauses(&self) -> &[(u32, u32)] {
        &self.clauses
    }

    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Evaluate under an assignment (`true` = variable set to true).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|&(a, b)| assignment[a as usize] || assignment[b as usize])
    }

    /// View as a general [`Cnf`] (all literals positive).
    pub fn to_cnf(&self) -> Cnf {
        Cnf::from_clauses(
            self.clauses
                .iter()
                .map(|&(a, b)| vec![Lit::pos(a), Lit::pos(b)]),
        )
    }

    /// Exact satisfying-assignment count by brute force. Testing oracle;
    /// O(2^num_vars).
    pub fn count_models_brute(&self) -> u64 {
        assert!(
            self.num_vars <= 26,
            "brute-force counting limited to 26 vars"
        );
        let mut count = 0u64;
        let n = self.num_vars as usize;
        let mut assignment = vec![false; n];
        for mask in 0u64..(1 << n) {
            for (i, slot) in assignment.iter_mut().enumerate() {
                *slot = (mask >> i) & 1 == 1;
            }
            if self.eval(&assignment) {
                count += 1;
            }
        }
        count
    }

    /// Generate a random instance with `num_vars` variables and
    /// `num_clauses` clauses (distinct endpoints per clause, duplicates
    /// across clauses allowed — as in random 2-SAT models).
    pub fn random<R: rand::Rng>(num_vars: u32, num_clauses: usize, rng: &mut R) -> Self {
        assert!(num_vars >= 2, "need at least two variables");
        let mut clauses = Vec::with_capacity(num_clauses);
        for _ in 0..num_clauses {
            let a = rng.gen_range(0..num_vars);
            let mut b = rng.gen_range(0..num_vars);
            while b == a {
                b = rng.gen_range(0..num_vars);
            }
            clauses.push((a.min(b), a.max(b)));
        }
        Monotone2Sat { num_vars, clauses }
    }
}

impl fmt::Display for Monotone2Sat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "true");
        }
        for (i, (a, b)) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "(y{a} | y{b})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn eval_and_count() {
        // (y0 | y1) & (y1 | y2): satisfying assignments over 3 vars.
        let f = Monotone2Sat::new(3, vec![(0, 1), (1, 2)]);
        assert!(f.eval(&[false, true, false]));
        assert!(!f.eval(&[true, false, false]));
        // y1=1: 4 assignments; y1=0 needs y0=1,y2=1: 1. Total 5.
        assert_eq!(f.count_models_brute(), 5);
    }

    #[test]
    fn empty_formula_all_models() {
        let f = Monotone2Sat::new(4, vec![]);
        assert_eq!(f.count_models_brute(), 16);
    }

    #[test]
    fn cnf_view_agrees() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let f = Monotone2Sat::random(6, 7, &mut rng);
            assert_eq!(f.count_models_brute(), f.to_cnf().count_models_brute(6));
        }
    }

    #[test]
    fn random_clauses_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let f = Monotone2Sat::random(10, 50, &mut rng);
        assert_eq!(f.num_clauses(), 50);
        for &(a, b) in f.clauses() {
            assert!(a < 10 && b < 10 && a != b && a < b);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        Monotone2Sat::new(2, vec![(0, 2)]);
    }

    #[test]
    fn display() {
        let f = Monotone2Sat::new(3, vec![(0, 1), (1, 2)]);
        assert_eq!(f.to_string(), "(y0 | y1) & (y1 | y2)");
    }
}
