//! Logic substrate for query reliability.
//!
//! Provides the syntactic objects the paper's algorithms manipulate:
//!
//! * relational vocabularies ([`Vocabulary`], [`RelationSymbol`]);
//! * first-order and second-order formulas ([`Formula`], [`Term`]) with
//!   fragment checkers for the classes the paper distinguishes
//!   (quantifier-free, conjunctive, existential, universal);
//! * a recursive-descent [`parser`] for a concrete query syntax;
//! * propositional formulas ([`prop::PropFormula`]) and normal forms
//!   ([`prop::Dnf`], [`prop::Cnf`]) over an interned atom table, which is
//!   where existential queries land after grounding (Theorem 5.4);
//! * the threshold encodings `val(Ȳ) < b` / `val(Ȳ) ≥ b` used by the
//!   reduction from Prob-kDNF to #DNF (Theorem 5.3);
//! * monotone 2-CNF instances for the #MONOTONE-2SAT reduction
//!   (Proposition 3.2).

pub mod fol;
pub mod mon2sat;
pub mod parser;
pub mod prenex;
pub mod prop;
pub mod threshold;
pub mod vocab;

pub use fol::{Formula, Fragment, Term};
pub use vocab::{RelationSymbol, Vocabulary};
