//! Propositional formulas and normal forms.
//!
//! Grounding an existential query over an unreliable database produces a
//! propositional kDNF formula whose variables are atomic facts
//! (Theorem 5.4); the counting and estimation algorithms of the paper all
//! operate on this layer. Variables are `u32` indices into an
//! [`AtomTable`] so formulas stay compact and hashable.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Propositional variable identifier.
pub type VarId = u32;

/// Interning table mapping human-readable atom names (e.g. ground facts
/// like `S(3)`) to dense [`VarId`]s.
#[derive(Debug, Clone, Default)]
pub struct AtomTable {
    names: Vec<String>,
    index: HashMap<String, VarId>,
}

impl AtomTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its id (stable across repeated calls).
    pub fn intern(&mut self, name: impl Into<String>) -> VarId {
        let name = name.into();
        if let Some(&id) = self.index.get(&name) {
            return id;
        }
        let id = self.names.len() as VarId;
        self.index.insert(name.clone(), id);
        self.names.push(name);
        id
    }

    /// Allocate a fresh variable with a unique generated name (never
    /// aliases an already-interned atom, even one that happens to look
    /// like `prefix#k`).
    pub fn fresh(&mut self, prefix: &str) -> VarId {
        let mut i = self.names.len();
        loop {
            let name = format!("{prefix}#{i}");
            if self.lookup(&name).is_none() {
                return self.intern(name);
            }
            i += 1;
        }
    }

    pub fn lookup(&self, name: &str) -> Option<VarId> {
        self.index.get(name).copied()
    }

    pub fn name(&self, id: VarId) -> &str {
        &self.names[id as usize]
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A propositional literal: a variable with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Lit {
    pub var: VarId,
    pub positive: bool,
}

impl Lit {
    pub fn pos(var: VarId) -> Lit {
        Lit {
            var,
            positive: true,
        }
    }

    pub fn neg(var: VarId) -> Lit {
        Lit {
            var,
            positive: false,
        }
    }

    pub fn negated(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }

    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var as usize] == self.positive
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "!x{}", self.var)
        }
    }
}

/// An arbitrary propositional formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PropFormula {
    Const(bool),
    Var(VarId),
    Not(Box<PropFormula>),
    And(Vec<PropFormula>),
    Or(Vec<PropFormula>),
}

impl PropFormula {
    pub fn var(v: VarId) -> PropFormula {
        PropFormula::Var(v)
    }

    pub fn lit(l: Lit) -> PropFormula {
        if l.positive {
            PropFormula::Var(l.var)
        } else {
            PropFormula::Not(Box::new(PropFormula::Var(l.var)))
        }
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(f: PropFormula) -> PropFormula {
        PropFormula::Not(Box::new(f))
    }

    pub fn and(fs: impl IntoIterator<Item = PropFormula>) -> PropFormula {
        let v: Vec<_> = fs.into_iter().collect();
        match v.len() {
            0 => PropFormula::Const(true),
            1 => v.into_iter().next().unwrap(),
            _ => PropFormula::And(v),
        }
    }

    pub fn or(fs: impl IntoIterator<Item = PropFormula>) -> PropFormula {
        let v: Vec<_> = fs.into_iter().collect();
        match v.len() {
            0 => PropFormula::Const(false),
            1 => v.into_iter().next().unwrap(),
            _ => PropFormula::Or(v),
        }
    }

    /// Evaluate under a total assignment (indexed by `VarId`).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        match self {
            PropFormula::Const(b) => *b,
            PropFormula::Var(v) => assignment[*v as usize],
            PropFormula::Not(f) => !f.eval(assignment),
            PropFormula::And(fs) => fs.iter().all(|f| f.eval(assignment)),
            PropFormula::Or(fs) => fs.iter().any(|f| f.eval(assignment)),
        }
    }

    /// The set of variables occurring in the formula.
    pub fn vars(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<VarId>) {
        match self {
            PropFormula::Const(_) => {}
            PropFormula::Var(v) => {
                out.insert(*v);
            }
            PropFormula::Not(f) => f.collect_vars(out),
            PropFormula::And(fs) | PropFormula::Or(fs) => {
                for f in fs {
                    f.collect_vars(out);
                }
            }
        }
    }

    /// Convert to DNF by distribution, failing if the result would exceed
    /// `max_terms` terms (distribution is worst-case exponential).
    pub fn to_dnf(&self, max_terms: usize) -> Option<Dnf> {
        let nnf = self.nnf(false);
        let terms = nnf.dnf_terms(max_terms)?;
        let mut dnf = Dnf::new();
        for t in terms {
            dnf.push_term_checked(t);
        }
        Some(dnf)
    }

    fn nnf(&self, neg: bool) -> PropFormula {
        match self {
            PropFormula::Const(b) => PropFormula::Const(*b != neg),
            PropFormula::Var(v) => {
                if neg {
                    PropFormula::not(PropFormula::Var(*v))
                } else {
                    PropFormula::Var(*v)
                }
            }
            PropFormula::Not(f) => f.nnf(!neg),
            PropFormula::And(fs) => {
                let inner: Vec<_> = fs.iter().map(|f| f.nnf(neg)).collect();
                if neg {
                    PropFormula::or(inner)
                } else {
                    PropFormula::and(inner)
                }
            }
            PropFormula::Or(fs) => {
                let inner: Vec<_> = fs.iter().map(|f| f.nnf(neg)).collect();
                if neg {
                    PropFormula::and(inner)
                } else {
                    PropFormula::or(inner)
                }
            }
        }
    }

    /// Terms of the DNF of an NNF formula (None if `max_terms` exceeded).
    /// Inconsistent terms are dropped.
    fn dnf_terms(&self, max_terms: usize) -> Option<Vec<Vec<Lit>>> {
        match self {
            PropFormula::Const(true) => Some(vec![vec![]]),
            PropFormula::Const(false) => Some(vec![]),
            PropFormula::Var(v) => Some(vec![vec![Lit::pos(*v)]]),
            PropFormula::Not(f) => match f.as_ref() {
                PropFormula::Var(v) => Some(vec![vec![Lit::neg(*v)]]),
                _ => unreachable!("formula not in NNF"),
            },
            PropFormula::Or(fs) => {
                let mut out = Vec::new();
                for f in fs {
                    out.extend(f.dnf_terms(max_terms)?);
                    if out.len() > max_terms {
                        return None;
                    }
                }
                Some(out)
            }
            PropFormula::And(fs) => {
                let mut acc: Vec<Vec<Lit>> = vec![vec![]];
                for f in fs {
                    let ts = f.dnf_terms(max_terms)?;
                    let mut next = Vec::new();
                    for a in &acc {
                        for t in &ts {
                            if let Some(merged) = merge_consistent(a, t) {
                                next.push(merged);
                                if next.len() > max_terms {
                                    return None;
                                }
                            }
                        }
                    }
                    acc = next;
                }
                Some(acc)
            }
        }
    }
}

/// Merge two literal sets if consistent (no complementary pair), keeping
/// the result sorted and duplicate-free.
fn merge_consistent(a: &[Lit], b: &[Lit]) -> Option<Vec<Lit>> {
    let mut out: Vec<Lit> = a.to_vec();
    out.extend_from_slice(b);
    out.sort();
    out.dedup();
    for w in out.windows(2) {
        if w[0].var == w[1].var {
            return None; // complementary pair
        }
    }
    Some(out)
}

/// A formula in disjunctive normal form: a disjunction of terms, each term
/// a conjunction of literals.
///
/// Invariants: each term is sorted by variable, mentions each variable at
/// most once (consistent), and the empty DNF denotes ⊥ while a DNF
/// containing the empty term denotes ⊤.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "RawDnf")]
pub struct Dnf {
    terms: Vec<Vec<Lit>>,
}

/// Deserialization shadow: re-normalizes every term through
/// [`Dnf::push_term_checked`] so the sorted/consistent invariant cannot
/// be bypassed through serde.
#[derive(Deserialize)]
struct RawDnf {
    terms: Vec<Vec<Lit>>,
}

impl From<RawDnf> for Dnf {
    fn from(raw: RawDnf) -> Self {
        Dnf::from_terms(raw.terms)
    }
}

impl Dnf {
    pub fn new() -> Self {
        Dnf { terms: Vec::new() }
    }

    /// Build from raw terms, normalizing each and dropping inconsistent ones.
    pub fn from_terms<I, T>(terms: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: IntoIterator<Item = Lit>,
    {
        let mut d = Dnf::new();
        for t in terms {
            d.push_term_checked(t.into_iter().collect());
        }
        d
    }

    /// Push a term after normalization; silently drops inconsistent terms.
    pub fn push_term_checked(&mut self, mut lits: Vec<Lit>) {
        lits.sort();
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].var == w[1].var {
                return; // x ∧ ¬x — term is unsatisfiable
            }
        }
        self.terms.push(lits);
    }

    pub fn terms(&self) -> &[Vec<Lit>] {
        &self.terms
    }

    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    pub fn is_false(&self) -> bool {
        self.terms.is_empty()
    }

    pub fn is_trivially_true(&self) -> bool {
        self.terms.iter().any(|t| t.is_empty())
    }

    /// Width: the maximum number of literals in a term (the `k` of kDNF).
    pub fn width(&self) -> usize {
        self.terms.iter().map(|t| t.len()).max().unwrap_or(0)
    }

    /// All variables mentioned.
    pub fn vars(&self) -> BTreeSet<VarId> {
        self.terms.iter().flatten().map(|l| l.var).collect()
    }

    /// Largest variable id + 1 (convenient array dimension), 0 if no vars.
    pub fn var_bound(&self) -> usize {
        self.terms
            .iter()
            .flatten()
            .map(|l| l.var as usize + 1)
            .max()
            .unwrap_or(0)
    }

    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.terms
            .iter()
            .any(|t| t.iter().all(|l| l.eval(assignment)))
    }

    /// Remove duplicate terms and terms subsumed by a shorter term.
    pub fn simplify(&mut self) {
        self.terms.sort_by_key(|t| t.len());
        let mut kept: Vec<Vec<Lit>> = Vec::new();
        'outer: for t in self.terms.drain(..) {
            for k in &kept {
                if k.iter().all(|l| t.binary_search(l).is_ok()) {
                    continue 'outer; // t subsumed by k
                }
            }
            kept.push(t);
        }
        self.terms = kept;
    }

    /// Exact model count over `num_vars` variables by brute-force
    /// enumeration. Testing oracle only — O(2^num_vars).
    pub fn count_models_brute(&self, num_vars: usize) -> u64 {
        assert!(num_vars <= 26, "brute-force counting limited to 26 vars");
        let mut count = 0u64;
        let mut assignment = vec![false; num_vars];
        for mask in 0u64..(1 << num_vars) {
            for (i, slot) in assignment.iter_mut().enumerate() {
                *slot = (mask >> i) & 1 == 1;
            }
            if self.eval(&assignment) {
                count += 1;
            }
        }
        count
    }

    /// Disjunction of two DNFs.
    pub fn or_with(&mut self, other: &Dnf) {
        self.terms.extend(other.terms.iter().cloned());
    }
}

impl fmt::Display for Dnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_normal_form(f, &self.terms, "|", "&", "false", "true")
    }
}

/// Shared pretty-printer for DNF terms / CNF clauses.
fn fmt_normal_form(
    f: &mut fmt::Formatter<'_>,
    groups: &[Vec<Lit>],
    outer: &str,
    inner: &str,
    empty: &str,
    unit: &str,
) -> fmt::Result {
    if groups.is_empty() {
        return write!(f, "{empty}");
    }
    for (i, g) in groups.iter().enumerate() {
        if i > 0 {
            write!(f, " {outer} ")?;
        }
        if g.is_empty() {
            write!(f, "{unit}")?;
        } else {
            write!(f, "(")?;
            for (j, l) in g.iter().enumerate() {
                if j > 0 {
                    write!(f, " {inner} ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, ")")?;
        }
    }
    Ok(())
}

/// A formula in conjunctive normal form (used by the exact #SAT oracle).
///
/// The empty CNF denotes ⊤; a CNF containing an empty clause denotes ⊥.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "RawCnf")]
pub struct Cnf {
    clauses: Vec<Vec<Lit>>,
}

/// Deserialization shadow: re-normalizes every clause through
/// [`Cnf::push_clause`].
#[derive(Deserialize)]
struct RawCnf {
    clauses: Vec<Vec<Lit>>,
}

impl From<RawCnf> for Cnf {
    fn from(raw: RawCnf) -> Self {
        Cnf::from_clauses(raw.clauses)
    }
}

impl Cnf {
    pub fn new() -> Self {
        Cnf {
            clauses: Vec::new(),
        }
    }

    pub fn from_clauses<I, C>(clauses: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: IntoIterator<Item = Lit>,
    {
        let mut cnf = Cnf::new();
        for c in clauses {
            cnf.push_clause(c.into_iter().collect());
        }
        cnf
    }

    /// Push a clause after normalization; tautological clauses (x ∨ ¬x)
    /// are dropped.
    pub fn push_clause(&mut self, mut lits: Vec<Lit>) {
        lits.sort();
        lits.dedup();
        for w in lits.windows(2) {
            if w[0].var == w[1].var {
                return; // tautology
            }
        }
        self.clauses.push(lits);
    }

    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| l.eval(assignment)))
    }

    pub fn vars(&self) -> BTreeSet<VarId> {
        self.clauses.iter().flatten().map(|l| l.var).collect()
    }

    pub fn var_bound(&self) -> usize {
        self.clauses
            .iter()
            .flatten()
            .map(|l| l.var as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// Exact model count by brute force (testing oracle only).
    pub fn count_models_brute(&self, num_vars: usize) -> u64 {
        assert!(num_vars <= 26, "brute-force counting limited to 26 vars");
        let mut count = 0u64;
        let mut assignment = vec![false; num_vars];
        for mask in 0u64..(1 << num_vars) {
            for (i, slot) in assignment.iter_mut().enumerate() {
                *slot = (mask >> i) & 1 == 1;
            }
            if self.eval(&assignment) {
                count += 1;
            }
        }
        count
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_normal_form(f, &self.clauses, "&", "|", "true", "false")
    }
}

/// A DNF compiled to per-term bit masks for evaluation over *packed*
/// assignments: variable `v` lives in bit `v % 64` of word `v / 64`, so a
/// term check is one masked AND per word instead of one branch per
/// literal.
///
/// This is the sampler-side bit-parallel representation (the samplers
/// draw one world at a time, so the parallelism is across the *variables*
/// of that world). The world-parallel layout — 64 worlds per word — lives
/// in `qrel-count`'s bitslice kernel, which enumerates worlds rather than
/// sampling them.
#[derive(Debug, Clone)]
pub struct PackedDnf {
    num_vars: usize,
    words: usize,
    /// Per term: (positive-literal mask, negative-literal mask), both
    /// `words` long. Term satisfied on assignment `a` iff for every word
    /// `w`: `a[w] & pos[w] == pos[w]` and `a[w] & neg[w] == 0`.
    terms: Vec<(Vec<u64>, Vec<u64>)>,
}

impl PackedDnf {
    /// Compile a DNF over `num_vars` variables (must cover
    /// `dnf.var_bound()`).
    pub fn new(dnf: &Dnf, num_vars: usize) -> Self {
        PackedDnf::from_terms(dnf.terms(), num_vars)
    }

    /// Compile raw terms; each term must be consistent (no `x ∧ ¬x`).
    pub fn from_terms(terms: &[Vec<Lit>], num_vars: usize) -> Self {
        let words = num_vars.div_ceil(64).max(1);
        let packed = terms
            .iter()
            .map(|t| {
                let mut pos = vec![0u64; words];
                let mut neg = vec![0u64; words];
                for l in t {
                    let v = l.var as usize;
                    assert!(v < num_vars, "literal variable out of range");
                    let mask = if l.positive { &mut pos } else { &mut neg };
                    mask[v / 64] |= 1u64 << (v % 64);
                }
                (pos, neg)
            })
            .collect();
        PackedDnf {
            num_vars,
            words,
            terms: packed,
        }
    }

    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Words per packed assignment — size the buffer as `vec![0u64; n]`.
    pub fn num_words(&self) -> usize {
        self.words
    }

    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Set variable `var` in a packed assignment.
    #[inline]
    pub fn set_bit(assignment: &mut [u64], var: usize, value: bool) {
        let bit = 1u64 << (var % 64);
        if value {
            assignment[var / 64] |= bit;
        } else {
            assignment[var / 64] &= !bit;
        }
    }

    /// Read variable `var` from a packed assignment.
    #[inline]
    pub fn get_bit(assignment: &[u64], var: usize) -> bool {
        assignment[var / 64] >> (var % 64) & 1 == 1
    }

    /// Index of the first satisfied term, mirroring
    /// `terms.iter().position(|t| t.iter().all(|l| l.eval(a)))` on the
    /// unpacked form.
    pub fn first_satisfied(&self, assignment: &[u64]) -> Option<usize> {
        debug_assert_eq!(assignment.len(), self.words);
        self.terms.iter().position(|(pos, neg)| {
            pos.iter()
                .zip(neg.iter())
                .zip(assignment.iter())
                .all(|((&p, &n), &a)| a & p == p && a & n == 0)
        })
    }

    /// Whether any term is satisfied.
    pub fn eval_words(&self, assignment: &[u64]) -> bool {
        self.first_satisfied(assignment).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atom_table_interning() {
        let mut t = AtomTable::new();
        let a = t.intern("S(1)");
        let b = t.intern("S(2)");
        let a2 = t.intern("S(1)");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.name(a), "S(1)");
        assert_eq!(t.lookup("S(2)"), Some(b));
        assert_eq!(t.lookup("S(3)"), None);
        let f1 = t.fresh("Y");
        let f2 = t.fresh("Y");
        assert_ne!(f1, f2);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn prop_eval() {
        // (x0 & !x1) | x2
        let f = PropFormula::or([
            PropFormula::and([PropFormula::var(0), PropFormula::not(PropFormula::var(1))]),
            PropFormula::var(2),
        ]);
        assert!(f.eval(&[true, false, false]));
        assert!(!f.eval(&[true, true, false]));
        assert!(f.eval(&[false, true, true]));
        assert_eq!(f.vars().len(), 3);
    }

    #[test]
    fn dnf_conversion_matches_semantics() {
        // !(x0 & (x1 | !x2))
        let f = PropFormula::not(PropFormula::and([
            PropFormula::var(0),
            PropFormula::or([PropFormula::var(1), PropFormula::not(PropFormula::var(2))]),
        ]));
        let dnf = f.to_dnf(100).unwrap();
        for mask in 0u8..8 {
            let a = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
            assert_eq!(dnf.eval(&a), f.eval(&a), "mask {mask}");
        }
    }

    #[test]
    fn dnf_conversion_respects_limit() {
        // CNF with n clauses of 2 vars each → 2^n DNF terms.
        let n = 12;
        let f = PropFormula::and(
            (0..n).map(|i| PropFormula::or([PropFormula::var(2 * i), PropFormula::var(2 * i + 1)])),
        );
        assert!(f.to_dnf(100).is_none());
        assert!(f.to_dnf(1 << n).is_some());
    }

    #[test]
    fn inconsistent_terms_dropped() {
        let mut d = Dnf::new();
        d.push_term_checked(vec![Lit::pos(0), Lit::neg(0)]);
        assert!(d.is_false());
        d.push_term_checked(vec![Lit::pos(1), Lit::pos(1)]);
        assert_eq!(d.terms()[0], vec![Lit::pos(1)]);
    }

    #[test]
    fn dnf_width_and_count() {
        let d = Dnf::from_terms([vec![Lit::pos(0), Lit::pos(1)], vec![Lit::neg(2)]]);
        assert_eq!(d.width(), 2);
        // Models over 3 vars: (x0&x1): 2, (!x2): 4, overlap (x0&x1&!x2): 1 → 5
        assert_eq!(d.count_models_brute(3), 5);
    }

    #[test]
    fn dnf_simplify_subsumption() {
        let mut d = Dnf::from_terms([
            vec![Lit::pos(0), Lit::pos(1)],
            vec![Lit::pos(0)],
            vec![Lit::pos(0), Lit::pos(1)],
        ]);
        d.simplify();
        assert_eq!(d.num_terms(), 1);
        assert_eq!(d.terms()[0], vec![Lit::pos(0)]);
    }

    #[test]
    fn empty_forms() {
        let d = Dnf::new();
        assert!(d.is_false());
        assert!(!d.eval(&[true; 4]));
        let mut d2 = Dnf::new();
        d2.push_term_checked(vec![]);
        assert!(d2.is_trivially_true());
        assert!(d2.eval(&[false; 4]));

        let c = Cnf::new();
        assert!(c.eval(&[false; 4]));
        let mut c2 = Cnf::new();
        c2.push_clause(vec![]);
        assert!(!c2.eval(&[true; 4]));
    }

    #[test]
    fn cnf_tautology_dropped() {
        let mut c = Cnf::new();
        c.push_clause(vec![Lit::pos(0), Lit::neg(0)]);
        assert_eq!(c.num_clauses(), 0);
    }

    #[test]
    fn cnf_count_models() {
        // (x0 | x1) & (!x0 | x2) over 3 vars.
        let c = Cnf::from_clauses([
            vec![Lit::pos(0), Lit::pos(1)],
            vec![Lit::neg(0), Lit::pos(2)],
        ]);
        let mut expected = 0;
        for mask in 0u8..8 {
            let a = [(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0];
            if (a[0] || a[1]) && (!a[0] || a[2]) {
                expected += 1;
            }
        }
        assert_eq!(c.count_models_brute(3), expected);
    }

    #[test]
    fn display_shapes() {
        let d = Dnf::from_terms([vec![Lit::pos(0), Lit::neg(1)]]);
        assert_eq!(d.to_string(), "(x0 & !x1)");
        let c = Cnf::from_clauses([vec![Lit::pos(0), Lit::neg(1)]]);
        assert_eq!(c.to_string(), "(x0 | !x1)");
        assert_eq!(Dnf::new().to_string(), "false");
        assert_eq!(Cnf::new().to_string(), "true");
    }

    #[test]
    fn packed_dnf_matches_unpacked_eval() {
        // Spans a word boundary: variables 0..70.
        let num_vars = 70;
        let d = Dnf::from_terms([
            vec![Lit::pos(0), Lit::neg(63)],
            vec![Lit::pos(64), Lit::pos(69)],
            vec![Lit::neg(1), Lit::pos(65), Lit::neg(68)],
        ]);
        let p = PackedDnf::new(&d, num_vars);
        assert_eq!(p.num_words(), 2);
        // Deterministic pseudo-random sweep over assignments.
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..500 {
            let mut plain = vec![false; num_vars];
            let mut packed = vec![0u64; p.num_words()];
            for (v, slot) in plain.iter_mut().enumerate() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let bit = state >> 63 == 1;
                *slot = bit;
                PackedDnf::set_bit(&mut packed, v, bit);
                assert_eq!(PackedDnf::get_bit(&packed, v), bit);
            }
            assert_eq!(p.eval_words(&packed), d.eval(&plain));
            assert_eq!(
                p.first_satisfied(&packed),
                d.terms()
                    .iter()
                    .position(|t| t.iter().all(|l| l.eval(&plain)))
            );
        }
    }

    #[test]
    fn packed_dnf_trivial_shapes() {
        let empty = PackedDnf::new(&Dnf::new(), 0);
        assert_eq!(empty.num_words(), 1);
        assert!(!empty.eval_words(&[0]));
        let top = PackedDnf::new(&Dnf::from_terms([Vec::<Lit>::new()]), 0);
        assert_eq!(top.first_satisfied(&[0]), Some(0));
    }
}
