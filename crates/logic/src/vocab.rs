//! Relational vocabularies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A relation symbol: a name together with an arity.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RelationSymbol {
    name: String,
    arity: usize,
}

impl RelationSymbol {
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        RelationSymbol {
            name: name.into(),
            arity,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn arity(&self) -> usize {
        self.arity
    }
}

impl fmt::Display for RelationSymbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

/// A finite relational vocabulary (signature): an ordered set of relation
/// symbols with unique names. The order is significant — it fixes the
/// enumeration order of atomic facts everywhere in the system, which keeps
/// world enumeration, sampling and fact indexing consistent.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(try_from = "RawVocabulary")]
pub struct Vocabulary {
    symbols: Vec<RelationSymbol>,
}

/// Deserialization shadow: rejects duplicate relation names (lookups by
/// name would silently resolve to the first occurrence).
#[derive(Deserialize)]
struct RawVocabulary {
    symbols: Vec<RelationSymbol>,
}

impl TryFrom<RawVocabulary> for Vocabulary {
    type Error = String;

    fn try_from(raw: RawVocabulary) -> Result<Self, String> {
        let mut names: Vec<&str> = raw.symbols.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != raw.symbols.len() {
            return Err("duplicate relation names in vocabulary".to_string());
        }
        Ok(Vocabulary {
            symbols: raw.symbols,
        })
    }
}

impl Vocabulary {
    pub fn new() -> Self {
        Vocabulary {
            symbols: Vec::new(),
        }
    }

    /// Build from `(name, arity)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate relation names.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, usize)>,
        S: Into<String>,
    {
        let mut v = Vocabulary::new();
        for (name, arity) in pairs {
            v.add(RelationSymbol::new(name, arity));
        }
        v
    }

    /// Add a symbol.
    ///
    /// # Panics
    /// Panics if a symbol with the same name already exists.
    pub fn add(&mut self, sym: RelationSymbol) {
        assert!(
            self.get(sym.name()).is_none(),
            "duplicate relation symbol {:?}",
            sym.name()
        );
        self.symbols.push(sym);
    }

    /// Look up a symbol by name.
    pub fn get(&self, name: &str) -> Option<&RelationSymbol> {
        self.symbols.iter().find(|s| s.name() == name)
    }

    /// Index of a symbol by name (position in declaration order).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.symbols.iter().position(|s| s.name() == name)
    }

    /// Symbols in declaration order.
    pub fn symbols(&self) -> &[RelationSymbol] {
        &self.symbols
    }

    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Total number of atomic facts over a universe of size `n`:
    /// `Σ_R n^arity(R)`. This is the dimension of the possible-world space.
    pub fn fact_count(&self, n: usize) -> usize {
        self.symbols
            .iter()
            .map(|s| {
                n.checked_pow(s.arity() as u32)
                    .expect("fact count overflow")
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let v = Vocabulary::from_pairs([("E", 2), ("S", 1)]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get("E").unwrap().arity(), 2);
        assert_eq!(v.index_of("S"), Some(1));
        assert_eq!(v.get("T"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_name_panics() {
        Vocabulary::from_pairs([("E", 2), ("E", 1)]);
    }

    #[test]
    fn fact_count() {
        let v = Vocabulary::from_pairs([("E", 2), ("S", 1), ("C", 0)]);
        assert_eq!(v.fact_count(4), 16 + 4 + 1);
        assert_eq!(v.fact_count(0), 1);
    }

    #[test]
    fn display() {
        assert_eq!(RelationSymbol::new("E", 2).to_string(), "E/2");
    }
}
