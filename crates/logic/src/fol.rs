//! First-order (and second-order) formulas over relational vocabularies.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A first-order term: a variable or a named constant.
///
/// Constants are resolved to domain elements by the evaluator; keeping them
/// symbolic here keeps the logic crate independent of the storage layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Term {
    Var(String),
    Const(String),
}

impl Term {
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    pub fn cnst(name: impl Into<String>) -> Term {
        Term::Const(name.into())
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "'{c}'"),
        }
    }
}

/// A formula of relational first-order logic, extended with second-order
/// quantification over relation variables (Section 4 of the paper covers
/// all second-order queries).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Formula {
    /// The constant ⊤.
    True,
    /// The constant ⊥.
    False,
    /// `R(t₁, …, t_k)`. The relation may be a vocabulary symbol or a
    /// second-order variable bound by an enclosing [`Formula::ExistsRel`].
    Atom {
        rel: String,
        args: Vec<Term>,
    },
    /// `t₁ = t₂`.
    Eq(Term, Term),
    Not(Box<Formula>),
    /// N-ary conjunction (empty = ⊤).
    And(Vec<Formula>),
    /// N-ary disjunction (empty = ⊥).
    Or(Vec<Formula>),
    /// `∃x₁…x_m φ`.
    Exists(Vec<String>, Box<Formula>),
    /// `∀x₁…x_m φ`.
    Forall(Vec<String>, Box<Formula>),
    /// Second-order `∃X φ` where `X` is a relation variable of given arity.
    ExistsRel(String, usize, Box<Formula>),
    /// Second-order `∀X φ`.
    ForallRel(String, usize, Box<Formula>),
}

/// Syntactic fragments with distinct reliability complexity in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fragment {
    /// No quantifiers at all — reliability in PTIME (Prop 3.1).
    QuantifierFree,
    /// `∃x̄ (α₁ ∧ … ∧ α_ℓ)`, αᵢ atomic — reliability already #P-hard
    /// (Prop 3.2), probability admits an FPTRAS (Thm 5.4).
    Conjunctive,
    /// Existential: in NNF, only ∃ quantifiers — FPTRAS for ν(ψ) (Thm 5.4).
    Existential,
    /// Universal: in NNF, only ∀ quantifiers — dual of existential (Cor 5.5).
    Universal,
    /// General first-order — FP^#P (Thm 4.2).
    FirstOrder,
    /// Second-order — still FP^#P (Thm 4.2).
    SecondOrder,
}

impl Formula {
    // ---- constructors -------------------------------------------------

    pub fn atom<S: Into<String>>(rel: S, args: impl IntoIterator<Item = Term>) -> Formula {
        Formula::Atom {
            rel: rel.into(),
            args: args.into_iter().collect(),
        }
    }

    pub fn eq(a: Term, b: Term) -> Formula {
        Formula::Eq(a, b)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    pub fn and(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let v: Vec<_> = fs.into_iter().collect();
        match v.len() {
            0 => Formula::True,
            1 => v.into_iter().next().unwrap(),
            _ => Formula::And(v),
        }
    }

    pub fn or(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let v: Vec<_> = fs.into_iter().collect();
        match v.len() {
            0 => Formula::False,
            1 => v.into_iter().next().unwrap(),
            _ => Formula::Or(v),
        }
    }

    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::or([Formula::not(a), b])
    }

    pub fn iff(a: Formula, b: Formula) -> Formula {
        Formula::or([
            Formula::and([a.clone(), b.clone()]),
            Formula::and([Formula::not(a), Formula::not(b)]),
        ])
    }

    pub fn exists<S: Into<String>>(vars: impl IntoIterator<Item = S>, f: Formula) -> Formula {
        let vs: Vec<String> = vars.into_iter().map(Into::into).collect();
        if vs.is_empty() {
            f
        } else {
            Formula::Exists(vs, Box::new(f))
        }
    }

    pub fn forall<S: Into<String>>(vars: impl IntoIterator<Item = S>, f: Formula) -> Formula {
        let vs: Vec<String> = vars.into_iter().map(Into::into).collect();
        if vs.is_empty() {
            f
        } else {
            Formula::Forall(vs, Box::new(f))
        }
    }

    // ---- analysis ------------------------------------------------------

    /// Free first-order variables, in sorted order (deterministic).
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut Vec::new(), &mut out);
        out.into_iter().collect()
    }

    fn collect_free_vars(&self, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom { args, .. } => {
                for t in args {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Eq(a, b) => {
                for t in [a, b] {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Not(f) => f.collect_free_vars(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free_vars(bound, out);
                }
            }
            Formula::Exists(vs, f) | Formula::Forall(vs, f) => {
                let depth = bound.len();
                bound.extend(vs.iter().cloned());
                f.collect_free_vars(bound, out);
                bound.truncate(depth);
            }
            Formula::ExistsRel(_, _, f) | Formula::ForallRel(_, _, f) => {
                f.collect_free_vars(bound, out);
            }
        }
    }

    /// Relation symbols used, excluding bound second-order variables.
    pub fn relation_symbols(&self) -> Vec<(String, usize)> {
        let mut out = BTreeSet::new();
        self.collect_rels(&mut Vec::new(), &mut out);
        out.into_iter().collect()
    }

    fn collect_rels(&self, bound: &mut Vec<String>, out: &mut BTreeSet<(String, usize)>) {
        match self {
            Formula::Atom { rel, args } if !bound.contains(rel) => {
                out.insert((rel.clone(), args.len()));
            }
            Formula::Not(f) => f.collect_rels(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_rels(bound, out);
                }
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.collect_rels(bound, out),
            Formula::ExistsRel(x, _, f) | Formula::ForallRel(x, _, f) => {
                bound.push(x.clone());
                f.collect_rels(bound, out);
                bound.pop();
            }
            _ => {}
        }
    }

    /// True iff the formula contains no quantifiers (first- or second-order).
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(..) => true,
            Formula::Not(f) => f.is_quantifier_free(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|f| f.is_quantifier_free()),
            _ => false,
        }
    }

    /// True iff the formula is second-order (uses relation quantifiers).
    pub fn is_second_order(&self) -> bool {
        match self {
            Formula::ExistsRel(..) | Formula::ForallRel(..) => true,
            Formula::Not(f) => f.is_second_order(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().any(|f| f.is_second_order()),
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.is_second_order(),
            _ => false,
        }
    }

    /// True iff the formula has the shape `∃x̄ (α₁ ∧ … ∧ α_ℓ)` with each
    /// `αᵢ` a relational atom or equality (the paper's conjunctive queries).
    pub fn is_conjunctive(&self) -> bool {
        fn matrix_is_conj_of_atoms(f: &Formula) -> bool {
            match f {
                Formula::Atom { .. } | Formula::Eq(..) | Formula::True => true,
                Formula::And(fs) => fs.iter().all(matrix_is_conj_of_atoms),
                _ => false,
            }
        }
        let mut cur = self;
        while let Formula::Exists(_, inner) = cur {
            cur = inner;
        }
        matrix_is_conj_of_atoms(cur)
    }

    /// Classify into the finest matching [`Fragment`].
    pub fn fragment(&self) -> Fragment {
        if self.is_second_order() {
            return Fragment::SecondOrder;
        }
        if self.is_quantifier_free() {
            return Fragment::QuantifierFree;
        }
        if self.is_conjunctive() {
            return Fragment::Conjunctive;
        }
        let nnf = self.to_nnf();
        let (has_e, has_a) = nnf.quantifier_kinds();
        match (has_e, has_a) {
            (true, false) => Fragment::Existential,
            (false, true) => Fragment::Universal,
            _ => Fragment::FirstOrder,
        }
    }

    fn quantifier_kinds(&self) -> (bool, bool) {
        match self {
            Formula::Exists(_, f) => {
                let (e, a) = f.quantifier_kinds();
                (true | e, a)
            }
            Formula::Forall(_, f) => {
                let (e, a) = f.quantifier_kinds();
                (e, true | a)
            }
            Formula::Not(f) => f.quantifier_kinds(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().fold((false, false), |(e, a), f| {
                let (e2, a2) = f.quantifier_kinds();
                (e || e2, a || a2)
            }),
            Formula::ExistsRel(_, _, f) | Formula::ForallRel(_, _, f) => f.quantifier_kinds(),
            _ => (false, false),
        }
    }

    // ---- transformations ------------------------------------------------

    /// Negation normal form: negation only on atoms, equalities and ⊤/⊥
    /// are rewritten away.
    pub fn to_nnf(&self) -> Formula {
        self.nnf_inner(false)
    }

    fn nnf_inner(&self, negate: bool) -> Formula {
        match self {
            Formula::True => {
                if negate {
                    Formula::False
                } else {
                    Formula::True
                }
            }
            Formula::False => {
                if negate {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            Formula::Atom { .. } | Formula::Eq(..) => {
                if negate {
                    Formula::not(self.clone())
                } else {
                    self.clone()
                }
            }
            Formula::Not(f) => f.nnf_inner(!negate),
            Formula::And(fs) => {
                let inner: Vec<_> = fs.iter().map(|f| f.nnf_inner(negate)).collect();
                if negate {
                    Formula::or(inner)
                } else {
                    Formula::and(inner)
                }
            }
            Formula::Or(fs) => {
                let inner: Vec<_> = fs.iter().map(|f| f.nnf_inner(negate)).collect();
                if negate {
                    Formula::and(inner)
                } else {
                    Formula::or(inner)
                }
            }
            Formula::Exists(vs, f) => {
                let inner = f.nnf_inner(negate);
                if negate {
                    Formula::Forall(vs.clone(), Box::new(inner))
                } else {
                    Formula::Exists(vs.clone(), Box::new(inner))
                }
            }
            Formula::Forall(vs, f) => {
                let inner = f.nnf_inner(negate);
                if negate {
                    Formula::Exists(vs.clone(), Box::new(inner))
                } else {
                    Formula::Forall(vs.clone(), Box::new(inner))
                }
            }
            Formula::ExistsRel(x, k, f) => {
                let inner = f.nnf_inner(negate);
                if negate {
                    Formula::ForallRel(x.clone(), *k, Box::new(inner))
                } else {
                    Formula::ExistsRel(x.clone(), *k, Box::new(inner))
                }
            }
            Formula::ForallRel(x, k, f) => {
                let inner = f.nnf_inner(negate);
                if negate {
                    Formula::ExistsRel(x.clone(), *k, Box::new(inner))
                } else {
                    Formula::ForallRel(x.clone(), *k, Box::new(inner))
                }
            }
        }
    }

    /// Substitute free occurrences of variable `var` by `replacement`.
    /// Quantifiers binding `var` shadow it (no capture handling is needed
    /// because replacements in this codebase are always constants).
    pub fn substitute(&self, var: &str, replacement: &Term) -> Formula {
        debug_assert!(
            !matches!(replacement, Term::Var(_)),
            "substitute only supports constant replacements (no capture-avoidance)"
        );
        let sub_term = |t: &Term| -> Term {
            match t {
                Term::Var(v) if v == var => replacement.clone(),
                other => other.clone(),
            }
        };
        match self {
            Formula::True | Formula::False => self.clone(),
            Formula::Atom { rel, args } => Formula::Atom {
                rel: rel.clone(),
                args: args.iter().map(sub_term).collect(),
            },
            Formula::Eq(a, b) => Formula::Eq(sub_term(a), sub_term(b)),
            Formula::Not(f) => Formula::not(f.substitute(var, replacement)),
            Formula::And(fs) => {
                Formula::And(fs.iter().map(|f| f.substitute(var, replacement)).collect())
            }
            Formula::Or(fs) => {
                Formula::Or(fs.iter().map(|f| f.substitute(var, replacement)).collect())
            }
            Formula::Exists(vs, f) => {
                if vs.iter().any(|v| v == var) {
                    self.clone()
                } else {
                    Formula::Exists(vs.clone(), Box::new(f.substitute(var, replacement)))
                }
            }
            Formula::Forall(vs, f) => {
                if vs.iter().any(|v| v == var) {
                    self.clone()
                } else {
                    Formula::Forall(vs.clone(), Box::new(f.substitute(var, replacement)))
                }
            }
            Formula::ExistsRel(x, k, f) => {
                Formula::ExistsRel(x.clone(), *k, Box::new(f.substitute(var, replacement)))
            }
            Formula::ForallRel(x, k, f) => {
                Formula::ForallRel(x.clone(), *k, Box::new(f.substitute(var, replacement)))
            }
        }
    }

    /// True iff the formula has no free first-order variables.
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom { rel, args } => {
                write!(f, "{rel}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Formula::Eq(a, b) => write!(f, "{a} = {b}"),
            Formula::Not(inner) => write!(f, "!({inner})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            // Always parenthesized: a quantifier's body extends as far
            // right as possible in the grammar, so a bare quantified
            // formula printed as an operand of ∧/∨ would capture its
            // siblings on reparse.
            Formula::Exists(vs, inner) => write!(f, "(exists {}. {inner})", vs.join(" ")),
            Formula::Forall(vs, inner) => write!(f, "(forall {}. {inner})", vs.join(" ")),
            Formula::ExistsRel(x, k, inner) => write!(f, "existsrel {x}/{k}. {inner}"),
            Formula::ForallRel(x, k, inner) => write!(f, "forallrel {x}/{k}. {inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Term {
        Term::var(s)
    }

    /// The paper's Prop 3.2 query: ∃x∃y∃z (Lxy ∧ Rxz ∧ Sy ∧ Sz).
    fn mon2sat_query() -> Formula {
        Formula::exists(
            ["x", "y", "z"],
            Formula::and([
                Formula::atom("L", [v("x"), v("y")]),
                Formula::atom("R", [v("x"), v("z")]),
                Formula::atom("S", [v("y")]),
                Formula::atom("S", [v("z")]),
            ]),
        )
    }

    #[test]
    fn free_vars() {
        let f = Formula::exists(
            ["x"],
            Formula::and([
                Formula::atom("E", [v("x"), v("y")]),
                Formula::eq(v("z"), Term::cnst("a")),
            ]),
        );
        assert_eq!(f.free_vars(), vec!["y".to_string(), "z".to_string()]);
        assert!(!f.is_sentence());
        assert!(mon2sat_query().is_sentence());
    }

    #[test]
    fn fragments() {
        let qf = Formula::and([
            Formula::atom("S", [v("x")]),
            Formula::not(Formula::atom("T", [v("x")])),
        ]);
        assert_eq!(qf.fragment(), Fragment::QuantifierFree);

        assert_eq!(mon2sat_query().fragment(), Fragment::Conjunctive);

        let ex = Formula::exists(
            ["x"],
            Formula::or([
                Formula::atom("S", [v("x")]),
                Formula::not(Formula::atom("T", [v("x")])),
            ]),
        );
        assert_eq!(ex.fragment(), Fragment::Existential);

        // Negated existential is universal.
        assert_eq!(Formula::not(ex.clone()).fragment(), Fragment::Universal);

        let mixed = Formula::forall(
            ["x"],
            Formula::exists(["y"], Formula::atom("E", [v("x"), v("y")])),
        );
        assert_eq!(mixed.fragment(), Fragment::FirstOrder);

        let so = Formula::ExistsRel(
            "X".into(),
            1,
            Box::new(Formula::forall(["x"], Formula::atom("X", [v("x")]))),
        );
        assert_eq!(so.fragment(), Fragment::SecondOrder);
    }

    #[test]
    fn conjunctive_rejects_disjunction() {
        let f = Formula::exists(
            ["x"],
            Formula::or([Formula::atom("S", [v("x")]), Formula::atom("T", [v("x")])]),
        );
        assert!(!f.is_conjunctive());
        assert_eq!(f.fragment(), Fragment::Existential);
    }

    #[test]
    fn nnf_pushes_negation() {
        let f = Formula::not(Formula::exists(
            ["x"],
            Formula::and([
                Formula::atom("S", [v("x")]),
                Formula::not(Formula::atom("T", [v("x")])),
            ]),
        ));
        let nnf = f.to_nnf();
        assert_eq!(
            nnf,
            Formula::forall(
                ["x"],
                Formula::or([
                    Formula::not(Formula::atom("S", [v("x")])),
                    Formula::atom("T", [v("x")]),
                ])
            )
        );
        // Double negation cancels.
        assert_eq!(
            Formula::not(Formula::not(Formula::atom("S", [v("x")]))).to_nnf(),
            Formula::atom("S", [v("x")])
        );
    }

    #[test]
    fn substitution_respects_shadowing() {
        let f = Formula::and([
            Formula::atom("S", [v("x")]),
            Formula::exists(["x"], Formula::atom("T", [v("x")])),
        ]);
        let g = f.substitute("x", &Term::cnst("a"));
        assert_eq!(
            g,
            Formula::And(vec![
                Formula::atom("S", [Term::cnst("a")]),
                Formula::exists(["x"], Formula::atom("T", [v("x")])),
            ])
        );
    }

    #[test]
    fn relation_symbols_skip_bound_so_vars() {
        let so = Formula::ExistsRel(
            "X".into(),
            1,
            Box::new(Formula::and([
                Formula::atom("X", [v("x")]),
                Formula::atom("E", [v("x"), v("y")]),
            ])),
        );
        assert_eq!(so.relation_symbols(), vec![("E".to_string(), 2)]);
    }

    #[test]
    fn smart_constructors_collapse() {
        assert_eq!(Formula::and(Vec::<Formula>::new()), Formula::True);
        assert_eq!(Formula::or(Vec::<Formula>::new()), Formula::False);
        let a = Formula::atom("S", [v("x")]);
        assert_eq!(Formula::and([a.clone()]), a);
        assert_eq!(Formula::exists(Vec::<String>::new(), a.clone()), a);
    }

    #[test]
    fn display_roundtrips_shape() {
        let q = mon2sat_query();
        let s = q.to_string();
        assert!(s.contains("exists x y z"));
        assert!(s.contains("L(x, y)"));
    }
}
