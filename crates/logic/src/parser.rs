//! Recursive-descent parser for a concrete first-order query syntax.
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! formula   := quantified
//! quantified:= ("exists" | "forall") ident+ "." quantified | iff
//! iff       := implies ("<->" implies)*
//! implies   := or ("->" or)*          (right-associative)
//! or        := and ("|" and)*
//! and       := unary ("&" unary)*
//! unary     := "!" unary | atom
//! atom      := "true" | "false" | "(" formula ")"
//!            | IDENT "(" term ("," term)* ")" | IDENT "(" ")"
//!            | term ("=" | "!=") term
//! term      := IDENT            (variable)
//!            | "'" IDENT "'"    (constant)
//!            | NUMBER           (constant)
//! ```
//!
//! Examples:
//!
//! ```
//! use qrel_logic::parser::parse_formula;
//! // The paper's Prop 3.2 query:
//! let q = parse_formula("exists x y z. L(x,y) & R(x,z) & S(y) & S(z)").unwrap();
//! assert!(q.is_conjunctive());
//! // The non-4-colouring query of Lemma 5.9:
//! let c = parse_formula(
//!     "exists x y. E(x,y) & (R1(x) <-> R1(y)) & (R2(x) <-> R2(y))").unwrap();
//! assert!(c.is_sentence());
//! ```

use crate::fol::{Formula, Term};
use std::fmt;

/// Error produced by [`parse_formula`], with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(String),
    QuotedIdent(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Amp,
    Pipe,
    Bang,
    Eq,
    Neq,
    Arrow,
    DArrow,
    Exists,
    Forall,
    True,
    False,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn tokenize(src: &'a str) -> Result<Vec<(usize, Token)>, ParseError> {
        let mut lx = Lexer { src, pos: 0 };
        let mut out = Vec::new();
        while let Some((off, tok)) = lx.next_token()? {
            out.push((off, tok));
        }
        Ok(out)
    }

    fn peek_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek_char()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn next_token(&mut self) -> Result<Option<(usize, Token)>, ParseError> {
        while let Some(c) = self.peek_char() {
            if c.is_whitespace() {
                self.bump();
            } else {
                break;
            }
        }
        let start = self.pos;
        let Some(c) = self.peek_char() else {
            return Ok(None);
        };
        let tok = match c {
            '(' => {
                self.bump();
                Token::LParen
            }
            ')' => {
                self.bump();
                Token::RParen
            }
            ',' => {
                self.bump();
                Token::Comma
            }
            '.' => {
                self.bump();
                Token::Dot
            }
            '&' => {
                self.bump();
                Token::Amp
            }
            '|' => {
                self.bump();
                Token::Pipe
            }
            '!' => {
                self.bump();
                if self.peek_char() == Some('=') {
                    self.bump();
                    Token::Neq
                } else {
                    Token::Bang
                }
            }
            '=' => {
                self.bump();
                Token::Eq
            }
            '-' => {
                self.bump();
                if self.bump() == Some('>') {
                    Token::Arrow
                } else {
                    return Err(ParseError {
                        offset: start,
                        message: "expected '->'".into(),
                    });
                }
            }
            '<' => {
                self.bump();
                if self.bump() == Some('-') && self.bump() == Some('>') {
                    Token::DArrow
                } else {
                    return Err(ParseError {
                        offset: start,
                        message: "expected '<->'".into(),
                    });
                }
            }
            '\'' => {
                self.bump();
                let mut name = String::new();
                loop {
                    match self.bump() {
                        Some('\'') => break,
                        Some(ch) => name.push(ch),
                        None => {
                            return Err(ParseError {
                                offset: start,
                                message: "unterminated quoted constant".into(),
                            })
                        }
                    }
                }
                Token::QuotedIdent(name)
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(ch) = self.peek_char() {
                    if ch.is_ascii_digit() {
                        s.push(ch);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Token::Number(s)
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(ch) = self.peek_char() {
                    if ch.is_alphanumeric() || ch == '_' {
                        s.push(ch);
                        self.bump();
                    } else {
                        break;
                    }
                }
                match s.as_str() {
                    "exists" => Token::Exists,
                    "forall" => Token::Forall,
                    "true" => Token::True,
                    "false" => Token::False,
                    _ => Token::Ident(s),
                }
            }
            other => {
                return Err(ParseError {
                    offset: start,
                    message: format!("unexpected character {other:?}"),
                })
            }
        };
        Ok(Some((start, tok)))
    }
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    input_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(o, _)| *o)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError {
            offset: self.offset(),
            message,
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        self.quantified()
    }

    fn quantified(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Token::Exists) | Some(Token::Forall) => {
                let is_exists = matches!(self.bump(), Some(Token::Exists));
                let mut vars = Vec::new();
                while let Some(Token::Ident(_)) = self.peek() {
                    if let Some(Token::Ident(v)) = self.bump() {
                        vars.push(v);
                    }
                }
                if vars.is_empty() {
                    return Err(self.err("expected at least one variable after quantifier".into()));
                }
                self.expect(&Token::Dot, "'.' after quantified variables")?;
                let body = self.quantified()?;
                Ok(if is_exists {
                    Formula::exists(vars, body)
                } else {
                    Formula::forall(vars, body)
                })
            }
            _ => self.iff(),
        }
    }

    fn iff(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.implies()?;
        while self.peek() == Some(&Token::DArrow) {
            self.bump();
            let rhs = self.implies()?;
            lhs = Formula::iff(lhs, rhs);
        }
        Ok(lhs)
    }

    fn implies(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.or()?;
        if self.peek() == Some(&Token::Arrow) {
            self.bump();
            let rhs = self.implies()?; // right-assoc
            Ok(Formula::implies(lhs, rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.and()?];
        while self.peek() == Some(&Token::Pipe) {
            self.bump();
            parts.push(self.and()?);
        }
        Ok(Formula::or(parts))
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.unary()?];
        while self.peek() == Some(&Token::Amp) {
            self.bump();
            parts.push(self.unary()?);
        }
        Ok(Formula::and(parts))
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Token::Bang) => {
                self.bump();
                Ok(Formula::not(self.unary()?))
            }
            // A quantifier may start a conjunct/disjunct directly; its body
            // extends as far right as possible.
            Some(Token::Exists) | Some(Token::Forall) => self.quantified(),
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Formula, ParseError> {
        match self.peek().cloned() {
            Some(Token::True) => {
                self.bump();
                Ok(Formula::True)
            }
            Some(Token::False) => {
                self.bump();
                Ok(Formula::False)
            }
            Some(Token::LParen) => {
                self.bump();
                let f = self.formula()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(f)
            }
            Some(Token::Ident(name)) => {
                self.bump();
                if self.peek() == Some(&Token::LParen) {
                    // Relational atom.
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.term()?);
                            if self.peek() == Some(&Token::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen, "')' closing atom")?;
                    Ok(Formula::Atom { rel: name, args })
                } else {
                    // Bare identifier must start an (in)equality.
                    self.equality_tail(Term::Var(name))
                }
            }
            Some(Token::Number(n)) => {
                self.bump();
                self.equality_tail(Term::Const(n))
            }
            Some(Token::QuotedIdent(n)) => {
                self.bump();
                self.equality_tail(Term::Const(n))
            }
            _ => Err(self.err("expected a formula".into())),
        }
    }

    fn equality_tail(&mut self, lhs: Term) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Token::Eq) => {
                self.bump();
                let rhs = self.term()?;
                Ok(Formula::Eq(lhs, rhs))
            }
            Some(Token::Neq) => {
                self.bump();
                let rhs = self.term()?;
                Ok(Formula::not(Formula::Eq(lhs, rhs)))
            }
            _ => Err(self.err("expected '=' or '!=' after term".into())),
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Token::Ident(v)) => Ok(Term::Var(v)),
            Some(Token::Number(n)) => Ok(Term::Const(n)),
            Some(Token::QuotedIdent(n)) => Ok(Term::Const(n)),
            _ => Err(self.err("expected a term".into())),
        }
    }
}

/// Parse a formula from the concrete syntax; see the module docs for the
/// grammar.
pub fn parse_formula(src: &str) -> Result<Formula, ParseError> {
    let tokens = Lexer::tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        input_len: src.len(),
    };
    let f = p.formula()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after formula".into()));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fol::Fragment;

    #[test]
    fn parses_paper_queries() {
        let q = parse_formula("exists x y z. L(x,y) & R(x,z) & S(y) & S(z)").unwrap();
        assert_eq!(q.fragment(), Fragment::Conjunctive);
        assert!(q.is_sentence());

        let c =
            parse_formula("exists x y. E(x,y) & (R1(x) <-> R1(y)) & (R2(x) <-> R2(y))").unwrap();
        assert_eq!(c.fragment(), Fragment::Existential);
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        let f = parse_formula("S(x) | T(x) & U(x)").unwrap();
        assert_eq!(
            f,
            Formula::or([
                Formula::atom("S", [Term::var("x")]),
                Formula::and([
                    Formula::atom("T", [Term::var("x")]),
                    Formula::atom("U", [Term::var("x")]),
                ]),
            ])
        );
    }

    #[test]
    fn negation_and_equality() {
        let f = parse_formula("!S(x) & x != y & x = 'a'").unwrap();
        assert_eq!(
            f,
            Formula::and([
                Formula::not(Formula::atom("S", [Term::var("x")])),
                Formula::not(Formula::eq(Term::var("x"), Term::var("y"))),
                Formula::eq(Term::var("x"), Term::cnst("a")),
            ])
        );
    }

    #[test]
    fn implication_right_assoc() {
        let f = parse_formula("S(x) -> T(x) -> U(x)").unwrap();
        // S -> (T -> U)
        assert_eq!(
            f,
            Formula::implies(
                Formula::atom("S", [Term::var("x")]),
                Formula::implies(
                    Formula::atom("T", [Term::var("x")]),
                    Formula::atom("U", [Term::var("x")]),
                ),
            )
        );
    }

    #[test]
    fn quantifier_nesting() {
        let f = parse_formula("forall x. exists y. E(x,y)").unwrap();
        assert_eq!(
            f,
            Formula::forall(
                ["x"],
                Formula::exists(["y"], Formula::atom("E", [Term::var("x"), Term::var("y")]))
            )
        );
        assert_eq!(f.fragment(), Fragment::FirstOrder);
    }

    #[test]
    fn multi_var_quantifier() {
        let f = parse_formula("exists x y. E(x,y)").unwrap();
        assert_eq!(
            f,
            Formula::exists(
                ["x", "y"],
                Formula::atom("E", [Term::var("x"), Term::var("y")])
            )
        );
    }

    #[test]
    fn numbers_and_nullary_atoms() {
        let f = parse_formula("P() & x = 3").unwrap();
        assert_eq!(
            f,
            Formula::and([
                Formula::atom("P", []),
                Formula::eq(Term::var("x"), Term::cnst("3")),
            ])
        );
    }

    #[test]
    fn constants_true_false() {
        assert_eq!(parse_formula("true").unwrap(), Formula::True);
        assert_eq!(
            parse_formula("false | true").unwrap(),
            Formula::Or(vec![Formula::False, Formula::True])
        );
    }

    #[test]
    fn error_reporting() {
        let e = parse_formula("exists . S(x)").unwrap_err();
        assert!(e.message.contains("variable"));
        let e = parse_formula("S(x) S(y)").unwrap_err();
        assert!(e.message.contains("trailing"));
        let e = parse_formula("S(x").unwrap_err();
        assert!(e.message.contains(")"));
        assert!(parse_formula("").is_err());
        assert!(parse_formula("x").is_err());
        assert!(parse_formula("'abc").is_err());
        assert!(parse_formula("S(x) @ T(y)").is_err());
    }

    #[test]
    fn display_reparse_roundtrip() {
        for src in [
            "exists x y z. L(x,y) & R(x,z) & S(y) & S(z)",
            "forall x. S(x) | !T(x)",
            "exists x. x = 'a' & !(S(x) & T(x))",
        ] {
            let f = parse_formula(src).unwrap();
            let f2 = parse_formula(&f.to_string()).unwrap();
            // Display inserts explicit grouping; semantics (and NNF) agree.
            assert_eq!(f.to_nnf(), f2.to_nnf(), "roundtrip failed for {src}");
        }
    }
}
