//! Prenex normal form.
//!
//! The paper's query classes are prenex-shaped: conjunctive queries are
//! `∃x̄ (α₁ ∧ … ∧ α_ℓ)` and Theorem 5.4's proof starts from
//! `ψ = ∃ȳ φ(ȳ)` with a quantifier-free matrix. This module pulls all
//! first-order quantifiers of an arbitrary formula to the front
//! (renaming bound variables apart to avoid capture), so non-prenex
//! inputs can be normalized into the shapes the fragment checkers and
//! the grounding pipeline expect.

use crate::fol::{Formula, Term};
use std::collections::HashMap;

/// A prenex quantifier: `(is_existential, variable)`.
pub type PrenexQuantifier = (bool, String);

/// The result of prenexing: a quantifier prefix (outermost first) over a
/// quantifier-free matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrenexForm {
    pub prefix: Vec<PrenexQuantifier>,
    pub matrix: Formula,
}

impl PrenexForm {
    /// Reassemble into a single [`Formula`].
    pub fn to_formula(&self) -> Formula {
        let mut f = self.matrix.clone();
        for (is_exists, v) in self.prefix.iter().rev() {
            f = if *is_exists {
                Formula::exists([v.clone()], f)
            } else {
                Formula::forall([v.clone()], f)
            };
        }
        f
    }

    /// True iff every prefix quantifier is existential.
    pub fn is_existential(&self) -> bool {
        self.prefix.iter().all(|(e, _)| *e)
    }

    /// Number of quantifier alternations in the prefix.
    pub fn alternations(&self) -> usize {
        self.prefix.windows(2).filter(|w| w[0].0 != w[1].0).count()
    }
}

/// Errors from prenexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrenexError {
    /// Second-order quantifiers cannot be prenexed by this routine.
    SecondOrder,
}

impl std::fmt::Display for PrenexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrenexError::SecondOrder => {
                write!(f, "prenexing is implemented for first-order formulas only")
            }
        }
    }
}

impl std::error::Error for PrenexError {}

/// Convert to prenex normal form. The input is first brought to NNF
/// (so quantifier polarity is explicit), then quantifiers are hoisted
/// left-to-right with bound variables renamed apart (`v` becomes `v`,
/// `v_1`, `v_2`, … as needed).
pub fn to_prenex(formula: &Formula) -> Result<PrenexForm, PrenexError> {
    if formula.is_second_order() {
        return Err(PrenexError::SecondOrder);
    }
    let nnf = formula.to_nnf();
    let mut state = Renamer {
        used: formula.free_vars().into_iter().collect(),
        counters: HashMap::new(),
    };
    let mut prefix = Vec::new();
    let matrix = hoist(&nnf, &mut HashMap::new(), &mut state, &mut prefix);
    Ok(PrenexForm { prefix, matrix })
}

struct Renamer {
    used: std::collections::HashSet<String>,
    counters: HashMap<String, u32>,
}

impl Renamer {
    /// A fresh name based on `v`, registered as used.
    fn fresh(&mut self, v: &str) -> String {
        if self.used.insert(v.to_string()) {
            return v.to_string();
        }
        loop {
            let c = self.counters.entry(v.to_string()).or_insert(0);
            *c += 1;
            let candidate = format!("{v}_{c}");
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }
}

/// Walk an NNF formula, stripping quantifiers into `prefix` and applying
/// the variable renaming `sub` to the matrix.
fn hoist(
    f: &Formula,
    sub: &mut HashMap<String, String>,
    state: &mut Renamer,
    prefix: &mut Vec<PrenexQuantifier>,
) -> Formula {
    let rename_term = |t: &Term, sub: &HashMap<String, String>| -> Term {
        match t {
            Term::Var(v) => Term::Var(sub.get(v).cloned().unwrap_or_else(|| v.clone())),
            c => c.clone(),
        }
    };
    match f {
        Formula::True | Formula::False => f.clone(),
        Formula::Atom { rel, args } => Formula::Atom {
            rel: rel.clone(),
            args: args.iter().map(|t| rename_term(t, sub)).collect(),
        },
        Formula::Eq(a, b) => Formula::Eq(rename_term(a, sub), rename_term(b, sub)),
        Formula::Not(inner) => Formula::not(hoist(inner, sub, state, prefix)),
        Formula::And(fs) => Formula::And(fs.iter().map(|g| hoist(g, sub, state, prefix)).collect()),
        Formula::Or(fs) => Formula::Or(fs.iter().map(|g| hoist(g, sub, state, prefix)).collect()),
        Formula::Exists(vs, body) | Formula::Forall(vs, body) => {
            let is_exists = matches!(f, Formula::Exists(..));
            let saved: Vec<(String, Option<String>)> = vs
                .iter()
                .map(|v| (v.clone(), sub.get(v).cloned()))
                .collect();
            for v in vs {
                let fresh = state.fresh(v);
                prefix.push((is_exists, fresh.clone()));
                sub.insert(v.clone(), fresh);
            }
            let out = hoist(body, sub, state, prefix);
            for (v, old) in saved {
                match old {
                    Some(o) => {
                        sub.insert(v, o);
                    }
                    None => {
                        sub.remove(&v);
                    }
                }
            }
            out
        }
        Formula::ExistsRel(..) | Formula::ForallRel(..) => {
            unreachable!("second-order rejected by to_prenex")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_formula;

    fn prenex(src: &str) -> PrenexForm {
        to_prenex(&parse_formula(src).unwrap()).unwrap()
    }

    #[test]
    fn already_prenex_is_preserved() {
        let p = prenex("exists x y. E(x,y) & S(x)");
        assert_eq!(
            p.prefix,
            vec![(true, "x".to_string()), (true, "y".to_string())]
        );
        assert!(p.matrix.is_quantifier_free());
        assert!(p.is_existential());
        assert_eq!(p.alternations(), 0);
    }

    #[test]
    fn nested_quantifiers_hoist() {
        // (∃x S(x)) ∧ (∃x T(x)): the second x must be renamed apart.
        let p = prenex("(exists x. S(x)) & (exists x. T(x))");
        assert_eq!(p.prefix.len(), 2);
        assert_ne!(p.prefix[0].1, p.prefix[1].1);
        assert!(p.matrix.is_quantifier_free());
        assert!(p.is_existential());
    }

    #[test]
    fn negation_flips_inside_nnf_before_hoisting() {
        // ¬∃x S(x) ≡ ∀x ¬S(x).
        let p = prenex("!(exists x. S(x))");
        assert_eq!(p.prefix, vec![(false, "x".to_string())]);
        assert_eq!(p.matrix, parse_formula("!S(x)").unwrap());
    }

    #[test]
    fn alternation_counting() {
        let p = prenex("forall x. exists y. forall z. E(x,y) & E(y,z)");
        assert_eq!(p.alternations(), 2);
        assert!(!p.is_existential());
    }

    #[test]
    fn capture_avoided_against_free_variables() {
        // Free x outside, bound x inside: the bound one must rename.
        let p = prenex("S(x) & (exists x. T(x))");
        assert_eq!(p.prefix.len(), 1);
        assert_ne!(p.prefix[0].1, "x");
        // The matrix keeps the free x intact and uses the fresh name in T.
        let shown = p.matrix.to_string();
        assert!(shown.contains("S(x)"));
        assert!(!shown.contains("T(x)"));
    }

    #[test]
    fn semantics_preserved_on_database() {
        use qrel_test_eval::holds;
        for src in [
            "(exists x. S(x)) & (exists x. !S(x))",
            "(forall x. S(x) | E(x,x)) | (exists y. E(y,y))",
            "S(z) & (exists z. E(z,z))",
            "!(forall x. exists y. E(x,y))",
        ] {
            let f = parse_formula(src).unwrap();
            let p = to_prenex(&f).unwrap();
            let g = p.to_formula();
            assert_eq!(f.free_vars(), g.free_vars(), "{src}");
            holds(&f, &g);
        }
    }

    /// Minimal in-crate semantic check: enumerate all structures with
    /// {E/2, S/1} over a 2-element universe and compare truth values of
    /// the original and prenexed formulas under all variable bindings.
    mod qrel_test_eval {
        use super::super::*;
        use std::collections::HashMap as Map;

        struct Tiny {
            e: [[bool; 2]; 2],
            s: [bool; 2],
        }

        fn eval(f: &Formula, st: &Tiny, env: &Map<String, usize>) -> bool {
            match f {
                Formula::True => true,
                Formula::False => false,
                Formula::Atom { rel, args } => {
                    let v = |t: &Term| -> usize {
                        match t {
                            Term::Var(x) => env[x],
                            Term::Const(c) => c.parse().unwrap(),
                        }
                    };
                    match rel.as_str() {
                        "E" => st.e[v(&args[0])][v(&args[1])],
                        "S" => st.s[v(&args[0])],
                        _ => panic!("unknown relation"),
                    }
                }
                Formula::Eq(a, b) => {
                    let v = |t: &Term| -> usize {
                        match t {
                            Term::Var(x) => env[x],
                            Term::Const(c) => c.parse().unwrap(),
                        }
                    };
                    v(a) == v(b)
                }
                Formula::Not(g) => !eval(g, st, env),
                Formula::And(gs) => gs.iter().all(|g| eval(g, st, env)),
                Formula::Or(gs) => gs.iter().any(|g| eval(g, st, env)),
                Formula::Exists(vs, g) => assign(vs, g, st, env, true),
                Formula::Forall(vs, g) => assign(vs, g, st, env, false),
                _ => panic!("second-order"),
            }
        }

        fn assign(
            vs: &[String],
            g: &Formula,
            st: &Tiny,
            env: &Map<String, usize>,
            existential: bool,
        ) -> bool {
            let k = vs.len();
            for mask in 0..(1usize << k) {
                let mut e2 = env.clone();
                for (i, v) in vs.iter().enumerate() {
                    e2.insert(v.clone(), (mask >> i) & 1);
                }
                let r = eval(g, st, &e2);
                if existential && r {
                    return true;
                }
                if !existential && !r {
                    return false;
                }
            }
            !existential
        }

        pub fn holds(f: &Formula, g: &Formula) {
            let free = f.free_vars();
            for e_mask in 0..16u32 {
                for s_mask in 0..4u32 {
                    let st = Tiny {
                        e: [
                            [(e_mask & 1) != 0, (e_mask & 2) != 0],
                            [(e_mask & 4) != 0, (e_mask & 8) != 0],
                        ],
                        s: [(s_mask & 1) != 0, (s_mask & 2) != 0],
                    };
                    for b_mask in 0..(1usize << free.len()) {
                        let mut env = Map::new();
                        for (i, v) in free.iter().enumerate() {
                            env.insert(v.clone(), (b_mask >> i) & 1);
                        }
                        assert_eq!(
                            eval(f, &st, &env),
                            eval(g, &st, &env),
                            "structure E={e_mask:04b} S={s_mask:02b} env {env:?}\n\
                             original: {f}\nprenexed: {g}"
                        );
                    }
                }
            }
        }
    }
}
