//! DNF threshold encodings over binary counters (Theorem 5.3).
//!
//! Given fresh propositional variables `Ȳ = Y_{ℓ-1} … Y_0` read as an
//! ℓ-bit binary number `val(Ȳ)`, the paper's reduction from Prob-kDNF to
//! #DNF needs DNF formulas for the comparisons `val(Ȳ) < b` and
//! `val(Ȳ) ≥ b`. Both have O(ℓ) terms of O(ℓ) literals, i.e. size O(ℓ²),
//! exactly as claimed in the proof of Theorem 5.3:
//!
//! ```text
//! val(Ȳ) < b   ≡   ⋁_{i<ℓ, bᵢ=1} ( ¬Yᵢ ∧ ⋀_{i<j<ℓ, bⱼ=0} ¬Yⱼ )
//! ```
//!
//! (For positions `j > i` with `bⱼ = 1` no constraint is needed: `Yⱼ ≤ bⱼ`
//! holds vacuously, and any strict drop at such `j` also witnesses `<`.)

use crate::prop::{Dnf, Lit, VarId};

/// The counter `Ȳ`: `vars[0]` is the most significant bit `Y_{ℓ-1}`.
#[derive(Debug, Clone)]
pub struct BitCounter {
    vars: Vec<VarId>,
}

impl BitCounter {
    /// Wrap `vars` (MSB first) as a counter.
    pub fn new(vars: Vec<VarId>) -> Self {
        assert!(!vars.is_empty(), "counter needs at least one bit");
        BitCounter { vars }
    }

    /// Number of bits ℓ.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    pub fn is_empty(&self) -> bool {
        false // by construction
    }

    /// The underlying variables, MSB first.
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// Bit `b_i` of `b` where `i` indexes from the MSB side of this
    /// counter: position 0 is bit `ℓ-1` of `b`.
    fn bound_bit(&self, b: u64, msb_pos: usize) -> bool {
        let bit_index = self.vars.len() - 1 - msb_pos;
        (b >> bit_index) & 1 == 1
    }

    /// Evaluate `val(Ȳ)` under an assignment.
    pub fn value(&self, assignment: &[bool]) -> u64 {
        let mut v = 0u64;
        for &var in &self.vars {
            v = (v << 1) | assignment[var as usize] as u64;
        }
        v
    }

    /// DNF for `val(Ȳ) < b`. Requires `b < 2^ℓ` (so the formula is
    /// nontrivial) — `b = 0` yields the empty (false) DNF.
    pub fn less_than(&self, b: u64) -> Dnf {
        let ell = self.vars.len();
        assert!(
            ell == 64 || b < (1u64 << ell),
            "bound does not fit in counter"
        );
        let mut dnf = Dnf::new();
        for i in 0..ell {
            if !self.bound_bit(b, i) {
                continue; // need b_i = 1 to witness a strict drop here
            }
            let mut term = vec![Lit::neg(self.vars[i])];
            // Positions strictly more significant than i with b_j = 0 must
            // have Y_j = 0 too (otherwise val(Ȳ) would already exceed b).
            for j in 0..i {
                if !self.bound_bit(b, j) {
                    term.push(Lit::neg(self.vars[j]));
                }
            }
            dnf.push_term_checked(term);
        }
        dnf
    }

    /// DNF for `val(Ȳ) ≥ b`.
    pub fn at_least(&self, b: u64) -> Dnf {
        let ell = self.vars.len();
        assert!(
            ell == 64 || b < (1u64 << ell),
            "bound does not fit in counter"
        );
        let mut dnf = Dnf::new();
        // Disjunct 0: Y_j = 1 wherever b_j = 1 (then val(Ȳ) ≥ b bitwise).
        let all_ones: Vec<Lit> = (0..ell)
            .filter(|&j| self.bound_bit(b, j))
            .map(|j| Lit::pos(self.vars[j]))
            .collect();
        dnf.push_term_checked(all_ones);
        // Disjunct per position i with b_i = 0: a strict rise at i while
        // matching b's ones above it.
        for i in 0..ell {
            if self.bound_bit(b, i) {
                continue;
            }
            let mut term = vec![Lit::pos(self.vars[i])];
            for j in 0..i {
                if self.bound_bit(b, j) {
                    term.push(Lit::pos(self.vars[j]));
                }
            }
            dnf.push_term_checked(term);
        }
        dnf
    }
}

/// Number of bits in the shortest binary representation of `q` (len(q) in
/// the paper's notation); `len(0) = 1` by convention.
pub fn bit_len(q: u64) -> usize {
    (64 - q.leading_zeros()).max(1) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exhaustive_check(ell: usize, b: u64) {
        let counter = BitCounter::new((0..ell as VarId).collect());
        let lt = counter.less_than(b);
        let ge = counter.at_least(b);
        for mask in 0u64..(1 << ell) {
            let mut a = vec![false; ell];
            for (i, slot) in a.iter_mut().enumerate() {
                // vars[0] is the MSB: wire bit (ell-1-i) of mask to vars[i].
                *slot = (mask >> (ell - 1 - i)) & 1 == 1;
            }
            assert_eq!(counter.value(&a), mask);
            assert_eq!(lt.eval(&a), mask < b, "lt ℓ={ell} b={b} mask={mask}");
            assert_eq!(ge.eval(&a), mask >= b, "ge ℓ={ell} b={b} mask={mask}");
        }
    }

    #[test]
    fn exhaustive_small() {
        for ell in 1..=5 {
            for b in 0..(1u64 << ell) {
                exhaustive_check(ell, b);
            }
        }
    }

    #[test]
    fn sizes_are_quadratic() {
        let ell = 32;
        let counter = BitCounter::new((0..ell as VarId).collect());
        let b = 0xAAAA_AAAA & ((1u64 << ell) - 1);
        let lt = counter.less_than(b);
        assert!(lt.num_terms() <= ell);
        assert!(lt.width() <= ell);
        let ge = counter.at_least(b);
        assert!(ge.num_terms() <= ell + 1);
        assert!(ge.width() <= ell);
    }

    #[test]
    fn boundary_cases() {
        let counter = BitCounter::new(vec![0, 1, 2]);
        // val < 0 is unsatisfiable.
        assert!(counter.less_than(0).is_false());
        // val >= 0 is a tautology (the "all ones of b" disjunct is empty).
        assert!(counter.at_least(0).is_trivially_true());
        // val < 2^ℓ − 1 excludes exactly the all-ones assignment.
        let lt = counter.less_than(7);
        assert!(!lt.eval(&[true, true, true]));
        assert!(lt.eval(&[true, true, false]));
    }

    #[test]
    fn bit_len_matches() {
        assert_eq!(bit_len(0), 1);
        assert_eq!(bit_len(1), 1);
        assert_eq!(bit_len(2), 2);
        assert_eq!(bit_len(3), 2);
        assert_eq!(bit_len(4), 3);
        assert_eq!(bit_len(255), 8);
        assert_eq!(bit_len(256), 9);
    }

    #[test]
    fn counter_counts_per_paper() {
        // For probability p/q with ℓ = len(q): exactly p assignments satisfy
        // val < p, and 2^ℓ − p satisfy val ≥ p (the proof of Thm 5.3).
        let (p, q) = (5u64, 12u64);
        let ell = bit_len(q);
        let counter = BitCounter::new((0..ell as VarId).collect());
        assert_eq!(counter.less_than(p).count_models_brute(ell), p);
        assert_eq!(counter.at_least(p).count_models_brute(ell), (1 << ell) - p);
        // Legal assignments are those with val < q: exactly q of them.
        assert_eq!(counter.less_than(q).count_models_brute(ell), q);
    }
}
