//! The store itself: open/init, batched commits, lazy reads, recovery,
//! and compaction.

use crate::hash::{base_hash, fact_state_hash};
use crate::manifest::{
    manifest_path, read_manifest, segments_dir, write_manifest, DatasetEntry, Manifest, RelDecl,
    SegmentRef,
};
use crate::segment::{encode_segment, scan_relation, verify_pages, FactOp, RelationBlock};
use qrel_arith::BigRational;
use qrel_db::{Database, Fact, Universe};
use qrel_logic::vocab::{RelationSymbol, Vocabulary};
use qrel_prob::{ErrorModel, UnreliableDatabase, UnreliableDatabaseSpec};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Anything that can go wrong talking to a store.
#[derive(Debug)]
pub enum StoreError {
    Io(String),
    /// On-disk data failed validation (bad magic, checksum, manifest).
    Corrupt(String),
    UnknownDataset(String),
    DatasetExists(String),
    UnknownRelation {
        dataset: String,
        relation: String,
    },
    ArityMismatch {
        relation: String,
        expected: usize,
        got: usize,
    },
    ElementOutOfRange {
        relation: String,
        element: u32,
    },
    BadProbability {
        relation: String,
        reason: String,
    },
    /// Positive-only model: μ ≠ 0 on an absent fact.
    NegativeFactError {
        relation: String,
    },
    /// A deterministic fault-injection point fired (chaos testing).
    Injected(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "store I/O error: {m}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
            StoreError::UnknownDataset(n) => write!(f, "unknown dataset {n:?}"),
            StoreError::DatasetExists(n) => write!(f, "dataset {n:?} already exists"),
            StoreError::UnknownRelation { dataset, relation } => {
                write!(f, "dataset {dataset:?} has no relation {relation:?}")
            }
            StoreError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation {relation:?} expects arity {expected}, got {got}"
            ),
            StoreError::ElementOutOfRange { relation, element } => {
                write!(f, "element {element} out of range in a {relation:?} tuple")
            }
            StoreError::BadProbability { relation, reason } => {
                write!(f, "bad probability on a {relation:?} fact: {reason}")
            }
            StoreError::NegativeFactError { relation } => write!(
                f,
                "positive-only model: μ > 0 on an absent {relation:?} fact"
            ),
            StoreError::Injected(what) => write!(f, "injected fault: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// One staged fact mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mutation {
    pub relation: String,
    pub tuple: Vec<u32>,
    pub op: FactOp,
}

impl Mutation {
    /// Upsert `(present, μ)` for a fact.
    pub fn set(relation: &str, tuple: Vec<u32>, present: bool, mu: &str) -> Self {
        Mutation {
            relation: relation.to_string(),
            tuple,
            op: FactOp::Set {
                present,
                mu: mu.to_string(),
            },
        }
    }

    /// Reset a fact to its default state (absent, μ = 0).
    pub fn reset(relation: &str, tuple: Vec<u32>) -> Self {
        Mutation {
            relation: relation.to_string(),
            tuple,
            op: FactOp::Reset,
        }
    }
}

/// What one commit did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitStats {
    /// Segment file written (`None` when the batch was a no-op).
    pub segment: Option<String>,
    /// Rows in that segment.
    pub rows: u64,
    /// Dataset live-fact count after the commit.
    pub live_facts: u64,
    /// Dataset db-hash after the commit.
    pub db_hash: u64,
    /// Wall-clock commit latency in milliseconds.
    pub elapsed_ms: u64,
}

/// The current `(present, μ)` state of a fact; the default is
/// `(false, "0")`.
pub type FactState = (bool, String);

const DEFAULT_STATE: FactState = (false, String::new());

fn state_mu(state: &FactState) -> &str {
    if state.1.is_empty() {
        "0"
    } else {
        &state.1
    }
}

fn is_default(state: &FactState) -> bool {
    !state.0 && state_mu(state) == "0"
}

fn state_hash(relation: &str, tuple: &[u32], state: &FactState) -> u64 {
    fact_state_hash(relation, tuple, state.0, state_mu(state))
}

fn op_to_state(op: &FactOp) -> FactState {
    match op {
        FactOp::Reset => DEFAULT_STATE,
        FactOp::Set { present, mu } => (*present, mu.clone()),
    }
}

// ---------------------------------------------------------------------------
// Read path

/// A dataset opened for reading: segment bytes are loaded once, blocks
/// are decoded lazily per relation on first touch.
pub struct StoredDataset {
    entry: DatasetEntry,
    /// Raw segment file images, oldest first.
    segments: Vec<Vec<u8>>,
    /// Decoded, merged per-relation state (filled on demand).
    merged: HashMap<String, BTreeMap<Vec<u32>, FactState>>,
}

impl StoredDataset {
    /// The manifest entry this view was opened from.
    pub fn entry(&self) -> &DatasetEntry {
        &self.entry
    }

    /// Merged state of one relation: newest segment row wins per tuple.
    /// First access decodes only this relation's blocks; every other
    /// block is checksum-verified and skipped.
    pub fn relation_state(
        &mut self,
        relation: &str,
    ) -> Result<&BTreeMap<Vec<u32>, FactState>, StoreError> {
        if !self.entry.relations.iter().any(|r| r.name == relation) {
            return Err(StoreError::UnknownRelation {
                dataset: self.entry.name.clone(),
                relation: relation.to_string(),
            });
        }
        if !self.merged.contains_key(relation) {
            let mut state: BTreeMap<Vec<u32>, FactState> = BTreeMap::new();
            for bytes in &self.segments {
                for (tuple, op) in scan_relation(bytes, relation)
                    .map_err(|e| StoreError::Corrupt(e.to_string()))?
                {
                    match op {
                        FactOp::Reset => {
                            state.remove(&tuple);
                        }
                        FactOp::Set { present, mu } => {
                            state.insert(tuple, (present, mu));
                        }
                    }
                }
            }
            // Drop entries that merged back to the default state.
            state.retain(|_, s| !is_default(s));
            self.merged.insert(relation.to_string(), state);
        }
        Ok(&self.merged[relation])
    }

    /// Current state of one fact.
    pub fn fact_state(&mut self, relation: &str, tuple: &[u32]) -> Result<FactState, StoreError> {
        Ok(self
            .relation_state(relation)?
            .get(tuple)
            .cloned()
            .unwrap_or(DEFAULT_STATE))
    }

    /// Recompute the db-hash from the merged state (bit-identical to
    /// the incrementally maintained value — tests and `verify` pin it).
    pub fn recompute_hash(&mut self) -> Result<u64, StoreError> {
        let universe = self.entry.universe.clone();
        let relations: Vec<(String, usize)> = self
            .entry
            .relations
            .iter()
            .map(|r| (r.name.clone(), r.arity as usize))
            .collect();
        let mut h = base_hash(&universe, &relations, &self.entry.model);
        for (name, _) in &relations {
            for (tuple, state) in self.relation_state(name)? {
                h ^= state_hash(name, tuple, state);
            }
        }
        Ok(h)
    }

    /// Count of non-default facts in the merged state.
    pub fn live_facts(&mut self) -> Result<u64, StoreError> {
        let names: Vec<String> = self
            .entry
            .relations
            .iter()
            .map(|r| r.name.clone())
            .collect();
        let mut live = 0u64;
        for name in names {
            live += self.relation_state(&name)?.len() as u64;
        }
        Ok(live)
    }

    /// Reconstruct the observed [`Database`] (present facts only).
    pub fn database(&mut self) -> Result<Database, StoreError> {
        let universe = Universe::from_names(self.entry.universe.clone());
        let mut vocab = Vocabulary::new();
        for r in &self.entry.relations {
            vocab.add(RelationSymbol::new(r.name.clone(), r.arity as usize));
        }
        let mut db = Database::empty(vocab, universe);
        let decls = self.entry.relations.clone();
        for (ri, r) in decls.iter().enumerate() {
            let tuples: Vec<Vec<u32>> = self
                .relation_state(&r.name)?
                .iter()
                .filter(|(_, s)| s.0)
                .map(|(t, _)| t.clone())
                .collect();
            for t in tuples {
                db.set_fact(&Fact::new(ri, t), true);
            }
        }
        Ok(db)
    }

    /// Reconstruct the full [`UnreliableDatabase`] model.
    pub fn build(&mut self) -> Result<UnreliableDatabase, StoreError> {
        let db = self.database()?;
        let model = match self.entry.model.as_str() {
            "full" => ErrorModel::Full,
            "positive-only" => ErrorModel::PositiveOnly,
            other => {
                return Err(StoreError::Corrupt(format!(
                    "unknown model {other:?} in manifest"
                )))
            }
        };
        let mut ud = UnreliableDatabase::reliable(db)
            .with_model(model)
            .map_err(|e| StoreError::Corrupt(e.to_string()))?;
        let decls = self.entry.relations.clone();
        for (ri, r) in decls.iter().enumerate() {
            let uncertain: Vec<(Vec<u32>, String)> = self
                .relation_state(&r.name)?
                .iter()
                .filter(|(_, s)| state_mu(s) != "0")
                .map(|(t, s)| (t.clone(), state_mu(s).to_string()))
                .collect();
            for (tuple, mu) in uncertain {
                let p = BigRational::parse(&mu).map_err(|e| {
                    StoreError::Corrupt(format!("bad stored probability {mu:?}: {e}"))
                })?;
                ud.set_error(&Fact::new(ri, tuple), p)
                    .map_err(|e| StoreError::Corrupt(e.to_string()))?;
            }
        }
        Ok(ud)
    }

    /// Extract the interchange spec (for `qrel store dump`).
    pub fn dump_spec(&mut self) -> Result<UnreliableDatabaseSpec, StoreError> {
        Ok(UnreliableDatabaseSpec::from_model(&self.build()?))
    }
}

// ---------------------------------------------------------------------------
// The store

/// A store rooted at a directory. All mutation goes through
/// [`Store::commit`]; the struct itself is cheap state (the manifest)
/// plus paths.
pub struct Store {
    dir: PathBuf,
    manifest: Manifest,
    last_commit_ms: u64,
}

impl Store {
    /// Create a fresh store. Fails if the directory already holds one.
    pub fn init(dir: &Path) -> Result<Store, StoreError> {
        if manifest_path(dir).exists() {
            return Err(StoreError::Io(format!(
                "{} already contains a store",
                dir.display()
            )));
        }
        fs::create_dir_all(segments_dir(dir)).map_err(|e| StoreError::Io(e.to_string()))?;
        let manifest = Manifest::empty();
        write_manifest(dir, &manifest).map_err(StoreError::Io)?;
        Ok(Store {
            dir: dir.to_path_buf(),
            manifest,
            last_commit_ms: 0,
        })
    }

    /// Open an existing store: read the manifest, garbage-collect
    /// orphans (temp files and unreferenced segments left by torn
    /// writes or mid-commit crashes), and verify every referenced
    /// segment exists with its recorded length.
    pub fn open(dir: &Path) -> Result<Store, StoreError> {
        let manifest = read_manifest(dir).map_err(StoreError::Corrupt)?;
        let seg_dir = segments_dir(dir);
        fs::create_dir_all(&seg_dir).map_err(|e| StoreError::Io(e.to_string()))?;
        let referenced: HashMap<&str, u64> = manifest
            .datasets
            .iter()
            .flat_map(|d| d.segments.iter())
            .map(|s| (s.file.as_str(), s.bytes))
            .collect();
        // GC pass: anything in segments/ the manifest does not name is
        // debris from an aborted commit.
        for entry in fs::read_dir(&seg_dir).map_err(|e| StoreError::Io(e.to_string()))? {
            let entry = entry.map_err(|e| StoreError::Io(e.to_string()))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if !referenced.contains_key(name.as_str()) {
                let _ = fs::remove_file(entry.path());
            }
        }
        // Leftover manifest temp from a crash between write and rename.
        let _ = fs::remove_file(dir.join("MANIFEST.json.tmp"));
        // Existence + length check; page checksums run on read.
        for (file, bytes) in &referenced {
            let path = seg_dir.join(file);
            let meta = fs::metadata(&path).map_err(|e| {
                StoreError::Corrupt(format!("referenced segment {file} missing: {e}"))
            })?;
            if meta.len() != *bytes {
                return Err(StoreError::Corrupt(format!(
                    "segment {file} is {} bytes, manifest says {bytes}",
                    meta.len()
                )));
            }
        }
        Ok(Store {
            dir: dir.to_path_buf(),
            manifest,
            last_commit_ms: 0,
        })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    pub fn dataset(&self, name: &str) -> Option<&DatasetEntry> {
        self.manifest.dataset(name)
    }

    /// Dataset names, sorted.
    pub fn dataset_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .manifest
            .datasets
            .iter()
            .map(|d| d.name.clone())
            .collect();
        names.sort();
        names
    }

    /// Milliseconds the most recent commit in this process took.
    pub fn last_commit_ms(&self) -> u64 {
        self.last_commit_ms
    }

    /// Total segment files across all datasets.
    pub fn total_segments(&self) -> u64 {
        self.manifest
            .datasets
            .iter()
            .map(|d| d.segments.len() as u64)
            .sum()
    }

    /// Total referenced segment bytes.
    pub fn total_bytes(&self) -> u64 {
        self.manifest
            .datasets
            .iter()
            .flat_map(|d| d.segments.iter())
            .map(|s| s.bytes)
            .sum()
    }

    /// Facts in a non-default state, across all datasets.
    pub fn total_live_facts(&self) -> u64 {
        self.manifest.datasets.iter().map(|d| d.live_facts).sum()
    }

    /// Shadowed/tombstone rows compact would reclaim, across all
    /// datasets.
    pub fn total_dead_rows(&self) -> u64 {
        self.manifest
            .datasets
            .iter()
            .map(|d| d.total_rows.saturating_sub(d.live_facts))
            .sum()
    }

    /// Register a new, empty dataset.
    pub fn create_dataset(
        &mut self,
        name: &str,
        universe: Vec<String>,
        relations: Vec<(String, usize)>,
        model: &str,
    ) -> Result<(), StoreError> {
        if self.manifest.dataset(name).is_some() {
            return Err(StoreError::DatasetExists(name.to_string()));
        }
        if model != "full" && model != "positive-only" {
            return Err(StoreError::Corrupt(format!(
                "unknown model {model:?} (use \"full\" or \"positive-only\")"
            )));
        }
        let rel_decls: Vec<(String, usize)> = relations;
        let db_hash = base_hash(&universe, &rel_decls, model);
        self.manifest.datasets.push(DatasetEntry {
            name: name.to_string(),
            model: model.to_string(),
            universe,
            relations: rel_decls
                .into_iter()
                .map(|(name, arity)| RelDecl {
                    name,
                    arity: arity as u32,
                })
                .collect(),
            segments: Vec::new(),
            db_hash,
            live_facts: 0,
            total_rows: 0,
            next_seq: 0,
        });
        write_manifest(&self.dir, &self.manifest).map_err(StoreError::Io)?;
        Ok(())
    }

    /// Open a dataset for reading.
    pub fn load(&self, name: &str) -> Result<StoredDataset, StoreError> {
        let entry = self
            .manifest
            .dataset(name)
            .ok_or_else(|| StoreError::UnknownDataset(name.to_string()))?
            .clone();
        let seg_dir = segments_dir(&self.dir);
        let mut segments = Vec::with_capacity(entry.segments.len());
        for s in &entry.segments {
            let bytes = fs::read(seg_dir.join(&s.file))
                .map_err(|e| StoreError::Corrupt(format!("cannot read segment {}: {e}", s.file)))?;
            segments.push(bytes);
        }
        Ok(StoredDataset {
            entry,
            segments,
            merged: HashMap::new(),
        })
    }

    /// Full-integrity pass over one dataset: every page checksum, plus
    /// the manifest's incremental db-hash and live-fact count against a
    /// from-scratch recomputation.
    pub fn verify(&self, name: &str) -> Result<(), StoreError> {
        let mut ds = self.load(name)?;
        for bytes in &ds.segments {
            verify_pages(bytes).map_err(|e| StoreError::Corrupt(e.to_string()))?;
        }
        let recomputed = ds.recompute_hash()?;
        if recomputed != ds.entry.db_hash {
            return Err(StoreError::Corrupt(format!(
                "db-hash drift in {name:?}: manifest {:#x}, recomputed {recomputed:#x}",
                ds.entry.db_hash
            )));
        }
        let live = ds.live_facts()?;
        if live != ds.entry.live_facts {
            return Err(StoreError::Corrupt(format!(
                "live-fact drift in {name:?}: manifest {}, recomputed {live}",
                ds.entry.live_facts
            )));
        }
        Ok(())
    }

    /// Validate one mutation against the dataset's shape and model.
    fn validate(entry: &DatasetEntry, m: &Mutation) -> Result<(), StoreError> {
        let decl = entry
            .relations
            .iter()
            .find(|r| r.name == m.relation)
            .ok_or_else(|| StoreError::UnknownRelation {
                dataset: entry.name.clone(),
                relation: m.relation.clone(),
            })?;
        if decl.arity as usize != m.tuple.len() {
            return Err(StoreError::ArityMismatch {
                relation: m.relation.clone(),
                expected: decl.arity as usize,
                got: m.tuple.len(),
            });
        }
        for &e in &m.tuple {
            if e as usize >= entry.universe.len() {
                return Err(StoreError::ElementOutOfRange {
                    relation: m.relation.clone(),
                    element: e,
                });
            }
        }
        if let FactOp::Set { present, mu } = &m.op {
            let p = BigRational::parse(mu).map_err(|e| StoreError::BadProbability {
                relation: m.relation.clone(),
                reason: e.to_string(),
            })?;
            if p > BigRational::one() {
                return Err(StoreError::BadProbability {
                    relation: m.relation.clone(),
                    reason: format!("{mu} > 1"),
                });
            }
            if entry.model == "positive-only" && !present && !p.is_zero() {
                return Err(StoreError::NegativeFactError {
                    relation: m.relation.clone(),
                });
            }
        }
        Ok(())
    }

    /// Write a segment image to `segments/` crash-safely: temp file,
    /// fsync, rename, directory fsync. The torn-write fault point
    /// persists a prefix and fails, modeling a half-written page.
    fn publish_segment(&self, file: &str, image: &[u8]) -> Result<(), StoreError> {
        let seg_dir = segments_dir(&self.dir);
        let tmp = seg_dir.join(format!("{file}.tmp"));
        let torn = qrel_faults::armed()
            && qrel_faults::hit(qrel_faults::points::STORE_SEGMENT_TORN_WRITE).is_some();
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)
                .map_err(|e| StoreError::Io(e.to_string()))?;
            let bytes = if torn {
                &image[..image.len() / 2]
            } else {
                image
            };
            f.write_all(bytes)
                .map_err(|e| StoreError::Io(e.to_string()))?;
            f.sync_all().map_err(|e| StoreError::Io(e.to_string()))?;
        }
        if torn {
            // The half-written temp file stays on disk, exactly as a
            // real torn write would leave it; open() GCs it.
            return Err(StoreError::Injected("torn segment write"));
        }
        fs::rename(&tmp, seg_dir.join(file)).map_err(|e| StoreError::Io(e.to_string()))?;
        if let Ok(d) = File::open(&seg_dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Apply a batch of staged mutations as one atomic commit: one new
    /// segment, one manifest publish, and an incremental db-hash update
    /// covering exactly the touched facts.
    pub fn commit(&mut self, dataset: &str, batch: &[Mutation]) -> Result<CommitStats, StoreError> {
        let started = Instant::now();
        let entry = self
            .manifest
            .dataset(dataset)
            .ok_or_else(|| StoreError::UnknownDataset(dataset.to_string()))?
            .clone();
        for m in batch {
            Self::validate(&entry, m)?;
        }
        // Stage: last mutation per (relation, tuple) wins; canonicalize
        // probability strings so "2/4" and "1/2" hash identically.
        let mut staged: BTreeMap<(String, Vec<u32>), FactOp> = BTreeMap::new();
        for m in batch {
            let op = match &m.op {
                FactOp::Reset => FactOp::Reset,
                FactOp::Set { present, mu } => FactOp::Set {
                    present: *present,
                    mu: BigRational::parse(mu).expect("validated above").to_string(),
                },
            };
            staged.insert((m.relation.clone(), m.tuple.clone()), op);
        }
        if staged.is_empty() {
            return Ok(CommitStats {
                segment: None,
                rows: 0,
                live_facts: entry.live_facts,
                db_hash: entry.db_hash,
                elapsed_ms: 0,
            });
        }

        // Old states of exactly the touched facts, via the lazy reader.
        let mut view = self.load(dataset)?;
        let mut db_hash = entry.db_hash;
        let mut live = entry.live_facts as i64;
        for ((relation, tuple), op) in &staged {
            let old = view.fact_state(relation, tuple)?;
            let new = op_to_state(op);
            db_hash ^= state_hash(relation, tuple, &old) ^ state_hash(relation, tuple, &new);
            live += i64::from(!is_default(&new)) - i64::from(!is_default(&old));
        }

        // Encode: one block per touched relation, vocabulary order,
        // tuples sorted — byte-deterministic for identical batches.
        let mut blocks = Vec::new();
        for decl in &entry.relations {
            let rows: Vec<(Vec<u32>, FactOp)> = staged
                .iter()
                .filter(|((r, _), _)| *r == decl.name)
                .map(|((_, t), op)| (t.clone(), op.clone()))
                .collect();
            if !rows.is_empty() {
                blocks.push(RelationBlock {
                    relation: decl.name.clone(),
                    arity: decl.arity as usize,
                    rows,
                });
            }
        }
        let image = encode_segment(&blocks);
        let file = format!("{dataset}-{:08}.seg", entry.next_seq);
        self.publish_segment(&file, &image)?;

        // Chaos hook: die after the segment landed, before the manifest
        // references it — the canonical mid-commit crash. Reopen sees
        // the old manifest and GCs the orphan.
        if qrel_faults::armed()
            && qrel_faults::hit(qrel_faults::points::STORE_COMMIT_CRASH).is_some()
        {
            return Err(StoreError::Injected("commit crash before manifest publish"));
        }

        let rows = staged.len() as u64;
        let live_facts = u64::try_from(live.max(0)).unwrap_or(0);
        {
            let e = self
                .manifest
                .dataset_mut(dataset)
                .expect("dataset existed above");
            e.segments.push(SegmentRef {
                file: file.clone(),
                bytes: image.len() as u64,
            });
            e.db_hash = db_hash;
            e.live_facts = live_facts;
            e.total_rows += rows;
            e.next_seq += 1;
        }
        write_manifest(&self.dir, &self.manifest).map_err(StoreError::Io)?;
        let elapsed_ms = started.elapsed().as_millis() as u64;
        self.last_commit_ms = elapsed_ms;
        Ok(CommitStats {
            segment: Some(file),
            rows,
            live_facts,
            db_hash,
            elapsed_ms,
        })
    }

    /// Rewrite a dataset as a single segment holding only live facts.
    /// The db-hash is untouched — compaction changes representation,
    /// never content — and old segments are deleted only after the new
    /// manifest is published.
    pub fn compact(&mut self, dataset: &str) -> Result<CommitStats, StoreError> {
        let started = Instant::now();
        let entry = self
            .manifest
            .dataset(dataset)
            .ok_or_else(|| StoreError::UnknownDataset(dataset.to_string()))?
            .clone();
        let mut view = self.load(dataset)?;
        let mut blocks = Vec::new();
        let mut rows = 0u64;
        for decl in &entry.relations {
            let state = view.relation_state(&decl.name)?;
            let block_rows: Vec<(Vec<u32>, FactOp)> = state
                .iter()
                .map(|(t, (present, mu))| {
                    (
                        t.clone(),
                        FactOp::Set {
                            present: *present,
                            mu: if mu.is_empty() {
                                "0".into()
                            } else {
                                mu.clone()
                            },
                        },
                    )
                })
                .collect();
            rows += block_rows.len() as u64;
            if !block_rows.is_empty() {
                blocks.push(RelationBlock {
                    relation: decl.name.clone(),
                    arity: decl.arity as usize,
                    rows: block_rows,
                });
            }
        }
        let image = encode_segment(&blocks);
        let file = format!("{dataset}-{:08}.seg", entry.next_seq);
        self.publish_segment(&file, &image)?;
        let old_segments = entry.segments.clone();
        {
            let e = self
                .manifest
                .dataset_mut(dataset)
                .expect("dataset existed above");
            e.segments = vec![SegmentRef {
                file: file.clone(),
                bytes: image.len() as u64,
            }];
            e.total_rows = rows;
            e.next_seq += 1;
        }
        write_manifest(&self.dir, &self.manifest).map_err(StoreError::Io)?;
        // Only now is it safe to drop the shadowed files.
        let seg_dir = segments_dir(&self.dir);
        for s in old_segments {
            let _ = fs::remove_file(seg_dir.join(&s.file));
        }
        let elapsed_ms = started.elapsed().as_millis() as u64;
        self.last_commit_ms = elapsed_ms;
        Ok(CommitStats {
            segment: Some(file),
            rows,
            live_facts: entry.live_facts,
            db_hash: entry.db_hash,
            elapsed_ms,
        })
    }

    /// Create a dataset from an interchange spec and commit all its
    /// facts in one batch (the `qrel store ingest` path).
    pub fn ingest_spec(
        &mut self,
        name: &str,
        spec: &UnreliableDatabaseSpec,
    ) -> Result<CommitStats, StoreError> {
        // Build first: reuses the spec's own validation (arity, range,
        // probability, model) before anything touches disk.
        let ud = spec
            .build()
            .map_err(|e| StoreError::Corrupt(format!("invalid spec: {e}")))?;
        let obs = ud.observed();
        let universe: Vec<String> = obs
            .universe()
            .elements()
            .map(|e| obs.universe().name(e).to_string())
            .collect();
        let relations: Vec<(String, usize)> = obs
            .vocabulary()
            .symbols()
            .iter()
            .map(|s| (s.name().to_string(), s.arity()))
            .collect();
        self.create_dataset(name, universe, relations, &spec.model)?;
        let mut batch = Vec::new();
        for (ri, sym) in obs.vocabulary().symbols().iter().enumerate() {
            for tuple in obs.relation(ri).iter() {
                let mu = ud.mu(&Fact::new(ri, tuple.clone())).to_string();
                batch.push(Mutation::set(sym.name(), tuple.clone(), true, &mu));
            }
        }
        for idx in ud.uncertain_facts() {
            let fact = ud.indexer().fact_at(idx);
            if !obs.holds(&fact) {
                let name = obs.vocabulary().symbols()[fact.relation].name();
                batch.push(Mutation::set(
                    name,
                    fact.tuple.clone(),
                    false,
                    &ud.mu_at(idx).to_string(),
                ));
            }
        }
        self.commit(name, &batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::db_hash_of;
    use qrel_db::DatabaseBuilder;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qrel-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_spec() -> UnreliableDatabaseSpec {
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("E", 2)
            .relation("S", 1)
            .tuples("E", [vec![0, 1], vec![1, 2]])
            .tuples("S", [vec![2]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0, 1]), BigRational::from_ratio(1, 10))
            .unwrap();
        ud.set_error(&Fact::new(1, vec![0]), BigRational::from_ratio(1, 4))
            .unwrap();
        UnreliableDatabaseSpec::from_model(&ud)
    }

    #[test]
    fn ingest_reopen_round_trip_is_bit_identical() {
        let dir = tmp_dir("roundtrip");
        let mut store = Store::init(&dir).unwrap();
        let spec = sample_spec();
        let stats = store.ingest_spec("d", &spec).unwrap();
        let in_memory = spec.build().unwrap();
        assert_eq!(stats.db_hash, db_hash_of(&in_memory));

        // Close and reopen: hash, live count, and the rebuilt model all
        // match the in-memory path exactly.
        drop(store);
        let store = Store::open(&dir).unwrap();
        store.verify("d").unwrap();
        let mut ds = store.load("d").unwrap();
        assert_eq!(ds.entry().db_hash, db_hash_of(&in_memory));
        let rebuilt = ds.build().unwrap();
        assert_eq!(
            UnreliableDatabaseSpec::from_model(&rebuilt),
            UnreliableDatabaseSpec::from_model(&in_memory)
        );
        assert_eq!(db_hash_of(&rebuilt), db_hash_of(&in_memory));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incremental_hash_tracks_mutations() {
        let dir = tmp_dir("incremental");
        let mut store = Store::init(&dir).unwrap();
        store.ingest_spec("d", &sample_spec()).unwrap();
        let h0 = store.dataset("d").unwrap().db_hash;

        // Mutate: change a μ, add a fact, delete a fact.
        let stats = store
            .commit(
                "d",
                &[
                    Mutation::set("E", vec![0, 1], true, "1/3"),
                    Mutation::set("S", vec![1], true, "0"),
                    Mutation::reset("E", vec![1, 2]),
                ],
            )
            .unwrap();
        assert_ne!(stats.db_hash, h0);
        store.verify("d").unwrap();

        // Undo all three: the XOR algebra restores the original hash.
        let undo = store
            .commit(
                "d",
                &[
                    Mutation::set("E", vec![0, 1], true, "1/10"),
                    Mutation::reset("S", vec![1]),
                    Mutation::set("E", vec![1, 2], true, "0"),
                ],
            )
            .unwrap();
        assert_eq!(undo.db_hash, h0);
        store.verify("d").unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn probability_strings_are_canonicalized() {
        let dir = tmp_dir("canon");
        let mut store = Store::init(&dir).unwrap();
        store
            .create_dataset(
                "d",
                vec!["e0".into(), "e1".into()],
                vec![("E".into(), 2)],
                "full",
            )
            .unwrap();
        store
            .commit("d", &[Mutation::set("E", vec![0, 1], true, "2/4")])
            .unwrap();
        let mut ds = store.load("d").unwrap();
        assert_eq!(ds.fact_state("E", &[0, 1]).unwrap(), (true, "1/2".into()));
        store.verify("d").unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_validation_rejects_bad_mutations() {
        let dir = tmp_dir("validate");
        let mut store = Store::init(&dir).unwrap();
        store
            .create_dataset("d", vec!["e0".into()], vec![("S".into(), 1)], "full")
            .unwrap();
        let bad = [
            Mutation::set("Z", vec![0], true, "0"),
            Mutation::set("S", vec![0, 0], true, "0"),
            Mutation::set("S", vec![9], true, "0"),
            Mutation::set("S", vec![0], true, "3/2"),
            Mutation::set("S", vec![0], true, "nope"),
        ];
        for m in bad {
            assert!(
                store.commit("d", std::slice::from_ref(&m)).is_err(),
                "accepted {m:?}"
            );
        }
        // Nothing landed.
        assert_eq!(store.dataset("d").unwrap().segments.len(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn positive_only_rejects_absent_uncertain_facts() {
        let dir = tmp_dir("positive");
        let mut store = Store::init(&dir).unwrap();
        store
            .create_dataset(
                "d",
                vec!["e0".into()],
                vec![("S".into(), 1)],
                "positive-only",
            )
            .unwrap();
        assert!(matches!(
            store.commit("d", &[Mutation::set("S", vec![0], false, "1/2")]),
            Err(StoreError::NegativeFactError { .. })
        ));
        store
            .commit("d", &[Mutation::set("S", vec![0], true, "1/2")])
            .unwrap();
        store.verify("d").unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_preserves_hash_and_drops_dead_rows() {
        let dir = tmp_dir("compact");
        let mut store = Store::init(&dir).unwrap();
        store.ingest_spec("d", &sample_spec()).unwrap();
        // Several generations of churn on one fact.
        for mu in ["1/3", "1/5", "1/7"] {
            store
                .commit("d", &[Mutation::set("E", vec![0, 1], true, mu)])
                .unwrap();
        }
        store.commit("d", &[Mutation::reset("S", vec![2])]).unwrap();
        let before = store.dataset("d").unwrap().clone();
        assert!(before.segments.len() > 1);
        assert!(before.total_rows > before.live_facts);

        store.compact("d").unwrap();
        let after = store.dataset("d").unwrap().clone();
        assert_eq!(after.db_hash, before.db_hash);
        assert_eq!(after.live_facts, before.live_facts);
        assert_eq!(after.segments.len(), 1);
        assert_eq!(after.total_rows, after.live_facts);
        store.verify("d").unwrap();

        // Old segment files are actually gone.
        let seg_files = fs::read_dir(segments_dir(&dir)).unwrap().count();
        assert_eq!(seg_files, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_aborts_commit_and_reopen_recovers() {
        let dir = tmp_dir("torn");
        let mut store = Store::init(&dir).unwrap();
        store.ingest_spec("d", &sample_spec()).unwrap();
        let h0 = store.dataset("d").unwrap().db_hash;

        let plan = qrel_faults::FaultPlan::new(3).with_rule(
            qrel_faults::points::STORE_SEGMENT_TORN_WRITE,
            1.0,
            0,
            1,
        );
        {
            let _guard = plan.arm();
            assert!(matches!(
                store.commit("d", &[Mutation::set("S", vec![0], true, "1/2")]),
                Err(StoreError::Injected(_))
            ));
        }
        // The torn temp file exists on disk but the manifest ignores it.
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.dataset("d").unwrap().db_hash, h0);
        store.verify("d").unwrap();
        // GC removed the debris.
        for entry in fs::read_dir(segments_dir(&dir)).unwrap() {
            let name = entry.unwrap().file_name().to_string_lossy().into_owned();
            assert!(!name.ends_with(".tmp"), "torn temp {name} survived GC");
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_commit_crash_leaves_old_state_and_gc_cleans_orphan() {
        let dir = tmp_dir("crash");
        let mut store = Store::init(&dir).unwrap();
        store.ingest_spec("d", &sample_spec()).unwrap();
        let h0 = store.dataset("d").unwrap().db_hash;
        let segs0 = store.dataset("d").unwrap().segments.len();

        let plan = qrel_faults::FaultPlan::new(4).with_rule(
            qrel_faults::points::STORE_COMMIT_CRASH,
            1.0,
            0,
            1,
        );
        {
            let _guard = plan.arm();
            assert!(matches!(
                store.commit("d", &[Mutation::set("S", vec![0], true, "1/2")]),
                Err(StoreError::Injected(_))
            ));
        }
        // The orphan .seg landed but is unreferenced; reopen recovers
        // the previous state and deletes it.
        drop(store);
        let mut store = Store::open(&dir).unwrap();
        assert_eq!(store.dataset("d").unwrap().db_hash, h0);
        assert_eq!(store.dataset("d").unwrap().segments.len(), segs0);
        store.verify("d").unwrap();
        assert_eq!(fs::read_dir(segments_dir(&dir)).unwrap().count(), segs0);

        // The spent fire is gone: the same commit now succeeds and the
        // reused sequence number collides with nothing.
        store
            .commit("d", &[Mutation::set("S", vec![0], true, "1/2")])
            .unwrap();
        store.verify("d").unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dump_spec_round_trips_through_interchange() {
        let dir = tmp_dir("dump");
        let mut store = Store::init(&dir).unwrap();
        let spec = sample_spec();
        store.ingest_spec("d", &spec).unwrap();
        let dumped = store.load("d").unwrap().dump_spec().unwrap();
        assert_eq!(dumped, spec);
        fs::remove_dir_all(&dir).unwrap();
    }
}
