//! The manifest: the store's single, atomically replaced source of
//! truth.
//!
//! `MANIFEST.json` names every dataset and the exact segment files that
//! constitute it. Publication is the classic crash-safe sequence —
//! write `MANIFEST.json.tmp`, `fsync` it, `rename` over the real name,
//! `fsync` the directory — so a reader (or a reopen after a crash)
//! sees either the previous manifest or the new one in full, never a
//! torn mixture. Segment files are written and fsynced *before* the
//! manifest that references them, which is the whole crash-safety
//! argument: a referenced segment is always complete, and a complete
//! segment nobody references is just garbage to collect.

use serde::{Deserialize, Serialize};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// File name of the manifest inside the store directory.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// Subdirectory holding segment files.
pub const SEGMENTS_DIR: &str = "segments";

/// One relation symbol of a dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelDecl {
    pub name: String,
    pub arity: u32,
}

/// One referenced segment file (relative to `segments/`), with its
/// exact byte length — a cheap existence/size check on open before any
/// page checksum runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentRef {
    pub file: String,
    pub bytes: u64,
}

/// One dataset: shape, error model, segment list, and the incrementally
/// maintained aggregates (db-hash, live facts, total rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetEntry {
    pub name: String,
    /// `"full"` or `"positive-only"`.
    pub model: String,
    /// Element names, in index order.
    pub universe: Vec<String>,
    /// Relation symbols, in vocabulary order.
    pub relations: Vec<RelDecl>,
    /// Segments, oldest first; newer rows shadow older ones.
    pub segments: Vec<SegmentRef>,
    /// The incremental canonical db-hash (see [`crate::hash`]).
    pub db_hash: u64,
    /// Facts currently in a non-default state.
    pub live_facts: u64,
    /// Total rows across all segments; `total_rows - live_facts` is the
    /// dead weight `compact` reclaims.
    pub total_rows: u64,
    /// Next segment sequence number.
    pub next_seq: u64,
}

/// The whole manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    pub version: u32,
    pub datasets: Vec<DatasetEntry>,
}

impl Manifest {
    pub fn empty() -> Self {
        Manifest {
            version: MANIFEST_VERSION,
            datasets: Vec::new(),
        }
    }

    pub fn dataset(&self, name: &str) -> Option<&DatasetEntry> {
        self.datasets.iter().find(|d| d.name == name)
    }

    pub fn dataset_mut(&mut self, name: &str) -> Option<&mut DatasetEntry> {
        self.datasets.iter_mut().find(|d| d.name == name)
    }
}

pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join(MANIFEST_FILE)
}

pub fn segments_dir(dir: &Path) -> PathBuf {
    dir.join(SEGMENTS_DIR)
}

/// Fsync a directory so a just-renamed entry survives power loss. A
/// no-op error on platforms that refuse to open directories is ignored
/// — the rename itself is still atomic with respect to crashes of this
/// process, which is what the fault-injection tests exercise.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Read and parse `MANIFEST.json`.
pub fn read_manifest(dir: &Path) -> Result<Manifest, String> {
    let path = manifest_path(dir);
    let text =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let manifest: Manifest =
        serde_json::from_str(&text).map_err(|e| format!("bad manifest JSON: {e}"))?;
    if manifest.version != MANIFEST_VERSION {
        return Err(format!(
            "unsupported manifest version {} (expected {MANIFEST_VERSION})",
            manifest.version
        ));
    }
    Ok(manifest)
}

/// Atomically publish a manifest: temp file, fsync, rename, dir fsync.
pub fn write_manifest(dir: &Path, manifest: &Manifest) -> Result<(), String> {
    let text = serde_json::to_string_pretty(manifest)
        .map_err(|e| format!("manifest serialization failed: {e}"))?;
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    let path = manifest_path(dir);
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
        f.write_all(text.as_bytes())
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        f.sync_all()
            .map_err(|e| format!("cannot fsync {}: {e}", tmp.display()))?;
    }
    fs::rename(&tmp, &path).map_err(|e| format!("cannot publish {}: {e}", path.display()))?;
    sync_dir(dir);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            version: MANIFEST_VERSION,
            datasets: vec![DatasetEntry {
                name: "d".into(),
                model: "full".into(),
                universe: vec!["e0".into(), "e1".into()],
                relations: vec![RelDecl {
                    name: "E".into(),
                    arity: 2,
                }],
                segments: vec![SegmentRef {
                    file: "d-00000000.seg".into(),
                    bytes: 64,
                }],
                db_hash: 0xdead_beef_cafe_f00d,
                live_facts: 3,
                total_rows: 5,
                next_seq: 1,
            }],
        }
    }

    #[test]
    fn json_round_trip() {
        let m = sample();
        let text = serde_json::to_string(&m).unwrap();
        let back: Manifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back, m);
        // u64 aggregates survive the full domain.
        assert_eq!(back.datasets[0].db_hash, 0xdead_beef_cafe_f00d);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("qrel-manifest-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        write_manifest(&dir, &Manifest::empty()).unwrap();
        assert!(read_manifest(&dir).unwrap().datasets.is_empty());
        write_manifest(&dir, &sample()).unwrap();
        assert_eq!(read_manifest(&dir).unwrap(), sample());
        assert!(!dir.join("MANIFEST.json.tmp").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let dir = std::env::temp_dir().join(format!("qrel-manifest-ver-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let mut m = Manifest::empty();
        m.version = 99;
        write_manifest(&dir, &m).unwrap();
        assert!(read_manifest(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
