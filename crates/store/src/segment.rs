//! The on-disk segment format.
//!
//! A segment is an immutable file of per-relation *blocks*:
//!
//! ```text
//!   file   := MAGIC block*
//!   block  := len:u32le  crc:u32le  payload[len]
//!   payload:= name_len:u16le  name  arity:u16le  rows:u32le
//!             ops[rows]                 -- 1 byte each
//!             column[0][rows] … column[arity-1][rows]   -- u32le each
//!             (mu_len:u16le mu)[rows]
//! ```
//!
//! Columns are stored column-major (all first components, then all
//! second components, …) — the "arity-typed fact columns" of the
//! design — with the probability strings as a trailing variable-width
//! column. Each block is an independently checksummed page: the CRC is
//! verified before a single payload byte is decoded, so a torn write
//! or bit flip surfaces as [`SegmentError`], never as a silently wrong
//! fact.
//!
//! Ops: `0` resets the fact to its default state (tombstone), `1`
//! upserts the state `(absent, μ)`, `2` upserts `(present, μ)`. Newer
//! rows shadow older rows for the same `(relation, tuple)` at merge
//! time; the format itself is append-only.

use std::fmt;

/// Leading magic + format version byte.
pub const MAGIC: [u8; 8] = *b"QRELSEG\x01";

/// One fact mutation as stored in a segment row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactOp {
    /// Back to the default state `(absent, μ = 0)`.
    Reset,
    /// Set the state to `(present, μ)`; `mu` is a canonical rational
    /// string.
    Set { present: bool, mu: String },
}

/// One relation's rows within a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationBlock {
    pub relation: String,
    pub arity: usize,
    pub rows: Vec<(Vec<u32>, FactOp)>,
}

/// Decode-side failures: every variant means the file must not be
/// trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentError(pub String);

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt segment: {}", self.0)
    }
}

impl std::error::Error for SegmentError {}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
/// checksum gzip and PNG use, hand-rolled so the build stays
/// dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn encode_block(block: &RelationBlock) -> Vec<u8> {
    let rows = block.rows.len();
    let mut p = Vec::with_capacity(16 + block.relation.len() + rows * (1 + 4 * block.arity + 4));
    p.extend_from_slice(&(block.relation.len() as u16).to_le_bytes());
    p.extend_from_slice(block.relation.as_bytes());
    p.extend_from_slice(&(block.arity as u16).to_le_bytes());
    p.extend_from_slice(&(rows as u32).to_le_bytes());
    for (_, op) in &block.rows {
        p.push(match op {
            FactOp::Reset => 0,
            FactOp::Set { present: false, .. } => 1,
            FactOp::Set { present: true, .. } => 2,
        });
    }
    for c in 0..block.arity {
        for (tuple, _) in &block.rows {
            p.extend_from_slice(&tuple[c].to_le_bytes());
        }
    }
    for (_, op) in &block.rows {
        let mu: &str = match op {
            FactOp::Reset => "",
            FactOp::Set { mu, .. } => mu,
        };
        p.extend_from_slice(&(mu.len() as u16).to_le_bytes());
        p.extend_from_slice(mu.as_bytes());
    }
    p
}

/// Footer marker: a frame-length field no real block can have (block
/// payloads are far smaller), announcing the 4-byte whole-file CRC that
/// follows it.
const FOOTER_MARK: u32 = 0xFFFF_FFFF;

/// Serialize blocks into a complete segment file image. The image ends
/// with a footer — `FOOTER_MARK` plus a CRC over everything before it —
/// so truncation is detected even when the cut lands exactly on a block
/// boundary (where the per-page CRCs alone would all still pass).
pub fn encode_segment(blocks: &[RelationBlock]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    for block in blocks {
        let payload = encode_block(block);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
    let file_crc = crc32(&out);
    out.extend_from_slice(&FOOTER_MARK.to_le_bytes());
    out.extend_from_slice(&file_crc.to_le_bytes());
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SegmentError> {
        if self.pos + n > self.bytes.len() {
            return Err(SegmentError(format!(
                "truncated at offset {} (wanted {n} bytes of {})",
                self.pos,
                self.bytes.len()
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, SegmentError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, SegmentError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

fn decode_block(payload: &[u8]) -> Result<RelationBlock, SegmentError> {
    let mut c = Cursor {
        bytes: payload,
        pos: 0,
    };
    let name_len = c.u16()? as usize;
    let relation = String::from_utf8(c.take(name_len)?.to_vec())
        .map_err(|_| SegmentError("relation name is not UTF-8".into()))?;
    let arity = c.u16()? as usize;
    let rows = c.u32()? as usize;
    let ops = c.take(rows)?.to_vec();
    let mut columns = Vec::with_capacity(arity);
    for _ in 0..arity {
        let raw = c.take(4 * rows)?;
        let col: Vec<u32> = raw
            .chunks_exact(4)
            .map(|w| u32::from_le_bytes(w.try_into().unwrap()))
            .collect();
        columns.push(col);
    }
    let mut decoded = Vec::with_capacity(rows);
    for (r, &opcode) in ops.iter().enumerate() {
        let mu_len = c.u16()? as usize;
        let mu = String::from_utf8(c.take(mu_len)?.to_vec())
            .map_err(|_| SegmentError("probability string is not UTF-8".into()))?;
        let tuple: Vec<u32> = columns.iter().map(|col| col[r]).collect();
        let op = match opcode {
            0 => FactOp::Reset,
            1 => FactOp::Set { present: false, mu },
            2 => FactOp::Set { present: true, mu },
            other => {
                return Err(SegmentError(format!(
                    "unknown op byte {other} in relation {relation:?}"
                )))
            }
        };
        decoded.push((tuple, op));
    }
    if c.pos != payload.len() {
        return Err(SegmentError(format!(
            "{} trailing bytes after relation {relation:?}",
            payload.len() - c.pos
        )));
    }
    Ok(RelationBlock {
        relation,
        arity,
        rows: decoded,
    })
}

/// Walk the block frames of a segment, verifying each page CRC, and
/// hand `(relation_name, payload)` to `visit`. `visit` returning
/// `false` skips decoding that block's columns — this is what makes
/// per-relation reads lazy: skipped blocks cost a checksum pass and
/// nothing else.
fn walk<'a>(
    bytes: &'a [u8],
    mut visit: impl FnMut(&str, &'a [u8]) -> Result<(), SegmentError>,
) -> Result<(), SegmentError> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(SegmentError("bad magic".into()));
    }
    let mut pos = MAGIC.len();
    let mut footer_seen = false;
    while pos < bytes.len() {
        if pos + 8 > bytes.len() {
            return Err(SegmentError("truncated block header".into()));
        }
        let len_field = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        if len_field == FOOTER_MARK {
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            if crc32(&bytes[..pos]) != crc {
                return Err(SegmentError("file checksum mismatch in footer".into()));
            }
            if pos + 8 != bytes.len() {
                return Err(SegmentError("trailing bytes after footer".into()));
            }
            footer_seen = true;
            break;
        }
        let len = len_field as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        pos += 8;
        if pos + len > bytes.len() {
            return Err(SegmentError("truncated block payload".into()));
        }
        let payload = &bytes[pos..pos + len];
        if crc32(payload) != crc {
            return Err(SegmentError(format!(
                "page checksum mismatch at offset {pos}"
            )));
        }
        // The relation name sits at the front of every payload; peek it
        // without a full decode.
        if len < 2 {
            return Err(SegmentError("block payload too short".into()));
        }
        let name_len = u16::from_le_bytes(payload[..2].try_into().unwrap()) as usize;
        if 2 + name_len > len {
            return Err(SegmentError("relation name overruns payload".into()));
        }
        let name = std::str::from_utf8(&payload[2..2 + name_len])
            .map_err(|_| SegmentError("relation name is not UTF-8".into()))?;
        visit(name, payload)?;
        pos += len;
    }
    if !footer_seen {
        return Err(SegmentError("missing end-of-segment footer".into()));
    }
    Ok(())
}

/// Decode every block of a segment (integrity check + full read).
pub fn decode_segment(bytes: &[u8]) -> Result<Vec<RelationBlock>, SegmentError> {
    let mut blocks = Vec::new();
    walk(bytes, |_, payload| {
        blocks.push(decode_block(payload)?);
        Ok(())
    })?;
    Ok(blocks)
}

/// Decode only the blocks of one relation; other blocks are CRC-checked
/// and skipped.
pub fn scan_relation(
    bytes: &[u8],
    relation: &str,
) -> Result<Vec<(Vec<u32>, FactOp)>, SegmentError> {
    let mut rows = Vec::new();
    walk(bytes, |name, payload| {
        if name == relation {
            rows.extend(decode_block(payload)?.rows);
        }
        Ok(())
    })?;
    Ok(rows)
}

/// Verify the framing and page checksums of a whole segment without
/// decoding any columns.
pub fn verify_pages(bytes: &[u8]) -> Result<(), SegmentError> {
    walk(bytes, |_, _| Ok(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_blocks() -> Vec<RelationBlock> {
        vec![
            RelationBlock {
                relation: "E".into(),
                arity: 2,
                rows: vec![
                    (
                        vec![0, 1],
                        FactOp::Set {
                            present: true,
                            mu: "1/10".into(),
                        },
                    ),
                    (vec![1, 2], FactOp::Reset),
                    (
                        vec![2, 0],
                        FactOp::Set {
                            present: false,
                            mu: "1/4".into(),
                        },
                    ),
                ],
            },
            RelationBlock {
                relation: "S".into(),
                arity: 1,
                rows: vec![(
                    vec![2],
                    FactOp::Set {
                        present: true,
                        mu: "0".into(),
                    },
                )],
            },
        ]
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn encode_decode_round_trip() {
        let blocks = sample_blocks();
        let bytes = encode_segment(&blocks);
        assert_eq!(decode_segment(&bytes).unwrap(), blocks);
        verify_pages(&bytes).unwrap();
    }

    #[test]
    fn scan_relation_is_selective() {
        let bytes = encode_segment(&sample_blocks());
        let s = scan_relation(&bytes, "S").unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0, vec![2]);
        assert!(scan_relation(&bytes, "Z").unwrap().is_empty());
    }

    #[test]
    fn any_flipped_bit_is_detected() {
        let bytes = encode_segment(&sample_blocks());
        // Flip one bit in every byte position past the magic: either the
        // page CRC catches it or (for frame headers) the framing does.
        for pos in MAGIC.len()..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(
                decode_segment(&bad).is_err(),
                "flip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_segment(&sample_blocks());
        for cut in MAGIC.len() + 1..bytes.len() {
            assert!(decode_segment(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        assert!(decode_segment(b"NOTASEG!").is_err());
    }

    #[test]
    fn empty_segment_is_valid() {
        let bytes = encode_segment(&[]);
        assert_eq!(decode_segment(&bytes).unwrap(), Vec::new());
    }
}
