//! The incremental canonical db-hash.
//!
//! The hash of a dataset is
//!
//! ```text
//!   H(D) = base(universe, vocabulary, model)
//!          XOR_{f : state(f) ≠ default} h(f, state(f))
//! ```
//!
//! where a fact's *state* is `(present, μ)` and the default state is
//! `(absent, μ = 0)`. Three properties make this the right shape for a
//! mutable store:
//!
//! * **Order independence** — XOR is commutative and associative, so
//!   the hash is a pure function of the fact *set*, not of ingest or
//!   replay order.
//! * **Self-inverse updates** — changing one fact's state is
//!   `H ^= h(f, old) ^ h(f, new)`: a commit touches only the facts it
//!   mutates, never rescans the dataset.
//! * **Default transparency** — the default state hashes to `0`, so a
//!   dataset's hash never depends on the (astronomically many) facts
//!   nobody ever mentioned, and deleting a fact truly removes its
//!   contribution.
//!
//! Raw FNV-1a alone would be a weak combiner under XOR (related inputs
//! produce related outputs), so every per-fact hash is passed through a
//! SplitMix64-style finalizer for avalanche.

use qrel_db::Fact;
use qrel_prob::UnreliableDatabase;

/// FNV-1a over `bytes` (same constants as the serve cache's hasher —
/// stable forever, recorded hashes must replay).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: full-avalanche mixing so XOR-combining many
/// per-fact hashes does not cancel structure.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e9b5);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hash of one fact in one state. The default state `(absent, μ = 0)`
/// hashes to `0` so it contributes nothing to the combine; `mu` must be
/// in canonical [`BigRational`] display form (`"0"`, `"1"`, `"p/q"`).
///
/// [`BigRational`]: qrel_arith::BigRational
pub fn fact_state_hash(relation: &str, tuple: &[u32], present: bool, mu: &str) -> u64 {
    if !present && mu == "0" {
        return 0;
    }
    let mut buf = Vec::with_capacity(relation.len() + 4 * tuple.len() + mu.len() + 3);
    buf.extend_from_slice(relation.as_bytes());
    buf.push(0);
    for &e in tuple {
        buf.extend_from_slice(&e.to_le_bytes());
    }
    buf.push(u8::from(present));
    buf.push(0);
    buf.extend_from_slice(mu.as_bytes());
    mix64(fnv1a(&buf))
}

/// Hash of everything a dataset is besides its facts: element names,
/// relation symbols (name and arity, in vocabulary order), and the
/// error model. Two datasets with different shapes never collide to
/// the same hash just because both are empty.
pub fn base_hash(universe: &[String], relations: &[(String, usize)], model: &str) -> u64 {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(universe.len() as u64).to_le_bytes());
    for name in universe {
        buf.extend_from_slice(name.as_bytes());
        buf.push(0);
    }
    for (name, arity) in relations {
        buf.extend_from_slice(name.as_bytes());
        buf.push(0);
        buf.extend_from_slice(&(*arity as u64).to_le_bytes());
    }
    buf.extend_from_slice(model.as_bytes());
    mix64(fnv1a(&buf))
}

fn model_name(ud: &UnreliableDatabase) -> &'static str {
    match ud.model() {
        qrel_prob::ErrorModel::Full => "full",
        qrel_prob::ErrorModel::PositiveOnly => "positive-only",
    }
}

/// From-scratch recomputation of the incremental db-hash for an
/// in-memory model. [`Store`] commits maintain the same value without
/// ever rescanning; tests pin the two against each other.
///
/// [`Store`]: crate::Store
pub fn db_hash_of(ud: &UnreliableDatabase) -> u64 {
    let obs = ud.observed();
    let universe: Vec<String> = obs
        .universe()
        .elements()
        .map(|e| obs.universe().name(e).to_string())
        .collect();
    let relations: Vec<(String, usize)> = obs
        .vocabulary()
        .symbols()
        .iter()
        .map(|s| (s.name().to_string(), s.arity()))
        .collect();
    let mut h = base_hash(&universe, &relations, model_name(ud));
    for (ri, sym) in obs.vocabulary().symbols().iter().enumerate() {
        for tuple in obs.relation(ri).iter() {
            let mu = ud.mu(&Fact::new(ri, tuple.clone()));
            h ^= fact_state_hash(sym.name(), tuple, true, &mu.to_string());
        }
    }
    // Absent-but-uncertain facts (μ ≠ 0 on a fact the observed database
    // lacks) are non-default too.
    for idx in ud.uncertain_facts() {
        let fact = ud.indexer().fact_at(idx);
        if !obs.holds(&fact) {
            let name = obs.vocabulary().symbols()[fact.relation].name();
            h ^= fact_state_hash(name, &fact.tuple, false, &ud.mu_at(idx).to_string());
        }
    }
    h
}

/// Number of non-default facts in a model: observed tuples plus
/// absent-but-uncertain facts. This is the "live facts" figure the
/// store tracks per dataset and `/healthz` reports.
pub fn live_fact_count(ud: &UnreliableDatabase) -> u64 {
    let obs = ud.observed();
    let mut live = obs.tuple_count() as u64;
    for idx in ud.uncertain_facts() {
        if !obs.holds(&ud.indexer().fact_at(idx)) {
            live += 1;
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrel_arith::BigRational;
    use qrel_db::DatabaseBuilder;

    fn sample_ud() -> UnreliableDatabase {
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("E", 2)
            .relation("S", 1)
            .tuples("E", [vec![0, 1], vec![1, 2]])
            .tuples("S", [vec![2]])
            .build();
        let mut ud = UnreliableDatabase::reliable(db);
        ud.set_error(&Fact::new(0, vec![0, 1]), BigRational::from_ratio(1, 10))
            .unwrap();
        ud.set_error(&Fact::new(1, vec![0]), BigRational::from_ratio(1, 4))
            .unwrap();
        ud
    }

    #[test]
    fn default_state_hashes_to_zero() {
        assert_eq!(fact_state_hash("E", &[0, 1], false, "0"), 0);
        assert_ne!(fact_state_hash("E", &[0, 1], true, "0"), 0);
        assert_ne!(fact_state_hash("E", &[0, 1], false, "1/2"), 0);
    }

    #[test]
    fn state_hash_distinguishes_every_component() {
        let h = fact_state_hash("E", &[0, 1], true, "1/2");
        assert_ne!(h, fact_state_hash("S", &[0, 1], true, "1/2"));
        assert_ne!(h, fact_state_hash("E", &[1, 0], true, "1/2"));
        assert_ne!(h, fact_state_hash("E", &[0, 1], false, "1/2"));
        assert_ne!(h, fact_state_hash("E", &[0, 1], true, "1/3"));
    }

    #[test]
    fn incremental_update_is_self_inverse() {
        let ud = sample_ud();
        let h = db_hash_of(&ud);
        // Flip a fact's state and flip it back: XOR algebra restores h.
        let old = fact_state_hash("E", &[0, 1], true, "1/10");
        let new = fact_state_hash("E", &[0, 1], true, "1/3");
        let mutated = h ^ old ^ new;
        assert_ne!(mutated, h);
        assert_eq!(mutated ^ new ^ old, h);
    }

    #[test]
    fn hash_matches_a_rebuilt_model_regardless_of_insertion_order() {
        let ud = sample_ud();
        // Build the same model with the mutations applied in a different
        // order; the hash must agree because it is order-free.
        let db = DatabaseBuilder::new()
            .universe_size(3)
            .relation("E", 2)
            .relation("S", 1)
            .tuples("E", [vec![1, 2], vec![0, 1]])
            .tuples("S", [vec![2]])
            .build();
        let mut other = UnreliableDatabase::reliable(db);
        other
            .set_error(&Fact::new(1, vec![0]), BigRational::from_ratio(1, 4))
            .unwrap();
        other
            .set_error(&Fact::new(0, vec![0, 1]), BigRational::from_ratio(1, 10))
            .unwrap();
        assert_eq!(db_hash_of(&ud), db_hash_of(&other));
    }

    #[test]
    fn base_separates_shapes_and_models() {
        let u2: Vec<String> = vec!["e0".into(), "e1".into()];
        let rels = vec![("E".to_string(), 2)];
        assert_ne!(
            base_hash(&u2, &rels, "full"),
            base_hash(&u2, &rels, "positive-only")
        );
        assert_ne!(
            base_hash(&u2, &rels, "full"),
            base_hash(&u2, &[("E".to_string(), 1)], "full")
        );
    }

    #[test]
    fn live_fact_count_counts_absent_uncertain_facts() {
        let ud = sample_ud();
        // 3 observed tuples + S(0) absent-but-uncertain.
        assert_eq!(live_fact_count(&ud), 4);
    }
}
