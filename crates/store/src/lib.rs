//! Durable on-disk storage for unreliable databases.
//!
//! A *store* is a directory holding any number of named datasets, each
//! an [`UnreliableDatabaseSpec`]-equivalent body of facts that outlives
//! a single process:
//!
//! * **Segments** ([`segment`]) are immutable, append-only files of
//!   per-relation columnar blocks — arity-typed fact columns plus a
//!   per-fact probability column — each block framed as a CRC-checked
//!   page, so torn or bit-rotted data is detected on read, never
//!   silently decoded.
//! * **The manifest** ([`manifest`]) is the single source of truth for
//!   which segments exist. It is replaced atomically (write-temp →
//!   fsync → rename → directory fsync), so a crash at any instant
//!   leaves either the old manifest or the new one — referenced
//!   segments are always fully written, and anything else on disk is
//!   an orphan that [`Store::open`] garbage-collects.
//! * **The db-hash** ([`hash`]) is an order-independent XOR combine of
//!   per-fact state hashes over a vocabulary/universe/model base. It is
//!   maintained *incrementally* across commits (`h ^= old ^ new` per
//!   touched fact), equals the from-scratch recomputation bit-for-bit,
//!   and keys the serve layer's result cache and scheduler coalescing —
//!   so a batched mutation invalidates exactly the touched dataset's
//!   cache entries and nothing else.
//!
//! The write path batches fact upserts/deletes ([`Mutation`]) and
//! merges each batch into one new segment per commit; the read path
//! ([`StoredDataset`]) reads segment bytes once and decodes them
//! lazily, one relation at a time, reconstructing a [`qrel_db::Database`]
//! (and the full [`UnreliableDatabase`] model) only from the blocks the
//! caller actually touches.
//!
//! Crash-safety is exercised, not assumed: the fault points
//! `store.segment.torn_write` and `store.commit.crash` (see
//! [`qrel_faults::points`]) abort a commit after a partial segment
//! write or between segment publish and manifest publish, and the
//! chaos harness verifies a reopen always recovers the last committed
//! state.
//!
//! [`UnreliableDatabaseSpec`]: qrel_prob::UnreliableDatabaseSpec
//! [`UnreliableDatabase`]: qrel_prob::UnreliableDatabase

pub mod hash;
pub mod manifest;
pub mod segment;
mod store;

pub use hash::{db_hash_of, fact_state_hash, live_fact_count};
pub use manifest::{DatasetEntry, Manifest, RelDecl, SegmentRef};
pub use segment::FactOp;
pub use store::{CommitStats, Mutation, Store, StoreError, StoredDataset};
