//! Data cleaning: which fact should you verify first?
//!
//! A practical application of query reliability: given a fixed analytics
//! query and a budget to manually verify *one* uncertain fact, verify the
//! fact whose confirmation improves the query's reliability the most.
//! The influence of a fact is measured exactly:
//!
//! ```text
//! influence(f) = E_v [ R_ψ(𝔇 | f pinned to v) ] − R_ψ(𝔇)
//! ```
//!
//! where the expectation is over the fact's actual value `v ~ ν(f)` —
//! i.e. the expected reliability gain from learning `f`'s true value
//! (always ≥ 0; zero exactly when `ψ` ignores `f`).
//!
//! Run with `cargo run --release --example data_cleaning`.

use qrel::prelude::*;

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

fn main() {
    // A product catalog: Supplies(supplier, product), Discontinued(product).
    let db = DatabaseBuilder::new()
        .universe_names(["acme", "globex", "widget", "gadget", "gizmo"])
        .relation("Supplies", 2)
        .relation("Discontinued", 1)
        .tuples("Supplies", [vec![0, 2], vec![0, 3], vec![1, 3], vec![1, 4]])
        .tuples("Discontinued", [vec![4]])
        .build();

    let mut ud = UnreliableDatabase::reliable(db);
    // Scraped supply links with varying confidence; one shaky flag.
    let errors: &[(usize, Vec<u32>, (i64, u64))] = &[
        (0, vec![0, 2], (1, 20)), // Supplies(acme, widget): solid
        (0, vec![0, 3], (1, 4)),  // Supplies(acme, gadget): shaky
        (0, vec![1, 3], (1, 10)),
        (0, vec![1, 4], (1, 10)),
        (1, vec![4], (1, 3)), // Discontinued(gizmo): very shaky
        (1, vec![3], (1, 8)), // Discontinued(gadget): observed false!
    ];
    for (rel, tuple, (n, d)) in errors {
        ud.set_error(&Fact::new(*rel, tuple.clone()), r(*n, *d))
            .unwrap();
    }

    // The analytics query: "some supplier only supplies discontinued
    // products" — a universal-inside-existential FO query.
    let query = FoQuery::parse(
        "exists s. (exists p. Supplies(s,p)) & \
         (forall p. Supplies(s,p) -> Discontinued(p))",
    )
    .unwrap();
    println!("query ψ = {}\n", query.formula());

    let base = exact_reliability(&ud, &query).unwrap();
    println!(
        "base reliability R_ψ = {} (≈ {:.5})\n",
        base.reliability,
        base.reliability.to_f64()
    );

    // Influence analysis: for each uncertain fact, the expected
    // reliability after verifying it.
    println!("verification ranking (highest expected gain first):");
    let mut rows: Vec<(String, f64)> = Vec::new();
    let indexer = ud.indexer().clone();
    for &fi in &ud.uncertain_facts() {
        let fact = indexer.fact_at(fi);
        let nu = ud.nu(&fact);
        // Pin to true (prob ν) and to false (prob 1−ν).
        let mut expected = BigRational::zero();
        for (value, weight) in [(true, nu.clone()), (false, nu.one_minus())] {
            if weight.is_zero() {
                continue;
            }
            let mut pinned = ud.clone();
            // Set the observed value to the verified one with μ = 0.
            let mut obs = pinned.observed().clone();
            obs.set_fact(&fact, value);
            let mut fresh = UnreliableDatabase::reliable(obs);
            for &fj in &ud.uncertain_facts() {
                if fj != fi {
                    let other = indexer.fact_at(fj);
                    fresh.set_error(&other, ud.mu(&other).clone()).unwrap();
                }
            }
            pinned = fresh;
            let rel = exact_reliability(&pinned, &query).unwrap().reliability;
            expected = expected.add_ref(&weight.mul_ref(&rel));
        }
        let gain = expected.sub_ref(&base.reliability);
        rows.push((
            fact.display(ud.observed().vocabulary()).to_string(),
            gain.to_f64(),
        ));
    }
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (name, gain) in &rows {
        println!("  verify {name:<24} expected reliability gain {gain:+.5}");
    }

    println!(
        "\nzero-gain facts are absorbed by the query's structure (their value \
         cannot flip the answer given the rest); the ranking tells the curator \
         where one verification buys the most certainty."
    );
}
