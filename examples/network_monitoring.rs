//! Network monitoring: reachability over unreliable link-state data.
//!
//! The paper's Theorem 5.12 is exactly this scenario: reachability is a
//! Datalog (fixed-point) query — polynomial-time evaluable but not
//! first-order — and the monitoring database's link table is noisy. We
//! compute the reliability of "the backup datacenter is reachable from
//! the gateway" exactly (small network) and with the paper's padding
//! Monte-Carlo estimator, then compare against the plain Hoeffding
//! sampler on a larger network where enumeration is hopeless.
//!
//! Run with `cargo run --release --example network_monitoring`.

use qrel::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Reachability from node 0, as a unary Datalog query.
fn reach_query() -> DatalogQuery {
    DatalogQuery::parse(
        "Reach(y) :- Link(0, y).
         Reach(z) :- Reach(y), Link(y, z).",
        "Reach",
    )
    .unwrap()
}

fn small_network() -> UnreliableDatabase {
    // gateway(0) — r1(1) — r2(2) — backup(3), with a flaky shortcut 0→3.
    let db = DatabaseBuilder::new()
        .universe_names(["gateway", "r1", "r2", "backup"])
        .relation("Link", 2)
        .tuples("Link", [vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]])
        .build();
    let mut ud = UnreliableDatabase::reliable(db);
    // The shortcut is flapping badly; the chain links mostly solid.
    ud.set_error(&Fact::new(0, vec![0, 3]), BigRational::from_ratio(2, 5))
        .unwrap();
    ud.set_error(&Fact::new(0, vec![0, 1]), BigRational::from_ratio(1, 20))
        .unwrap();
    ud.set_error(&Fact::new(0, vec![1, 2]), BigRational::from_ratio(1, 20))
        .unwrap();
    ud.set_error(&Fact::new(0, vec![2, 3]), BigRational::from_ratio(1, 20))
        .unwrap();
    ud
}

fn large_network(n: usize, rng: &mut StdRng) -> UnreliableDatabase {
    // A random sparse digraph with a reliable ring + noisy chords.
    let mut links: Vec<Vec<u32>> = (0..n as u32).map(|i| vec![i, (i + 1) % n as u32]).collect();
    let mut chords = Vec::new();
    for _ in 0..(2 * n) {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a != b {
            links.push(vec![a, b]);
            chords.push((a, b));
        }
    }
    let db = DatabaseBuilder::new()
        .universe_size(n)
        .relation("Link", 2)
        .tuples("Link", links)
        .build();
    let mut ud = UnreliableDatabase::reliable(db);
    for (a, b) in chords {
        ud.set_error(&Fact::new(0, vec![a, b]), BigRational::from_ratio(1, 4))
            .unwrap();
    }
    ud
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // --- Small network: exact vs both estimators -----------------------
    let ud = small_network();
    let q = reach_query();
    println!("small network, query Reach(x) from the gateway");

    let exact = exact_reliability(&ud, &q).unwrap();
    println!(
        "  exact reliability           = {} (≈ {:.5})",
        exact.reliability,
        exact.reliability.to_f64()
    );

    let padding = PaddingEstimator::default_xi();
    let padded = padding
        .estimate_reliability(&ud, &q, 0.05, 0.05, &mut rng)
        .unwrap();
    println!(
        "  Thm 5.12 padding estimator  = {:.5}   ({} samples, ξ = {})",
        padded.estimate,
        padded.samples,
        padding.xi()
    );

    // Boolean sub-question: is the backup reachable?
    let backup_reachable = FnQuery::boolean(|db| reach_query().eval(db, &[3]).unwrap());
    let p_exact = exact_probability(&ud, &backup_reachable).unwrap();
    let direct = direct_probability(&ud, &backup_reachable, 0.01, 0.01, &mut rng).unwrap();
    let padded_p = padding
        .estimate_probability(&ud, &backup_reachable, 0.02, 0.01, &mut rng)
        .unwrap();
    println!("\n  Pr[backup reachable]:");
    println!(
        "    exact               = {} (≈ {:.5})",
        p_exact,
        p_exact.to_f64()
    );
    println!(
        "    direct Hoeffding    = {:.5}   ({} samples)",
        direct.estimate, direct.samples
    );
    println!(
        "    Thm 5.12 padded     = {:.5}   ({} samples)",
        padded_p.estimate, padded_p.samples
    );

    // --- Large network: enumeration impossible, sampling routine -------
    let n = 40;
    let big = large_network(n, &mut rng);
    println!(
        "\nlarge network: {n} nodes, {} uncertain links -> 2^{} worlds (no enumeration)",
        big.uncertain_facts().len(),
        big.uncertain_facts().len()
    );
    let target = (n - 1) as u32;
    let far_reachable = FnQuery::boolean(move |db| reach_query().eval(db, &[target]).unwrap());
    let est = direct_probability(&big, &far_reachable, 0.02, 0.01, &mut rng).unwrap();
    println!(
        "  Pr[node {} reachable] ≈ {:.4}   ({} samples)",
        n - 1,
        est.estimate,
        est.samples
    );
    let padded_big = padding
        .estimate_probability(&big, &far_reachable, 0.05, 0.05, &mut rng)
        .unwrap();
    println!(
        "  padded estimator agrees: {:.4}   ({} samples)",
        padded_big.estimate, padded_big.samples
    );
}
