//! Hardness gallery: the paper's lower-bound reductions, executed.
//!
//! * Proposition 3.2 — counting satisfying assignments of a monotone
//!   2-CNF by *computing an expected error*: the reliability engine is
//!   literally doing #P work.
//! * Lemma 5.9 — deciding graph 4-colourability by asking whether an
//!   unreliable database is absolutely reliable for a fixed existential
//!   query.
//!
//! Run with `cargo run --release --example hardness_gallery`.

use qrel::core::reductions::four_col::{lemma_query, reduce as reduce_graph, Graph};
use qrel::core::reductions::mon2sat::{proposition_query, recover_count, reduce};
use qrel::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ------------------------------------------------------------------
    // Proposition 3.2: #MONOTONE-2SAT via expected error.
    // ------------------------------------------------------------------
    println!("=== Proposition 3.2: #MONOTONE-2SAT ≤ H_ψ ===");
    println!("fixed conjunctive query: {}\n", proposition_query());

    let mut rng = StdRng::seed_from_u64(3);
    for vars in [4u32, 6, 8] {
        let f = Monotone2Sat::random(vars, vars as usize + 2, &mut rng);
        let inst = reduce(&f);
        let q = FoQuery::new(inst.query.clone());
        let h = exact_reliability(&inst.ud, &q).unwrap().expected_error;
        let via_reliability = recover_count(&inst, &h);
        let via_dpll = count_mon2sat(&f);
        println!("formula: {f}");
        println!(
            "  H_ψ = {h}  ->  #SAT = {via_reliability}   (DPLL oracle: {via_dpll})  {}",
            if via_reliability.to_u64() == Some(via_dpll) {
                "✓"
            } else {
                "✗ MISMATCH"
            }
        );
    }

    // ------------------------------------------------------------------
    // Lemma 5.9: 4-colourability via absolute reliability.
    // ------------------------------------------------------------------
    println!("\n=== Lemma 5.9: 4-colourability ≤ co-AR_ψ ===");
    println!("fixed existential query: {}\n", lemma_query());

    let gallery: Vec<(&str, Graph)> = vec![
        ("K4 (complete on 4)", Graph::complete(4)),
        ("K5 (complete on 5)", Graph::complete(5)),
        ("C5 (odd cycle)", Graph::cycle(5)),
        ("K5 plus a pendant edge", {
            let mut e = Graph::complete(5).edges().to_vec();
            e.push((4, 5));
            Graph::new(6, e)
        }),
    ];
    for (name, g) in gallery {
        let ud = reduce_graph(&g);
        let q = FoQuery::new(lemma_query());
        let colourable_via_ar = !is_absolutely_reliable(&ud, &q).unwrap();
        let colourable_oracle = g.is_k_colourable(4);
        println!(
            "{name}: 4-colourable? reduction says {colourable_via_ar}, \
             backtracking oracle says {colourable_oracle}  {}",
            if colourable_via_ar == colourable_oracle {
                "✓"
            } else {
                "✗ MISMATCH"
            }
        );
        if colourable_via_ar {
            if let Some(w) = find_unreliability_witness(&ud, &q).unwrap() {
                // Decode the witnessing world's (R1, R2) bits as colours.
                let r1 = w.relation_by_name("R1").unwrap();
                let r2 = w.relation_by_name("R2").unwrap();
                let colours: Vec<u8> = (0..g.num_vertices() as u32)
                    .map(|v| (r1.contains(&[v]) as u8) | ((r2.contains(&[v]) as u8) << 1))
                    .collect();
                println!("  a proper 4-colouring found by the reduction: {colours:?}");
            }
        }
    }

    // The cost curve: the same engine, but the world space doubles per
    // propositional variable — this is what #P-hardness feels like.
    println!("\n=== The exponential wall (Prop 3.2 instances) ===");
    for vars in [8u32, 10, 12, 14] {
        let f = Monotone2Sat::random(vars, vars as usize, &mut rng);
        let inst = reduce(&f);
        let q = FoQuery::new(inst.query.clone());
        let start = std::time::Instant::now();
        let h = exact_reliability(&inst.ud, &q).unwrap().expected_error;
        let elapsed = start.elapsed();
        println!(
            "  m = {vars:2} variables: 2^{vars} worlds, H_ψ = {h}, {:?}",
            elapsed
        );
    }
}
