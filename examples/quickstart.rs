//! Quickstart: build an unreliable database, ask how reliable a query's
//! answer is, and cross-check the exact engine against the approximation
//! algorithms.
//!
//! Run with `cargo run --release --example quickstart`.

use qrel::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ------------------------------------------------------------------
    // 1. An observed database: a small citation graph. Cites(x, y) means
    //    paper x cites paper y; Retracted(x) flags retracted papers.
    // ------------------------------------------------------------------
    let db = DatabaseBuilder::new()
        .universe_names(["p0", "p1", "p2", "p3"])
        .relation("Cites", 2)
        .relation("Retracted", 1)
        .tuples("Cites", [vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]])
        .tuples("Retracted", [vec![3]])
        .build();
    println!("Observed database:\n{db}");

    // ------------------------------------------------------------------
    // 2. Attach error probabilities: citation extraction is 95% accurate,
    //    the retraction flag comes from a noisy scrape (80%).
    // ------------------------------------------------------------------
    let mut ud = UnreliableDatabase::reliable(db);
    ud.set_relation_error("Cites", BigRational::from_ratio(1, 20))
        .unwrap();
    ud.set_relation_error("Retracted", BigRational::from_ratio(1, 5))
        .unwrap();
    println!(
        "{} uncertain facts -> {} possible worlds\n",
        ud.uncertain_facts().len(),
        ud.world_count().unwrap()
    );

    // ------------------------------------------------------------------
    // 3. A conjunctive query: "some paper cites a retracted paper".
    // ------------------------------------------------------------------
    let query = FoQuery::parse("exists x y. Cites(x,y) & Retracted(y)").unwrap();
    println!("query ψ = {}", query.formula());
    println!(
        "observed answer: {}\n",
        query.eval_sentence(ud.observed()).unwrap()
    );

    // Exact reliability by possible-world enumeration (Theorem 4.2).
    let exact = exact_reliability(&ud, &query).unwrap();
    println!(
        "exact:   R_ψ = {}  (≈ {:.6}), H_ψ = {}, {} worlds enumerated",
        exact.reliability,
        exact.reliability.to_f64(),
        exact.expected_error,
        exact.worlds
    );

    // The FP^#P counting certificate: g and g·Pr[𝔅 ⊨ ψ] ∈ ℕ.
    let cert = counting_certificate(&ud, &query).unwrap();
    println!(
        "certificate: g = {}, accepting paths g·Pr[ψ] = {}",
        cert.g, cert.accepting_paths
    );

    // ------------------------------------------------------------------
    // 4. The same number by the Theorem 5.4 FPTRAS (grounding to kDNF +
    //    Karp–Luby), which scales to databases far beyond enumeration.
    // ------------------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(2024);
    let p_exact = exact_probability(&ud, &query).unwrap();
    let p_est =
        existential_probability_fptras(&ud, query.formula(), 0.02, 0.01, Route::Direct, &mut rng)
            .unwrap();
    println!(
        "\nPr[𝔅 ⊨ ψ]: exact = {} (≈ {:.6}), Karp–Luby estimate = {:.6}",
        p_exact,
        p_exact.to_f64(),
        p_est
    );

    // ------------------------------------------------------------------
    // 5. Absolute reliability: is any world able to change the answer?
    // ------------------------------------------------------------------
    let ar = is_absolutely_reliable(&ud, &query).unwrap();
    println!("\nabsolutely reliable? {ar}");
    if let Some(w) = find_unreliability_witness(&ud, &query).unwrap() {
        println!("witnessing world that flips the answer:\n{w}");
    }
}
