//! Census quality: aggregate queries over a metafinite database with
//! noisy numeric values (Section 6 of the paper).
//!
//! A census table stores, per respondent, a salary and a department code.
//! Data entry is imperfect: some salaries have finite-support error
//! distributions (typos drop a digit; a field is sometimes blank = 0).
//! Queries are SQL-style aggregates — SUM, AVG, MAX, and a filtered SUM
//! via characteristic functions — and we ask both for their reliability
//! (probability the observed answer is the true answer) and for expected
//! values.
//!
//! Run with `cargo run --release --example census_aggregates`.

use qrel::metafinite::reliability::{
    exact_reliability, expected_value, mc_reliability, qf_reliability,
};
use qrel::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn r(n: i64, d: u64) -> BigRational {
    BigRational::from_ratio(n, d)
}

fn main() {
    // Respondents 0..6; salary/1 and dept/1 tables.
    let mut db = FunctionalDatabase::new(6);
    db.add_function_values(
        "salary",
        1,
        vec![
            r(52_000, 1),
            r(67_000, 1),
            r(43_000, 1),
            r(88_000, 1),
            r(60_000, 1),
            r(39_000, 1),
        ],
    );
    db.add_function_values(
        "dept",
        1,
        vec![r(1, 1), r(1, 1), r(2, 1), r(2, 1), r(3, 1), r(3, 1)],
    );
    println!("observed census:\n{db}");

    let mut ud = UnreliableFunctionalDatabase::reliable(db);
    // Respondent 1's salary might be a digit-drop typo: 67k vs 6.7k.
    ud.set_distribution(
        "salary",
        &[1],
        EntryDistribution::new(vec![(r(67_000, 1), r(9, 10)), (r(6_700, 1), r(1, 10))]).unwrap(),
    );
    // Respondent 3 sometimes left the field blank (keyed as 0).
    ud.set_distribution(
        "salary",
        &[3],
        EntryDistribution::new(vec![(r(88_000, 1), r(4, 5)), (r(0, 1), r(1, 5))]).unwrap(),
    );
    // Department of respondent 4 is ambiguous between 1 and 3.
    ud.set_distribution(
        "dept",
        &[4],
        EntryDistribution::new(vec![(r(3, 1), r(2, 3)), (r(1, 1), r(1, 3))]).unwrap(),
    );
    println!(
        "{} uncertain entries -> {} possible databases\n",
        ud.uncertain_entries().len(),
        ud.world_count()
    );

    // ------------------------------------------------------------------
    // Quantifier-free query: the per-respondent "high earner" flag
    // χ[salary(x) ≥ 50k]. Theorem 6.2(i): exact reliability in PTIME.
    // ------------------------------------------------------------------
    let high_earner = MTerm::apply(
        ROp::CharLe,
        [MTerm::constant(50_000, 1), MTerm::func("salary", ["x"])],
    );
    let rep = qf_reliability(&ud, &high_earner, &["x".to_string()]).unwrap();
    println!("high-earner flag χ[salary ≥ 50k] per respondent:");
    println!(
        "  H = {}   R = {} (≈ {:.4})",
        rep.expected_error,
        rep.reliability,
        rep.reliability.to_f64()
    );

    // ------------------------------------------------------------------
    // Aggregates (first-order terms): Theorem 6.2(ii) exact engine.
    // ------------------------------------------------------------------
    let total = MTerm::multiset(MultisetOp::Sum, ["x"], MTerm::func("salary", ["x"]));
    let avg = MTerm::multiset(MultisetOp::Avg, ["x"], MTerm::func("salary", ["x"]));
    let top = MTerm::multiset(MultisetOp::Max, ["x"], MTerm::func("salary", ["x"]));
    // SUM(salary) WHERE dept = 3, via a characteristic-function filter.
    let dept3_total = MTerm::multiset(
        MultisetOp::Sum,
        ["x"],
        MTerm::apply(
            ROp::Mul,
            [
                MTerm::func("salary", ["x"]),
                MTerm::apply(
                    ROp::CharEq,
                    [MTerm::func("dept", ["x"]), MTerm::constant(3, 1)],
                ),
            ],
        ),
    );

    for (name, term) in [
        ("SUM(salary)", &total),
        ("AVG(salary)", &avg),
        ("MAX(salary)", &top),
        ("SUM(salary) WHERE dept=3", &dept3_total),
    ] {
        let rel = exact_reliability(&ud, term, &[]).unwrap();
        let ev = expected_value(&ud, term).unwrap();
        let observed = term
            .eval(ud.observed(), &std::collections::HashMap::new())
            .unwrap();
        println!("\n{name}:");
        println!("  observed value  = {observed}");
        println!("  expected value  = {ev} (≈ {:.2})", ev.to_f64());
        println!(
            "  reliability     = {} (≈ {:.4})",
            rel.reliability,
            rel.reliability.to_f64()
        );
    }

    // ------------------------------------------------------------------
    // Monte-Carlo cross-check on the filtered aggregate.
    // ------------------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(11);
    let mc = mc_reliability(&ud, &dept3_total, &[], 0.02, 0.02, &mut rng).unwrap();
    let exact = exact_reliability(&ud, &dept3_total, &[])
        .unwrap()
        .reliability
        .to_f64();
    println!("\nMonte-Carlo check on the filtered SUM: {mc:.4} (exact {exact:.4})");
}
